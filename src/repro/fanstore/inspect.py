"""Partition/dataset inspection tool: ``fanstore-inspect``.

Operational tooling the original system ships alongside the preparation
tool: inspect a packed dataset (manifest summary, per-partition entry
listings, compressor histogram) and verify integrity by decompressing
every entry against its stat record.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path
from typing import Sequence

from repro.compressors.registry import default_registry
from repro.errors import FormatError
from repro.fanstore.layout import read_partition
from repro.fanstore.prepare import PreparedDataset
from repro.util.units import format_bytes


def summarize_dataset(root: Path) -> str:
    """Manifest-level summary of a prepared dataset."""
    prepared = PreparedDataset.load(root)
    lines = [
        f"prepared dataset at {root}",
        f"  files:       {prepared.num_files}",
        f"  partitions:  {len(prepared.partitions)}"
        + (" + broadcast" if prepared.broadcast else ""),
        f"  compressor:  {prepared.compressor}",
        f"  original:    {format_bytes(prepared.original_bytes)}",
        f"  packed:      {format_bytes(prepared.compressed_bytes)}",
        f"  ratio:       {prepared.ratio:.2f}x",
    ]
    return "\n".join(lines)


def list_partition(path: Path, *, limit: int | None = None) -> str:
    """Entry listing of one partition file."""
    entries = read_partition(path, with_data=False)
    lines = [f"{path.name}: {len(entries)} entries"]
    registry = default_registry()
    comp_hist: Counter = Counter()
    for e in entries[: limit or len(entries)]:
        comp = registry.get(e.compressor_id).name
        comp_hist[comp] += 1
        lines.append(
            f"  {e.path:<40} {e.stat.st_size:>10} -> "
            f"{e.compressed_size:>10}  [{comp}]"
        )
    if limit is not None and len(entries) > limit:
        lines.append(f"  ... {len(entries) - limit} more")
    return "\n".join(lines)


def verify_dataset(root: Path) -> tuple[int, list[str]]:
    """Decompress every entry and check it against its stat record.

    Returns ``(verified_count, problems)``.
    """
    prepared = PreparedDataset.load(root)
    registry = default_registry()
    problems: list[str] = []
    verified = 0
    paths = prepared.partition_paths()
    if prepared.broadcast:
        paths.append(prepared.broadcast_path())
    for ppath in paths:
        try:
            entries = read_partition(ppath, with_data=True)
        except FormatError as exc:
            problems.append(f"{ppath.name}: unreadable ({exc})")
            continue
        for e in entries:
            try:
                plain = registry.get(e.compressor_id).decompress(e.data)
            except Exception as exc:  # noqa: BLE001 - reported, not raised
                problems.append(f"{e.path}: decompression failed ({exc})")
                continue
            if len(plain) != e.stat.st_size:
                problems.append(
                    f"{e.path}: size mismatch "
                    f"({len(plain)} != {e.stat.st_size})"
                )
            else:
                verified += 1
    return verified, problems


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="fanstore-inspect",
        description="Inspect and verify FanStore prepared datasets.",
    )
    parser.add_argument("root", type=Path, help="prepared dataset directory")
    parser.add_argument(
        "--list", action="store_true", help="list every partition's entries"
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="decompress everything and check against stat records",
    )
    parser.add_argument("--limit", type=int, default=20,
                        help="max entries listed per partition")
    args = parser.parse_args(argv)

    print(summarize_dataset(args.root))
    if args.list:
        prepared = PreparedDataset.load(args.root)
        for name in prepared.partitions + (
            [prepared.broadcast] if prepared.broadcast else []
        ):
            print()
            print(list_partition(args.root / name, limit=args.limit))
    if args.verify:
        verified, problems = verify_dataset(args.root)
        print(f"\nverified {verified} entries")
        for p in problems:
            print(f"  PROBLEM: {p}")
        if problems:
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
