"""MPI-like in-process runtime.

A thread-per-rank :class:`~repro.comm.communicator.Communicator` with
tagged point-to-point messaging and the standard collectives, the
``mpiexec``-style :func:`~repro.comm.launcher.run_parallel` launcher,
the §V-D virtual-ring transfer pattern, and the seeded fault-injection
layer (:mod:`~repro.comm.chaos`) the resilience tests run on.
"""

from repro.comm.chaos import (
    ChaosCommunicator,
    ChaosStats,
    ChaosWorld,
    FaultPlan,
)
from repro.comm.communicator import (
    ANY_SOURCE,
    ANY_TAG,
    Communicator,
    Request,
    World,
)
from repro.comm.deadline import Deadline, wire_deadline
from repro.comm.fusion import (
    FusionBuffer,
    bucketed_allreduce,
    modeled_allreduce_seconds,
)
from repro.comm.launcher import ParallelFailure, run_parallel
from repro.comm.ring import ring_exchange, ring_neighbors, ring_replicate

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "Request",
    "World",
    "ChaosCommunicator",
    "ChaosStats",
    "ChaosWorld",
    "Deadline",
    "FaultPlan",
    "wire_deadline",
    "ParallelFailure",
    "run_parallel",
    "ring_exchange",
    "ring_neighbors",
    "ring_replicate",
    "FusionBuffer",
    "bucketed_allreduce",
    "modeled_allreduce_seconds",
]
