"""Cluster-scale training simulation (Figures 8 and 9).

Runs one training job through the discrete-event engine: one process
per simulated node, each iterating read → decompress → compute →
allreduce, against either the FanStore I/O path (node-local storage +
peer fetches over the interconnect) or a shared-file-system path (a
Lustre-like service with a *single metadata server* and a bounded OST
stream pool — the two mechanisms whose saturation produces the paper's
512-node collapse).

Weak scaling follows the paper's protocol: per-node batch constant
(Table V profiles are measured at 4 nodes), dataset scaled with node
count, efficiency = T_iter(baseline)/T_iter(N).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.node import MachineSpec
from repro.compressors.profiles import PaperProfile
from repro.errors import SimulationError
from repro.simnet.devices import lustre
from repro.simnet.events import Simulator
from repro.training.apps import AppProfile

#: Table V profiles were measured on 4 nodes; per-node batch derives from it.
PROFILE_NODES = 4

#: Lustre service pools: one MDS; OSTs sustain this many full-rate streams.
LUSTRE_OST_STREAMS = 64


@dataclass
class SimReport:
    """Outcome of one simulated run."""

    nodes: int
    io_path: str
    compressor: str | None
    startup_seconds: float
    iteration_seconds: list[float] = field(default_factory=list)
    remote_fraction: float = 0.0

    @property
    def mean_iteration_seconds(self) -> float:
        if not self.iteration_seconds:
            raise SimulationError("no iterations simulated")
        return sum(self.iteration_seconds) / len(self.iteration_seconds)

    def weak_scaling_efficiency(self, baseline: "SimReport") -> float:
        """T_iter(baseline)/T_iter(self): 1.0 = perfect weak scaling."""
        return baseline.mean_iteration_seconds / self.mean_iteration_seconds


@dataclass(frozen=True)
class SimJob:
    """Everything one simulated run needs."""

    machine: MachineSpec
    app: AppProfile
    nodes: int
    io_path: str = "fanstore"  # "fanstore" | "lustre" | "local"
    compressor: PaperProfile | None = None
    iterations: int = 20
    dataset_files: int = 10_000  # scaled dataset size (metadata storm)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.io_path not in ("fanstore", "lustre", "local"):
            raise SimulationError(f"unknown io_path {self.io_path!r}")
        if not 1 <= self.nodes:
            raise SimulationError("nodes must be >= 1")
        if self.iterations < 1:
            raise SimulationError("iterations must be >= 1")

    @property
    def files_per_node(self) -> int:
        return max(self.app.c_batch // PROFILE_NODES, 1)

    @property
    def compute_seconds(self) -> float:
        """Per-iteration compute (I/O-free RAM-disk profile, Table V),
        minus the modeled 4-node allreduce which T_iter already
        contains; re-added at the simulated scale."""
        t = self.app.t_iter(self.machine.name)
        base_ar = self.machine.interconnect.allreduce_time(
            self.app.gradient_bytes, PROFILE_NODES
        )
        return max(t - base_ar, t * 0.5)

    @property
    def ratio(self) -> float:
        if self.compressor is None:
            return 1.0
        return self.compressor.ratio_for(self.app.dataset)

    @property
    def file_bytes(self) -> int:
        return int(self.app.avg_file_bytes)

    @property
    def compressed_file_bytes(self) -> int:
        return max(int(self.app.avg_file_bytes / self.ratio), 1)

    def decompress_seconds_per_file(self) -> float:
        if self.compressor is None:
            return 0.0
        return self.compressor.decompress_cost(
            self.file_bytes, self.machine.node.arch
        )


def _fanstore_startup(job: SimJob) -> float:
    """Stage-in: each node pulls its partitions off the shared FS in
    parallel (bounded by the Lustre stream pool), then one metadata
    allgather builds the global view."""
    per_node_bytes = (
        job.dataset_files * job.compressed_file_bytes / max(job.nodes, 1)
    )
    streams = min(job.nodes, LUSTRE_OST_STREAMS)
    shared = lustre()
    stage_in = (per_node_bytes * job.nodes / streams) / shared.read_bandwidth
    meta_bytes = (job.dataset_files // max(job.nodes, 1)) * 410  # entry header
    allgather = job.machine.interconnect.allgather_time(meta_bytes, job.nodes)
    return stage_in + allgather


def _lustre_startup(job: SimJob) -> float:
    """The §II-B1 metadata storm: every I/O process stats every file
    through the single MDS — the serialization that kept the paper's
    512-node Lustre run from starting within an hour."""
    shared = lustre()
    procs = job.nodes * job.machine.node.processors
    total_ops = procs * job.dataset_files
    return total_ops * shared.metadata_latency


def _node_io_seconds_fanstore(job: SimJob, rng: np.random.Generator) -> tuple[float, float]:
    """(I/O seconds, remote fraction) for one node's iteration share."""
    n_files = job.files_per_node
    storage = job.machine.node.storage
    net = job.machine.interconnect
    p_local = 1.0 / job.nodes if job.nodes > 1 else 1.0
    n_remote = int(round(n_files * (1.0 - p_local)))
    n_local = n_files - n_remote
    size = job.compressed_file_bytes
    # Local: interception + backend; remote: request/response over the
    # fabric plus the serving daemon's backend read.
    local_t = n_local * (8e-6 + size / min(storage.read_bandwidth, 5e9))
    remote_t = n_remote * (net.p2p_time(size) + 8e-6)
    decompress = (
        n_files
        * job.decompress_seconds_per_file()
        / job.machine.node.processors
    )
    jitter = 1.0 + 0.02 * rng.random()
    return (local_t + remote_t + decompress) * jitter, (
        n_remote / n_files if n_files else 0.0
    )


def simulate_run(job: SimJob) -> SimReport:
    """Run one job through the event engine; returns per-iteration times."""
    sim = Simulator()
    rng = np.random.default_rng(job.seed)
    barrier = sim.barrier(job.nodes)
    iteration_ends: list[float] = [0.0] * (job.iterations + 1)
    allreduce_t = job.machine.interconnect.allreduce_time(
        job.app.gradient_bytes, job.nodes
    )
    remote_fracs: list[float] = []

    # Shared-FS service pools (only exercised on the lustre path).
    shared = lustre()
    mds = sim.resource(1)
    ost = sim.resource(LUSTRE_OST_STREAMS)

    def _lustre_read(node_rng: np.random.Generator):
        """One node's batch read through the shared file system."""
        size = job.file_bytes  # no compression on the lustre path
        for _ in range(job.files_per_node):
            grant = mds.request()
            yield grant
            yield sim.timeout(shared.per_op_latency)
            mds.release()
            slot = ost.request()
            yield slot
            yield sim.timeout(size / (shared.read_bandwidth / 4))
            ost.release()

    # Straggler model: per-node, per-iteration OS/network noise. The
    # barrier propagates the *max* across nodes, so efficiency decays
    # with scale the way Figure 9 shows (SRGAN's long iterations hide
    # the noise → 97.9 % at 16 nodes; ResNet-50's short ones do not →
    # 90.4 %). Half-normal with σ = 1 % of compute + 10 ms absolute.
    straggler_sigma = 0.01 * job.compute_seconds + 0.010

    def node_process(rank: int):
        node_rng = np.random.default_rng(job.seed + rank + 1)
        for it in range(job.iterations):
            straggle = abs(float(node_rng.normal(0.0, straggler_sigma)))
            if job.io_path == "lustre":
                # Contended read through the shared MDS + OST pools; the
                # contention itself is what we are modeling, so the read
                # is simulated rather than summed analytically. (The
                # lustre path is evaluated sync — pipelining cannot hide
                # a saturated shared service anyway.)
                yield sim.process(_lustre_read(node_rng))
                yield sim.timeout(job.compute_seconds + straggle)
            else:
                if job.io_path == "fanstore":
                    io_t, rfrac = _node_io_seconds_fanstore(job, node_rng)
                    remote_fracs.append(rfrac)
                else:  # local RAM-disk baseline (the paper's "ideal")
                    io_t = job.files_per_node * job.machine.node.storage.read_time(
                        job.file_bytes
                    )
                if job.app.io_mode == "async":
                    # Figure 5(b): the read hides behind compute.
                    yield sim.timeout(max(io_t, job.compute_seconds) + straggle)
                else:
                    yield sim.timeout(io_t + job.compute_seconds + straggle)
            yield barrier.wait()
            yield sim.timeout(allreduce_t)
            if rank == 0:
                iteration_ends[it + 1] = sim.now

    for r in range(job.nodes):
        sim.process(node_process(r))
    sim.run()

    startup = (
        _fanstore_startup(job)
        if job.io_path == "fanstore"
        else _lustre_startup(job)
        if job.io_path == "lustre"
        else 0.0
    )
    iter_times = [
        iteration_ends[i + 1] - iteration_ends[i] for i in range(job.iterations)
    ]
    return SimReport(
        nodes=job.nodes,
        io_path=job.io_path,
        compressor=job.compressor.name if job.compressor else None,
        startup_seconds=startup,
        iteration_seconds=iter_times,
        remote_fraction=(
            sum(remote_fracs) / len(remote_fracs) if remote_fracs else 0.0
        ),
    )


def weak_scaling_sweep(
    machine: MachineSpec,
    app: AppProfile,
    node_counts: list[int],
    *,
    io_path: str = "fanstore",
    compressor: PaperProfile | None = None,
    iterations: int = 10,
    dataset_files_per_node: int = 1_000,
) -> dict[int, SimReport]:
    """Figure 9's protocol: constant per-node work, growing dataset."""
    reports: dict[int, SimReport] = {}
    for n in node_counts:
        if n > machine.nodes:
            raise SimulationError(
                f"{machine.name} has {machine.nodes} nodes, requested {n}"
            )
        job = SimJob(
            machine=machine,
            app=app,
            nodes=n,
            io_path=io_path,
            compressor=compressor,
            iterations=iterations,
            dataset_files=dataset_files_per_node * n,
        )
        reports[n] = simulate_run(job)
    return reports
