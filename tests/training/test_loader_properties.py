"""Hypothesis properties of the loader's global-view sharding — the
§III invariant that every rank derives the *same* global batch and the
shards partition it exactly."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.training.loader import _EpochPlan

plans = st.builds(
    dict,
    n_files=st.integers(min_value=1, max_value=200),
    batch_size=st.integers(min_value=1, max_value=64),
    world_size=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=10_000),
    epoch=st.integers(min_value=0, max_value=5),
    iteration=st.integers(min_value=0, max_value=10),
)


def _make_plans(cfg):
    files = [f"f{i:04d}" for i in range(cfg["n_files"])]
    return [
        _EpochPlan(
            files,
            batch_size=cfg["batch_size"],
            rank=r,
            world_size=cfg["world_size"],
            seed=cfg["seed"],
        )
        for r in range(cfg["world_size"])
    ]


@settings(max_examples=60, deadline=None)
@given(cfg=plans)
def test_shards_are_disjoint_slices_of_one_global_batch(cfg):
    plans_by_rank = _make_plans(cfg)
    shards = [
        p.rank_files(cfg["epoch"], cfg["iteration"]) for p in plans_by_rank
    ]
    merged = [f for shard in shards for f in shard]
    # per-rank share is bounded by the plan's per_rank
    for p, shard in zip(plans_by_rank, shards):
        assert len(shard) <= p.per_rank
    # shards never exceed the global batch
    assert len(merged) <= cfg["batch_size"]
    # and are positionally disjoint: rebuilding the global batch from
    # rank 0's plan must contain every sharded path
    full = _EpochPlan(
        plans_by_rank[0].files,
        batch_size=cfg["batch_size"],
        rank=0,
        world_size=1,
        seed=cfg["seed"],
    ).rank_files(cfg["epoch"], cfg["iteration"])
    # world_size=1 per_rank == batch_size
    for f in merged:
        assert f in full


@settings(max_examples=40, deadline=None)
@given(cfg=plans)
def test_same_seed_same_epoch_same_order_everywhere(cfg):
    """Determinism: two plans with identical parameters agree batch by
    batch (this is what keeps data-parallel replicas consistent)."""
    a, b = _make_plans(cfg)[0], _make_plans(cfg)[0]
    assert a.rank_files(cfg["epoch"], cfg["iteration"]) == b.rank_files(
        cfg["epoch"], cfg["iteration"]
    )


@settings(max_examples=40, deadline=None)
@given(cfg=plans)
def test_epoch_permutations_cover_all_files(cfg):
    """Within one epoch, iterating all batches touches every file at
    least once when batch_size × iterations ≥ n_files (the paper's
    'every item visited once per epoch, statistically')."""
    plan = _EpochPlan(
        [f"f{i}" for i in range(cfg["n_files"])],
        batch_size=cfg["batch_size"],
        rank=0,
        world_size=1,
        seed=cfg["seed"],
    )
    seen: set[str] = set()
    for it in range(plan.iterations):
        seen.update(plan.rank_files(cfg["epoch"], it))
    covered = cfg["batch_size"] * plan.iterations
    if covered >= cfg["n_files"]:
        assert len(seen) == cfg["n_files"]
