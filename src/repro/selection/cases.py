"""The paper's three selection case studies (§VII-E) as ready inputs.

Each case bundles the Table V application row, the Table VI FanStore
performance rows, the capacity requirement from §VII-E's narrative, and
the Table VII candidate compressors — so benchmarks and tests can run
exactly the analysis the paper walks through.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compressors.profiles import PAPER_PROFILES
from repro.selection.model import (
    CompressorCandidate,
    IoPerformance,
    SelectionInputs,
)
from repro.selection.profiling import candidate_from_profile
from repro.util.units import KB, MB


@dataclass(frozen=True)
class SelectionCase:
    """One (application, cluster) selection scenario."""

    name: str
    app: str
    cluster: str
    arch: str
    dataset: str
    avg_file_size: int  # original bytes per file
    inputs: SelectionInputs
    candidate_names: tuple[str, ...]
    expected_selection: str  # what the paper picks

    def candidates(self) -> list[CompressorCandidate]:
        return [
            candidate_from_profile(
                PAPER_PROFILES[n], self.dataset, self.avg_file_size, self.arch
            )
            for n in self.candidate_names
        ]


def srgan_gtx() -> SelectionCase:
    """§VII-E1: SRGAN on GTX — sync I/O, EM dataset (1.6 MB tif files).

    4 nodes × 60 GB host 240 GB of the 500 GB dataset ⇒ required ratio
    ≈ 2.1. Compressed files ≈ 762 KB ⇒ use the 512 KB Table VI row for
    compressed reads and the 2 MB row for raw reads. The paper selects
    lzsse8 (and lz4hc also qualifies)."""
    return SelectionCase(
        name="srgan-gtx",
        app="SRGAN",
        cluster="GTX",
        arch="skx",
        dataset="em",
        avg_file_size=int(1.6 * MB),
        inputs=SelectionInputs(
            io_mode="sync",
            c_batch=256,
            s_batch_uncompressed=410 * MB,
            perf_uncompressed=IoPerformance(tpt_read=3158, bdw_read=6663 * MB),
            perf_compressed=IoPerformance(tpt_read=9469, bdw_read=4969 * MB),
            t_iter=9.689,
            parallelism=4,
            required_ratio=500 / 240,
        ),
        candidate_names=("lzsse8", "lz4hc", "brotli", "zling", "lzma"),
        expected_selection="lzsse8",
    )


def frnn_cpu() -> SelectionCase:
    """§VII-E2: FRNN on CPU — async I/O, tokamak dataset (1.2 KB files).

    Async hides decompression behind the 655 ms iteration, so every
    candidate qualifies and the highest ratio (brotli) wins."""
    return SelectionCase(
        name="frnn-cpu",
        app="FRNN",
        cluster="CPU",
        arch="skx",
        dataset="tokamak",
        avg_file_size=1200,
        inputs=SelectionInputs(
            io_mode="async",
            c_batch=512,
            s_batch_uncompressed=615 * KB,
            perf_uncompressed=IoPerformance(tpt_read=29103, bdw_read=30 * MB),
            perf_compressed=IoPerformance(tpt_read=29103, bdw_read=30 * MB),
            t_iter=0.655,
            parallelism=2,
            required_ratio=1.0,
        ),
        candidate_names=("lzf", "lzsse8", "brotli"),
        expected_selection="brotli",
    )


def srgan_v100() -> SelectionCase:
    """§VII-E3: SRGAN on V100 — sync I/O on POWER9, 4× faster compute.

    The tight 125 µs/file budget disqualifies every non-trivial
    compressor; the paper accepts lz4hc as the fastest candidate with a
    real ratio (95.3 % of baseline). We encode the paper's pick."""
    return SelectionCase(
        name="srgan-v100",
        app="SRGAN",
        cluster="V100",
        arch="power9",
        dataset="em",
        avg_file_size=int(1.6 * MB),
        inputs=SelectionInputs(
            io_mode="sync",
            c_batch=256,
            s_batch_uncompressed=410 * MB,
            perf_uncompressed=IoPerformance(tpt_read=5026, bdw_read=10546 * MB),
            perf_compressed=IoPerformance(tpt_read=8654, bdw_read=4540 * MB),
            t_iter=2.416,
            parallelism=4,
            required_ratio=1.0,
        ),
        candidate_names=("lz4fast", "lz4hc", "brotli", "lzma"),
        expected_selection="lz4hc",
    )


ALL_CASES = {
    "srgan-gtx": srgan_gtx,
    "frnn-cpu": frnn_cpu,
    "srgan-v100": srgan_v100,
}


def get_case(name: str) -> SelectionCase:
    """Look up one of the paper's case studies by name."""
    try:
        return ALL_CASES[name]()
    except KeyError:
        raise KeyError(
            f"unknown case {name!r}; choose from {sorted(ALL_CASES)}"
        ) from None
