"""Fixtures for the observability suite."""

from __future__ import annotations

import pytest

from repro.fanstore.metadata import normalize


@pytest.fixture(scope="module")
def originals(raw_dataset_dir):
    """store path → raw bytes, for byte-identity assertions."""
    expected = {}
    train = raw_dataset_dir / "train"
    for p in sorted(train.rglob("*")):
        if p.is_file():
            expected[normalize(str(p.relative_to(train)))] = p.read_bytes()
    for p in sorted((raw_dataset_dir / "val").iterdir()):
        if p.is_file():
            expected[f"val/{p.name}"] = p.read_bytes()
    return expected
