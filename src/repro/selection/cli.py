"""CLI for the selection algorithm: ``fanstore-select CASE``.

Prints the Table VII-style audit for one of the paper's case studies,
or for custom inputs supplied as flags.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.selection.cases import ALL_CASES, get_case
from repro.selection.model import CompressorSelector
from repro.util.units import format_seconds


def run_case(name: str) -> str:
    """Execute one case study; returns the printable report."""
    case = get_case(name)
    selector = CompressorSelector(case.inputs)
    result = selector.select(case.candidates())
    lines = [
        f"case {case.name}: {case.app} on {case.cluster} "
        f"({case.inputs.io_mode} I/O, dataset {case.dataset})",
        f"{'compressor':<10} {'ratio':>6} {'d.cost':>12} {'budget':>12} "
        f"{'perf':>5} {'cap':>4}",
    ]
    for v in result.verdicts:
        lines.append(
            f"{v.candidate.name:<10} {v.candidate.ratio:>6.1f} "
            f"{format_seconds(v.candidate.decompress_cost):>12} "
            f"{format_seconds(max(v.budget_per_file, 0.0)):>12} "
            f"{'ok' if v.meets_performance else 'NO':>5} "
            f"{'ok' if v.meets_capacity else 'NO':>4}"
        )
    if result.selected is not None:
        picked = result.selected.name
    elif result.fallback is not None:
        frac = selector.performance_fraction(result.fallback)
        picked = (
            f"(none strict) fallback {result.fallback.name} "
            f"at {frac:.1%} of baseline"
        )
    else:
        picked = "(none)"
    lines.append(f"selected: {picked}   (paper: {case.expected_selection})")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="fanstore-select",
        description="Run the §VI-B compressor-selection algorithm.",
    )
    parser.add_argument(
        "case",
        nargs="?",
        default=None,
        choices=sorted(ALL_CASES),
        help="paper case study to run (default: all)",
    )
    args = parser.parse_args(argv)
    names = [args.case] if args.case else sorted(ALL_CASES)
    for name in names:
        print(run_case(name))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
