"""The chunk-partition-and-permute baseline (§III's "technical
workaround").

Instead of a global namespace, each node sees only its local chunk of
the dataset and samples batches from it; every few epochs the chunks
are permuted around the ring so the global view is only *eventually*
maintained. The paper declines this design because the time-divided
variance has unclear convergence effects and the permutation adds
overhead — this implementation exists to quantify both claims in the
ablation benchmark (local-sampling skew vs FanStore's global view, and
the permutation traffic).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.communicator import Communicator
from repro.errors import ReproError

_PERMUTE_TAG = 0x0C41


@dataclass
class ChunkedStats:
    permutations: int = 0
    permuted_bytes: int = 0


class ChunkedStore:
    """Per-node chunk of (path, bytes) pairs with ring permutation."""

    def __init__(
        self,
        comm: Communicator,
        chunk: dict[str, bytes],
        *,
        permute_every: int = 4,
    ) -> None:
        if permute_every < 1:
            raise ReproError("permute_every must be >= 1")
        self.comm = comm
        self.chunk = dict(chunk)
        self.permute_every = permute_every
        self.stats = ChunkedStats()
        self._epochs_since_permute = 0

    # -- sampling ----------------------------------------------------------

    def local_paths(self) -> list[str]:
        return sorted(self.chunk)

    def sample_batch(self, size: int, *, seed: int = 0) -> list[tuple[str, bytes]]:
        """A batch drawn only from the local chunk — the partial view
        whose variance §III warns about."""
        paths = self.local_paths()
        if not paths:
            raise ReproError("chunk is empty")
        rng = np.random.default_rng(seed)
        picks = rng.integers(0, len(paths), size=size)
        return [(paths[i], self.chunk[paths[i]]) for i in picks]

    # -- the permutation -----------------------------------------------------

    def end_epoch(self) -> bool:
        """Advance the epoch counter; permutes chunks around the ring
        when ``permute_every`` epochs have elapsed. Returns True when a
        permutation happened (a collective — all ranks must call this
        the same number of times)."""
        self._epochs_since_permute += 1
        if self._epochs_since_permute < self.permute_every:
            return False
        self._epochs_since_permute = 0
        self.permute()
        return True

    def permute(self) -> None:
        """Ship the whole chunk to the right neighbor (one ring shift)."""
        right = (self.comm.rank + 1) % self.comm.size
        left = (self.comm.rank - 1) % self.comm.size
        payload = list(self.chunk.items())
        self.comm.send(payload, right, _PERMUTE_TAG)
        incoming = self.comm.recv(left, _PERMUTE_TAG)
        self.chunk = dict(incoming)
        self.stats.permutations += 1
        self.stats.permuted_bytes += sum(len(v) for _, v in payload)

    # -- analysis helpers -------------------------------------------------------

    def coverage_after(self, epochs: int) -> float:
        """Fraction of the global dataset this node has had access to
        after ``epochs`` epochs (global view is reached only after
        ``size × permute_every`` epochs)."""
        shifts = epochs // self.permute_every
        return min((1 + shifts) / self.comm.size, 1.0)
