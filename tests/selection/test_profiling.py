"""Profiling helpers: measured and modeled inputs to the algorithm."""

from __future__ import annotations

import pytest

from repro.compressors.profiles import get_profile
from repro.compressors.registry import get_compressor
from repro.errors import SelectionError
from repro.selection.profiling import (
    candidate_from_profile,
    measure_client_read,
    model_read_performance,
    profile_compressor,
)
from repro.simnet.devices import ssd
from repro.util.units import KIB, MB


class TestProfileCompressor:
    def test_measures_real_codec(self):
        samples = [b"compressible sample " * 100] * 3
        prof = profile_compressor(get_compressor("zlib-1"), samples)
        assert prof.name == "zlib-1"
        assert prof.ratio > 3.0
        assert prof.cost_per_file > 0
        assert prof.throughput == pytest.approx(1.0 / prof.cost_per_file, rel=0.01)

    def test_as_candidate_clamps_ratio(self):
        samples = [b"\x00" * 100]
        prof = profile_compressor(get_compressor("memcpy"), samples)
        cand = prof.as_candidate()
        assert cand.ratio >= 1.0

    def test_empty_samples_rejected(self):
        with pytest.raises(SelectionError):
            profile_compressor(get_compressor("zlib-1"), [])


class TestCandidateFromProfile:
    def test_uses_dataset_ratio_and_arch_cost(self):
        prof = get_profile("lz4hc")
        cand = candidate_from_profile(prof, "em", int(1.6 * MB), "power9")
        assert cand.ratio == pytest.approx(2.0)
        assert cand.decompress_cost == pytest.approx(942e-6, rel=0.05)


class TestMeasureClientRead:
    def test_live_measurement(self, single_store):
        client = single_store.client
        paths = [f"cls0000/{n}" for n in client.listdir("cls0000")]
        perf = measure_client_read(client, paths, repetitions=2)
        assert perf.tpt_read > 0
        assert perf.bdw_read > 0

    def test_requires_paths(self, single_store):
        with pytest.raises(SelectionError):
            measure_client_read(single_store.client, [])


class TestModelReadPerformance:
    def test_matches_table6_row(self):
        perf = model_read_performance(ssd(), 512 * KIB, streams=4)
        tpt, bdw = ssd().table6_row(512 * KIB, 4)
        assert perf.tpt_read == pytest.approx(tpt)
        assert perf.bdw_read == pytest.approx(bdw)
