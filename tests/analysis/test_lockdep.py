"""Runtime lockdep witness: ABBA detection, Condition compatibility,
and the pytest plugin wiring."""

from __future__ import annotations

import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.analysis.lockdep import LockdepWitness, current_witness

REPO = Path(__file__).resolve().parents[2]


class TestWitness:
    def test_abba_inversion_is_a_cycle(self):
        with LockdepWitness() as w:
            a = threading.Lock()
            b = threading.Lock()
            with a:
                with b:
                    pass
            with b:  # deliberate inversion — never interleaves, still caught
                with a:
                    pass
        assert len(w.cycles) == 1
        report = w.report()
        assert "lock-order cycle" in report
        assert "acquired while holding" in report

    def test_three_lock_cycle_detected(self):
        with LockdepWitness() as w:
            a = threading.Lock()
            b = threading.Lock()
            c = threading.Lock()
            for first, second in ((a, b), (b, c), (c, a)):
                with first:
                    with second:
                        pass
        assert len(w.cycles) == 1
        assert len(w.cycles[0].chain) == 3

    def test_consistent_order_is_clean(self):
        with LockdepWitness() as w:
            a = threading.Lock()
            b = threading.Lock()
            for _ in range(2):
                with a:
                    with b:
                        pass
        assert not w.cycles
        assert len(w.edges) == 1  # first observation only

    def test_rlock_reentrancy_records_no_edge(self):
        with LockdepWitness() as w:
            r = threading.RLock()
            with r:
                with r:
                    pass
        assert not w.edges and not w.cycles

    def test_condition_with_default_rlock_round_trips(self):
        with LockdepWitness() as w:
            cv = threading.Condition()
            done = []

            def worker():
                with cv:
                    done.append(True)
                    cv.notify_all()

            with cv:
                t = threading.Thread(target=worker)
                t.start()
                assert cv.wait_for(lambda: done, timeout=5.0)
            t.join(timeout=5.0)
        assert not w.cycles

    def test_condition_with_plain_lock_uses_fallback(self):
        # _LockProxy omits the private Condition protocol on purpose;
        # Condition must take its non-reentrant fallback and still work.
        with LockdepWitness() as w:
            cv = threading.Condition(threading.Lock())
            done = []

            def worker():
                with cv:
                    done.append(True)
                    cv.notify()

            with cv:
                t = threading.Thread(target=worker)
                t.start()
                assert cv.wait_for(lambda: done, timeout=5.0)
            t.join(timeout=5.0)
        assert not w.cycles

    def test_uninstall_restores_factories_and_current(self):
        before_lock = threading.Lock
        before_rlock = threading.RLock
        before_current = current_witness()
        with LockdepWitness() as w:
            assert threading.Lock is not before_lock
            assert current_witness() is w
        assert threading.Lock is before_lock
        assert threading.RLock is before_rlock
        assert current_witness() is before_current


ABBA_TEST = """
import threading

def test_abba():
    a = threading.Lock()
    b = threading.Lock()
    with a:
        with b:
            pass
    with b:
        with a:
            pass
"""


def _run_plugin(tmp_path: Path, extra_env: dict) -> subprocess.CompletedProcess:
    test = tmp_path / "test_inversion.py"
    test.write_text(ABBA_TEST, encoding="utf-8")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.update(extra_env)
    return subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "-p",
            "repro.analysis.pytest_plugin",
            "-q",
            str(test),
        ],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


class TestPytestPlugin:
    def test_cycle_fails_the_run_with_report(self, tmp_path):
        proc = _run_plugin(tmp_path, {"FANSTORE_LOCKDEP": "1"})
        assert proc.returncode != 0, proc.stdout + proc.stderr
        assert "lock-order cycle" in proc.stdout

    def test_opt_out_disables_the_witness(self, tmp_path):
        proc = _run_plugin(tmp_path, {"FANSTORE_LOCKDEP": "0"})
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "lock-order cycle" not in proc.stdout

    @pytest.mark.skipif(
        os.environ.get("FANSTORE_LOCKDEP", "1") in ("0", "off", "no"),
        reason="lockdep disabled for this session",
    )
    def test_witness_active_in_this_session(self):
        assert current_witness() is not None
