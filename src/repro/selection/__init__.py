"""Compressor selection (§VI): Equations 1–3, profiling inputs, and the
paper's three case studies."""

from repro.selection.cases import ALL_CASES, SelectionCase, get_case
from repro.selection.model import (
    CompressorCandidate,
    CompressorSelector,
    IoPerformance,
    SelectionInputs,
    SelectionResult,
    Verdict,
    t_read,
)
from repro.selection.profiling import (
    DecompressionProfile,
    candidate_from_profile,
    candidates_from_metrics,
    measure_client_read,
    model_read_performance,
    profile_compressor,
    profile_from_metrics,
)

__all__ = [
    "CompressorSelector",
    "SelectionInputs",
    "SelectionResult",
    "CompressorCandidate",
    "IoPerformance",
    "Verdict",
    "t_read",
    "DecompressionProfile",
    "profile_compressor",
    "candidate_from_profile",
    "profile_from_metrics",
    "candidates_from_metrics",
    "measure_client_read",
    "model_read_performance",
    "SelectionCase",
    "ALL_CASES",
    "get_case",
]
