"""Deterministic crash-point and disk-fault injection.

The durability layer (:mod:`repro.fanstore.journal`) is only as
trustworthy as the worst instruction boundary it can be killed at, so
every durability-relevant transition is bracketed by a named *crash
point*: a :func:`crash_point` call that is free when no plan is armed
and raises a process-fatal :class:`SimulatedCrashError` when the armed
:class:`CrashPlan` says this occurrence should die. Plans are seeded
(`random.Random(seed)`), so a drill that crashes rank 1 on the third
``apply.renamed`` replays bit-identically — same contract as
:class:`repro.comm.chaos.FaultPlan` and
:class:`repro.fanstore.corruption.StorageFaultPlan`.

:class:`DiskFaultInjector` covers the resource-exhaustion half:
injectable ENOSPC/EMFILE on the backend write path plus a fake
free-bytes figure for the journal's low-watermark check, so the
``StorageFullError`` path is testable without actually filling a disk.
"""

from __future__ import annotations

import errno as _errno
import fnmatch
import random
import threading
from dataclasses import dataclass, field

__all__ = [
    "CRASH_POINTS",
    "CrashEvent",
    "CrashPlan",
    "DiskFaultInjector",
    "SimulatedCrashError",
    "crash_point",
]


class SimulatedCrashError(BaseException):
    """A :class:`CrashPlan` killed the process at a crash point.

    Deliberately **not** an :class:`Exception`: a simulated crash must
    behave like ``kill -9`` — no ``except Exception`` recovery arm, no
    retry ladder, no cleanup handler in the store may absorb it. Only
    the test harness (which catches :class:`BaseException` around the
    rank body) sees it.
    """

    def __init__(self, point: str, rank: int | None) -> None:
        where = f"rank {rank}" if rank is not None else "unknown rank"
        super().__init__(f"simulated crash at {point!r} on {where}")
        self.point = point
        self.rank = rank


#: Every registered crash point, in write-path order. ``crash_point``
#: rejects names outside this tuple so a typo in instrumentation (or in
#: a drill) fails loudly instead of silently never firing; the
#: crash-drill sweep parametrises over exactly this tuple.
CRASH_POINTS: tuple[str, ...] = (
    # -- journalled mutation, in protocol order -------------------------
    "journal.intent",      # intent record durable, apply not started
    "apply.tmp_written",   # tmp blob written + fsynced, not yet renamed
    "apply.renamed",       # rename done, parent dir not yet fsynced
    "apply.done",          # apply fully durable, commit not yet written
    "journal.commit",      # commit record durable, ack not yet sent
    # -- journal maintenance --------------------------------------------
    "journal.rotate",      # new segment created, old one still current
    "journal.checkpoint",  # checkpoint durable, old segments not yet GCed
    # -- restart recovery (recovery must itself be crash-safe) ----------
    "recovery.scanned",    # journal parsed, nothing replayed yet
    "recovery.replayed",   # roll-forward done, rollback GC not started
    "recovery.done",       # recovery complete, journal not yet reopened
)

_POINT_SET = frozenset(CRASH_POINTS)


@dataclass(frozen=True)
class CrashEvent:
    """One fired (or deliberately skipped) crash-point occurrence."""

    point: str
    rank: int | None
    occurrence: int  # 1-based count of matching visits to this rule
    fired: bool


@dataclass
class _Rule:
    pattern: str                 # fnmatch pattern over crash-point names
    rank: int | None             # None = any rank (incl. unknown)
    times: int                   # fire at most this many occurrences
    probability: float           # per-visit chance once past `skip`
    skip: int                    # let this many matching visits live
    seen: int = 0                # matching visits so far
    fired: int = 0               # crashes delivered so far


class CrashPlan:
    """A seeded, chainable schedule of process crashes.

    Arm with :meth:`install` (or use the plan as a context manager);
    only one plan is active per process at a time. Rules are
    first-match-wins in registration order, mirroring the other fault
    plans in this repo.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._rules: list[_Rule] = []
        self._lock = threading.Lock()
        self.events: list[CrashEvent] = []

    # -- registration (chainable) -----------------------------------------

    def crash_at(
        self,
        pattern: str,
        *,
        rank: int | None = None,
        times: int = 1,
        probability: float = 1.0,
        skip: int = 0,
    ) -> "CrashPlan":
        """Crash when a crash point matching ``pattern`` is visited.

        ``skip`` spares the first N matching visits (so "die on the
        third write" is expressible), ``times`` bounds deliveries, and
        ``probability`` draws from the plan's seeded RNG for chaos-style
        sweeps. An exact ``pattern`` must name a registered point.
        """
        if "*" not in pattern and "?" not in pattern:
            _check_point(pattern)
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of range: {probability}")
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        if skip < 0:
            raise ValueError(f"skip must be >= 0, got {skip}")
        with self._lock:
            self._rules.append(
                _Rule(pattern, rank, times, probability, skip)
            )
        return self

    # -- arming ------------------------------------------------------------

    def install(self) -> "CrashPlan":
        global _ACTIVE
        with _ACTIVE_LOCK:
            _ACTIVE = self
        return self

    def uninstall(self) -> None:
        global _ACTIVE
        with _ACTIVE_LOCK:
            if _ACTIVE is self:
                _ACTIVE = None

    def __enter__(self) -> "CrashPlan":
        return self.install()

    def __exit__(self, *_exc: object) -> None:
        self.uninstall()

    # -- the hook's decision ----------------------------------------------

    def _visit(self, point: str, rank: int | None) -> None:
        with self._lock:
            for rule in self._rules:
                if rule.rank is not None and rule.rank != rank:
                    continue
                if not fnmatch.fnmatchcase(point, rule.pattern):
                    continue
                rule.seen += 1
                if rule.seen <= rule.skip or rule.fired >= rule.times:
                    return
                if (
                    rule.probability < 1.0
                    and self._rng.random() >= rule.probability
                ):
                    self.events.append(
                        CrashEvent(point, rank, rule.seen, fired=False)
                    )
                    return
                rule.fired += 1
                self.events.append(
                    CrashEvent(point, rank, rule.seen, fired=True)
                )
                raise SimulatedCrashError(point, rank)

    @property
    def crashes_delivered(self) -> int:
        with self._lock:
            return sum(r.fired for r in self._rules)


_ACTIVE: CrashPlan | None = None
_ACTIVE_LOCK = threading.Lock()


def _check_point(name: str) -> None:
    if name not in _POINT_SET:
        raise ValueError(
            f"unknown crash point {name!r}; registered points: "
            + ", ".join(CRASH_POINTS)
        )


def crash_point(name: str, rank: int | None = None) -> None:
    """Durability instrumentation hook: dies here iff the active
    :class:`CrashPlan` says so. ``rank`` identifies the visiting rank
    when the call site knows it (journal/daemon paths do; bare backend
    helpers may not)."""
    _check_point(name)
    plan = _ACTIVE
    if plan is not None:
        plan._visit(name, rank)


class DiskFaultInjector:
    """Injectable storage-resource exhaustion for the write path.

    ``fail_puts`` arms OSErrors (ENOSPC, EMFILE, ...) against matching
    store paths with an occurrence budget; ``set_free_bytes`` feeds the
    journal's low-watermark probe a fake figure so the early-refusal
    path (typed :class:`~repro.errors.StorageFullError` *before* any
    bytes are torn) is drillable. Thread-safe; deterministic — no RNG
    is involved, budgets burn in arrival order.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._put_rules: list[dict] = []
        self._free_bytes: int | None = None
        self.errors_injected: int = 0

    # -- arming ------------------------------------------------------------

    def fail_puts(
        self,
        pattern: str = "*",
        *,
        error: int = _errno.ENOSPC,
        times: int = 1,
    ) -> "DiskFaultInjector":
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        with self._lock:
            self._put_rules.append(
                {"pattern": pattern, "errno": error, "left": times}
            )
        return self

    def set_free_bytes(self, free: int | None) -> "DiskFaultInjector":
        """Override what the low-watermark probe sees (None = real)."""
        with self._lock:
            self._free_bytes = free
        return self

    # -- probes used by the durability layer -------------------------------

    def check_put(self, path: str) -> None:
        """Raise the armed OSError for this put, if any budget matches."""
        with self._lock:
            for rule in self._put_rules:
                if rule["left"] <= 0:
                    continue
                if not fnmatch.fnmatchcase(path, rule["pattern"]):
                    continue
                rule["left"] -= 1
                self.errors_injected += 1
                code = rule["errno"]
                raise OSError(code, _errno.errorcode.get(code, "EIO"), path)

    def free_bytes(self, real: int) -> int:
        with self._lock:
            return real if self._free_bytes is None else self._free_bytes
