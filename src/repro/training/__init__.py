"""Training substrate: loaders, models, the functional data-parallel
trainer, application profiles (Table V), and the cluster-scale
simulation behind Figures 8–9."""

from repro.training.apps import APPLICATIONS, AppProfile, frnn, get_app, resnet50, srgan
from repro.training.loader import (
    AsyncLoader,
    Batch,
    SyncLoader,
    identity_decoder,
    list_training_files,
)
from repro.training.models import (
    LSTMClassifier,
    MLP,
    flatten,
    softmax_cross_entropy,
    unflatten_into,
)
from repro.training.simulate import (
    PROFILE_NODES,
    SimJob,
    SimReport,
    simulate_run,
    weak_scaling_sweep,
)
from repro.training.trainer import (
    DataParallelTrainer,
    TrainReport,
    make_array_collate,
)

__all__ = [
    "SyncLoader",
    "AsyncLoader",
    "Batch",
    "identity_decoder",
    "list_training_files",
    "MLP",
    "LSTMClassifier",
    "flatten",
    "unflatten_into",
    "softmax_cross_entropy",
    "DataParallelTrainer",
    "TrainReport",
    "make_array_collate",
    "AppProfile",
    "APPLICATIONS",
    "get_app",
    "srgan",
    "frnn",
    "resnet50",
    "SimJob",
    "SimReport",
    "simulate_run",
    "weak_scaling_sweep",
    "PROFILE_NODES",
]
