"""Table IV — headline compressor ratios on the six datasets.

Two layers: the paper's published constants (the calibrated profiles,
regenerating the table exactly) and the real measured ratios of the
aliased suite members on the synthetic datasets (regenerating its
*shape*: which datasets compress, which compressor wins where).
"""

from __future__ import annotations

import pytest

from repro.bench.report import PaperComparison
from repro.compressors.profiles import PAPER_PROFILES
from repro.compressors.registry import get_compressor
from repro.datasets.spec import TABLE2
from repro.datasets.synthetic import sample_files

COMPRESSORS = ("lzsse8", "lz4hc", "lzma", "xz")
DATASETS = ("em", "tokamak", "lung", "astro", "imagenet", "language")

PAPER_TABLE4 = {
    "lzsse8": (2.3, 2.6, 5.7, 2.6, 1.0, 2.8),
    "lz4hc": (2.0, 3.0, 6.5, 2.2, 1.0, 2.6),
    "lzma": (4.0, 3.6, 10.8, 3.4, 1.0, 4.0),
    "xz": (4.0, 3.4, 10.8, 3.4, 1.0, 4.0),
}


def _measure_ratios():
    measured = {}
    for comp_name in COMPRESSORS:
        comp = get_compressor(comp_name)  # alias → real suite member
        row = []
        for ds in DATASETS:
            size = min(TABLE2[ds].gen_avg_bytes, 16 * 1024)
            samples = sample_files(ds, 3, size=size, seed=4)
            total = sum(len(s) for s in samples)
            packed = sum(len(comp.compress(s)) for s in samples)
            row.append(total / packed)
        measured[comp_name] = row
    return measured


def test_table4_ratios(benchmark, emit_report):
    measured = benchmark.pedantic(_measure_ratios, rounds=1, iterations=1)

    report = PaperComparison(
        "Table IV",
        "compression ratios on the six datasets (measured | paper)",
        columns=["compressor"] + [f"{d}" for d in DATASETS],
    )
    for name in COMPRESSORS:
        report.add_row(
            name + " (measured)",
            *[f"{v:.1f}" for v in measured[name]],
        )
        report.add_row(
            name + " (paper)",
            *[f"{v:.1f}" for v in PAPER_TABLE4[name]],
        )
    report.add_note(
        "measured = aliased suite member on the synthetic datasets; "
        "profiles carry the paper constants verbatim"
    )
    emit_report(report)

    # Shape criteria.
    for name in COMPRESSORS:
        row = dict(zip(DATASETS, measured[name]))
        # (1) ImageNet is incompressible for everyone.
        assert row["imagenet"] < 1.1
        # (2) the lung dataset compresses hardest.
        assert row["lung"] == max(row.values())
        # (3) everything else lands in a sane 1.3-8x band.
        for ds in ("em", "tokamak", "astro", "language"):
            assert 1.2 < row[ds] < 8.0, (name, ds, row[ds])
    # (4) the profiles reproduce the paper's constants by construction.
    for name in COMPRESSORS:
        profile = PAPER_PROFILES[name]
        for ds, expected in zip(DATASETS, PAPER_TABLE4[name]):
            assert profile.ratio_for(ds) == pytest.approx(expected, rel=0.2)