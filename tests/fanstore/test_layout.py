"""The Table I binary partition format."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.fanstore.layout import (
    COUNT_LEN,
    ENTRY_HEADER_LEN,
    FLAG_BROADCAST,
    STAT_LEN,
    FileStat,
    iter_partition,
    read_partition,
    write_partition,
)


def make_entries(n=3):
    return [
        (
            f"dir/file{i}.bin",
            i + 1,
            FileStat(st_size=10 * (i + 1), partition_id=i),
            bytes([i]) * (10 * (i + 1) // 2),
        )
        for i in range(n)
    ]


class TestStatRecord:
    def test_packs_to_exactly_144_bytes(self):
        assert len(FileStat().pack()) == STAT_LEN == 144

    def test_roundtrip_all_fields(self):
        stat = FileStat(
            st_mode=0o100600,
            st_ino=42,
            st_dev=7,
            st_nlink=2,
            st_uid=1000,
            st_gid=100,
            st_size=123_456_789,
            st_blksize=8192,
            st_blocks=999,
            st_atime_ns=1_700_000_000_000_000_001,
            st_mtime_ns=1_700_000_000_000_000_002,
            st_ctime_ns=1_700_000_000_000_000_003,
            home_rank=-1,
            partition_id=17,
            flags=FLAG_BROADCAST,
        )
        assert FileStat.unpack(stat.pack()) == stat

    def test_unpack_wrong_length_raises(self):
        with pytest.raises(FormatError):
            FileStat.unpack(b"\x00" * 10)

    def test_with_locality(self):
        stat = FileStat(st_size=5)
        located = stat.with_locality(3, partition_id=9)
        assert located.home_rank == 3
        assert located.partition_id == 9
        assert located.st_size == 5

    def test_flag_properties(self):
        assert FileStat(flags=FLAG_BROADCAST).is_broadcast
        assert not FileStat().is_broadcast

    @settings(max_examples=40, deadline=None)
    @given(
        size=st.integers(min_value=0, max_value=2**60),
        rank=st.integers(min_value=-1, max_value=2**31 - 1),
        pid=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_roundtrip_property(self, size, rank, pid):
        stat = FileStat(st_size=size, home_rank=rank, partition_id=pid)
        assert FileStat.unpack(stat.pack()) == stat


class TestPartitionFormat:
    def test_header_layout_matches_table1(self):
        """4-byte count; per entry 256+2+144+8 = 410 header bytes."""
        assert COUNT_LEN == 4
        assert ENTRY_HEADER_LEN == 256 + 2 + 144 + 8
        entries = make_entries(1)
        buf = io.BytesIO()
        n = write_partition(entries, buf)
        assert n == COUNT_LEN + ENTRY_HEADER_LEN + len(entries[0][3])

    def test_roundtrip(self):
        entries = make_entries(5)
        buf = io.BytesIO()
        write_partition(entries, buf)
        buf.seek(0)
        read = read_partition(buf)
        assert len(read) == 5
        for (path, cid, stat, data), entry in zip(entries, read):
            assert entry.path == path
            assert entry.compressor_id == cid
            assert entry.stat == stat
            assert entry.compressed_size == len(data)
            assert entry.data == data

    def test_metadata_only_scan_skips_payload(self):
        entries = make_entries(4)
        buf = io.BytesIO()
        write_partition(entries, buf)
        buf.seek(0)
        scanned = read_partition(buf, with_data=False)
        for (_, _, _, data), entry in zip(entries, scanned):
            assert entry.data is None
            assert entry.compressed_size == len(data)
            assert entry.data_offset > 0

    def test_data_offsets_allow_direct_access(self):
        entries = make_entries(3)
        buf = io.BytesIO()
        write_partition(entries, buf)
        raw = buf.getvalue()
        buf.seek(0)
        for (_, _, _, data), entry in zip(
            entries, iter_partition(io.BytesIO(raw), with_data=False)
        ):
            assert raw[entry.data_offset : entry.data_offset + len(data)] == data

    def test_empty_partition(self):
        buf = io.BytesIO()
        write_partition([], buf)
        buf.seek(0)
        assert read_partition(buf) == []

    def test_read_from_path(self, tmp_path):
        f = tmp_path / "p.fst"
        with open(f, "wb") as fh:
            write_partition(make_entries(2), fh)
        assert len(read_partition(f)) == 2

    def test_truncated_partition_raises(self):
        buf = io.BytesIO()
        write_partition(make_entries(2), buf)
        raw = buf.getvalue()[:-5]
        with pytest.raises(FormatError):
            read_partition(io.BytesIO(raw))

    def test_absolute_path_rejected(self):
        buf = io.BytesIO()
        with pytest.raises(FormatError):
            write_partition([("/abs/path", 0, FileStat(), b"")], buf)

    def test_empty_path_rejected(self):
        buf = io.BytesIO()
        with pytest.raises(FormatError):
            write_partition([("", 0, FileStat(), b"")], buf)

    def test_overlong_path_rejected(self):
        buf = io.BytesIO()
        with pytest.raises(FormatError):
            write_partition([("x" * 256, 0, FileStat(), b"")], buf)

    def test_255_byte_path_accepted(self):
        buf = io.BytesIO()
        path = "d/" + "x" * 253
        write_partition([(path, 0, FileStat(), b"ab")], buf)
        buf.seek(0)
        assert read_partition(buf)[0].path == path

    def test_compressor_id_range_checked(self):
        buf = io.BytesIO()
        with pytest.raises(FormatError):
            write_partition([("a", 70_000, FileStat(), b"")], buf)

    def test_unicode_paths(self):
        buf = io.BytesIO()
        path = "datä/ünïcode-файл.bin"
        write_partition([(path, 1, FileStat(), b"xy")], buf)
        buf.seek(0)
        assert read_partition(buf)[0].path == path

    @settings(max_examples=25, deadline=None)
    @given(
        payloads=st.lists(st.binary(max_size=200), min_size=0, max_size=8)
    )
    def test_roundtrip_property(self, payloads):
        entries = [
            (f"f{i}", 1, FileStat(st_size=len(p)), p)
            for i, p in enumerate(payloads)
        ]
        buf = io.BytesIO()
        write_partition(entries, buf)
        buf.seek(0)
        back = read_partition(buf)
        assert [e.data for e in back] == payloads
