"""Streaming and batch statistics used by benchmarks and profilers."""

from __future__ import annotations

import math
from dataclasses import dataclass


class RunningStats:
    """Welford streaming mean/variance with min/max tracking.

    Numerically stable for long benchmark runs; O(1) memory.
    """

    __slots__ = ("count", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        """Fold one sample into the accumulator."""
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def extend(self, xs) -> None:
        """Fold an iterable of samples."""
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Sample (n-1) variance."""
        if self.count < 2:
            return math.nan
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else math.nan

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two accumulators (parallel Welford merge)."""
        merged = RunningStats()
        n = self.count + other.count
        if n == 0:
            return merged
        delta = other._mean - self._mean
        merged.count = n
        merged._mean = self._mean + delta * other.count / n
        merged._m2 = (
            self._m2 + other._m2 + delta * delta * self.count * other.count / n
        )
        merged.min = min(self.min, other.min)
        merged.max = max(self.max, other.max)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunningStats(count={self.count}, mean={self.mean:.6g}, "
            f"stdev={self.stdev:.6g}, min={self.min:.6g}, max={self.max:.6g})"
        )


def percentile(samples, q: float) -> float:
    """Linear-interpolation percentile of a sequence, ``q`` in [0, 100].

    Matches numpy's default ("linear") method but avoids requiring an
    ndarray for tiny sample sets.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    data = sorted(samples)
    if not data:
        raise ValueError("percentile of empty sequence")
    if len(data) == 1:
        return float(data[0])
    pos = (len(data) - 1) * q / 100.0
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return float(data[lo])
    frac = pos - lo
    return float(data[lo]) * (1.0 - frac) + float(data[hi]) * frac


@dataclass
class Summary:
    """Batch summary of a sample set."""

    count: int
    mean: float
    stdev: float
    min: float
    p50: float
    p95: float
    max: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.min,
            "p50": self.p50,
            "p95": self.p95,
            "max": self.max,
        }


def summarize(samples) -> Summary:
    """Compute a :class:`Summary` over a non-empty sample sequence."""
    data = list(samples)
    if not data:
        raise ValueError("summarize of empty sequence")
    rs = RunningStats()
    rs.extend(data)
    return Summary(
        count=rs.count,
        mean=rs.mean,
        stdev=rs.stdev if rs.count > 1 else 0.0,
        min=rs.min,
        p50=percentile(data, 50.0),
        p95=percentile(data, 95.0),
        max=rs.max,
    )
