"""Validation evaluation over the broadcast partition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.launcher import run_parallel
from repro.errors import ReproError
from repro.fanstore.store import FanStore
from repro.training.loader import SyncLoader, list_training_files
from repro.training.models import MLP
from repro.training.trainer import DataParallelTrainer, make_array_collate

FEATURES = 8


def decoder(raw: bytes, path: str):
    arr = np.frombuffer(raw[8 : 8 + FEATURES], dtype=np.uint8)
    return arr.astype(np.float64) / 255.0, int(arr[1]) % 2


def _trainer(store, comm=None):
    files = [p for p in list_training_files(store.client)
             if p.startswith("cls")]
    loader = SyncLoader(
        store.client, files, batch_size=6, epochs=2,
        rank=comm.rank if comm else 0,
        world_size=comm.size if comm else 1,
        seed=4, decoder=decoder,
    )
    return DataParallelTrainer(
        MLP([FEATURES, 6, 2], seed=11), loader,
        make_array_collate((FEATURES,), 2), comm=comm, lr=0.1,
    )


def _val_loader(store):
    val_files = [f"val/{n}" for n in store.client.listdir("val")]
    return SyncLoader(
        store.client, val_files, batch_size=len(val_files), epochs=1,
        decoder=decoder,
    )


class TestEvaluate:
    def test_returns_loss_and_accuracy(self, single_store):
        trainer = _trainer(single_store)
        trainer.train()
        loss, acc = trainer.evaluate(_val_loader(single_store))
        assert loss > 0
        assert 0.0 <= acc <= 1.0

    def test_empty_loader_rejected(self, single_store):
        trainer = _trainer(single_store)

        class Empty:
            def __iter__(self):
                return iter(())

        with pytest.raises(ReproError):
            trainer.evaluate(Empty())

    def test_broadcast_validation_identical_on_all_ranks(
        self, prepared_dataset
    ):
        """§V-B's point: the validation set is replicated to every node,
        so evaluation needs no communication and agrees everywhere."""

        def body(comm):
            with FanStore(prepared_dataset, comm=comm) as fs:
                trainer = _trainer(fs, comm)
                trainer.train()
                before = fs.daemon.stats.remote_fetches
                loss, acc = trainer.evaluate(_val_loader(fs))
                remote_during_eval = fs.daemon.stats.remote_fetches - before
                return loss, acc, remote_during_eval

        results = run_parallel(body, 3, timeout=120)
        losses = {round(loss, 12) for loss, _, _ in results}
        accs = {acc for _, acc, _ in results}
        assert len(losses) == 1 and len(accs) == 1
        # broadcast data is local everywhere: zero interconnect traffic
        assert all(remote == 0 for _, _, remote in results)
