"""The lzbench-like evaluation driver."""

from __future__ import annotations

import pytest

from repro.compressors.lzbench import (
    BenchResult,
    bench_compressor,
    format_results,
    pareto_front,
    run_suite,
)
from repro.errors import CompressionError


@pytest.fixture(scope="module")
def samples(request):
    return [
        b"an easily compressible sample file, repeated. " * 40,
        bytes(1000),
        bytes(range(256)) * 4,
    ]


def test_bench_measures_ratio_and_times(registry, samples):
    res = bench_compressor(registry.get("zlib-6"), samples)
    assert res.compressor == "zlib-6"
    assert res.files == 3
    assert res.input_bytes == sum(len(s) for s in samples)
    assert res.ratio > 2.0
    assert res.compress_seconds > 0
    assert res.decompress_seconds > 0
    assert res.decompress_throughput > 0


def test_bench_memcpy_ratio_is_one(registry, samples):
    res = bench_compressor(registry.get("memcpy"), samples)
    assert res.ratio == pytest.approx(1.0)


def test_bench_rejects_empty_samples(registry):
    with pytest.raises(ValueError):
        bench_compressor(registry.get("zlib-1"), [])


def test_bench_rejects_bad_repetitions(registry, samples):
    with pytest.raises(ValueError):
        bench_compressor(registry.get("zlib-1"), samples, repetitions=0)


def test_verify_catches_corruption(registry, samples):
    """A codec whose decompress lies must be caught by verify."""

    class LyingCodec:
        name = "liar"

        def compress(self, data):
            return data

        def decompress(self, data):
            return data[:-1] if data else data

    from repro.compressors.base import Compressor

    liar = Compressor(name="liar", codec=LyingCodec())
    with pytest.raises(CompressionError):
        bench_compressor(liar, samples, verify=True)


def test_run_suite_subset(registry, samples):
    results = run_suite(samples, names=["zlib-1", "fastlz-3", "rle"])
    assert [r.compressor for r in results] == ["zlib-1", "fastlz-3", "rle"]


def test_pareto_front_dominance(samples):
    mk = lambda name, ratio, cost: BenchResult(
        compressor=name,
        input_bytes=1000,
        compressed_bytes=int(1000 / ratio),
        compress_seconds=1.0,
        decompress_seconds=cost,
        files=1,
    )
    fast_low = mk("fast", 1.5, 0.001)
    slow_high = mk("slow", 4.0, 0.1)
    dominated = mk("bad", 1.2, 0.05)  # worse ratio AND slower than fast
    front = pareto_front([fast_low, slow_high, dominated])
    names = {r.compressor for r in front}
    assert names == {"fast", "slow"}


def test_format_results_renders_table(registry, samples):
    out = format_results(run_suite(samples, names=["zlib-1", "rle"]))
    assert "compressor" in out
    assert "zlib-1" in out and "rle" in out


def test_cli_main(tmp_path, capsys):
    from repro.compressors.lzbench import main

    f = tmp_path / "sample.bin"
    f.write_bytes(b"abc" * 500)
    assert main([str(f), "--names", "zlib-1,rle", "--reps", "2"]) == 0
    out = capsys.readouterr().out
    assert "zlib-1" in out
