"""The lint framework: findings, inline waivers, the pass registry.

A *pass* sees the whole project (every parsed source file) and yields
:class:`Finding` objects. The runner then applies the inline waiver
syntax::

    risky_call()  # lint: allow[rule-id] one-line reason why this is OK

A waiver suppresses findings of its rule on its own line (and, when the
comment stands alone on a line, on the next line — so long lines can
carry their waiver above them). ``file-allow`` at any line waives a rule
for the whole file::

    # lint: file-allow[determinism] replay trace timing is wall-clock by design

Every waiver must carry a written reason; a bare ``allow[...]`` is
itself a finding (rule ``waiver-syntax``) and does not suppress
anything. Waived findings stay in the report (marked) so reviewers see
what was silenced and why; only *unwaived* findings gate CI.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator

_WAIVER_RE = re.compile(
    r"#\s*lint:\s*(?P<scope>file-)?allow\[(?P<rules>[A-Za-z0-9_,\- ]+)\]"
    r"\s*(?P<reason>.*?)\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # as-given (usually repo-relative) display path
    line: int
    message: str
    waived: bool = False
    reason: str = ""  # the waiver's written reason, when waived

    def render(self) -> str:
        mark = " (waived: " + self.reason + ")" if self.waived else ""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}{mark}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "waived": self.waived,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class Waiver:
    """One parsed ``# lint: allow[...]`` comment."""

    rules: tuple[str, ...]
    reason: str
    line: int
    file_scope: bool = False


class SourceFile:
    """One parsed Python source file plus its waiver comments."""

    def __init__(self, path: Path, display: str | None = None) -> None:
        self.path = Path(path)
        self.display = display if display is not None else str(path)
        self.text = self.path.read_text(encoding="utf-8")
        self.lines = self.text.splitlines()
        self.parse_error: SyntaxError | None = None
        try:
            self.tree: ast.Module = ast.parse(self.text)
        except SyntaxError as exc:
            self.parse_error = exc
            self.tree = ast.Module(body=[], type_ignores=[])
        self.waivers: list[Waiver] = []
        self.bad_waivers: list[Finding] = []
        self._scan_waivers()

    def _scan_waivers(self) -> None:
        # only true comment tokens count — a waiver marker inside a
        # string literal or docstring is never a waiver
        try:
            tokens = [
                (tok.start[0], tok.string)
                for tok in tokenize.generate_tokens(
                    io.StringIO(self.text).readline
                )
                if tok.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError, SyntaxError):
            tokens = []
        for lineno, comment in tokens:
            if "lint:" not in comment:
                continue
            m = _WAIVER_RE.search(comment)
            if m is None:
                self.bad_waivers.append(
                    Finding(
                        rule="waiver-syntax",
                        path=self.display,
                        line=lineno,
                        message=(
                            "unparseable waiver comment; expected "
                            "'# lint: allow[rule-id] reason'"
                        ),
                    )
                )
                continue
            rules = tuple(
                r.strip() for r in m.group("rules").split(",") if r.strip()
            )
            reason = m.group("reason")
            if not rules or not reason:
                self.bad_waivers.append(
                    Finding(
                        rule="waiver-syntax",
                        path=self.display,
                        line=lineno,
                        message=(
                            "waiver without a written reason suppresses "
                            "nothing; add one after the ']'"
                        ),
                    )
                )
                continue
            self.waivers.append(
                Waiver(
                    rules=rules,
                    reason=reason,
                    line=lineno,
                    file_scope=m.group("scope") is not None,
                )
            )

    def waiver_for(self, rule: str, line: int) -> Waiver | None:
        """The waiver covering ``rule`` at ``line``, if any."""
        for w in self.waivers:
            if rule not in w.rules and "*" not in w.rules:
                continue
            if w.file_scope:
                return w
            if w.line == line:
                return w
            # a comment-only line waives the line after it
            if w.line == line - 1 and self._comment_only(w.line):
                return w
        return None

    def _comment_only(self, lineno: int) -> bool:
        body = self.lines[lineno - 1].split("#", 1)[0]
        return not body.strip()


class Project:
    """Every source file a lint run can see, plus the repo root (for
    cross-artifact passes like the metric catalogue, which reads
    ``docs/observability.md``)."""

    def __init__(self, files: Iterable[SourceFile], root: Path | None = None):
        self.files = list(files)
        self.root = Path(root) if root is not None else Path.cwd()
        self._by_suffix: dict[str, SourceFile] = {}

    @classmethod
    def load(cls, paths: Iterable[Path | str], root: Path | None = None) -> "Project":
        """Load ``paths`` (files or directories, recursively) as a
        project. Display paths are kept relative to ``root`` when
        possible."""
        rootp = Path(root) if root is not None else Path.cwd()
        sources: list[SourceFile] = []
        for raw in paths:
            p = Path(raw)
            candidates = sorted(p.rglob("*.py")) if p.is_dir() else [p]
            for c in candidates:
                try:
                    display = str(c.resolve().relative_to(rootp.resolve()))
                except ValueError:
                    display = str(c)
                sources.append(SourceFile(c, display))
        return cls(sources, rootp)

    def find(self, suffix: str) -> SourceFile | None:
        """The file whose display path ends with ``suffix`` (e.g.
        ``"repro/errors.py"``), or None."""
        cached = self._by_suffix.get(suffix)
        if cached is not None:
            return cached
        for f in self.files:
            if f.display.replace("\\", "/").endswith(suffix):
                self._by_suffix[suffix] = f
                return f
        return None

    def __iter__(self) -> Iterator[SourceFile]:
        return iter(self.files)


class LintPass:
    """Base class for one lint rule. Subclasses set :attr:`rule` and
    :attr:`title` and implement :meth:`run`."""

    rule: str = ""
    title: str = ""

    def run(self, project: Project) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(self, source: SourceFile, node: ast.AST | int, message: str) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(
            rule=self.rule, path=source.display, line=line, message=message
        )


@dataclass
class LintReport:
    """Everything one run produced: findings (waived ones included and
    marked), and enough counts for a one-line summary."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: tuple[str, ...] = ()

    @property
    def unwaived(self) -> list[Finding]:
        return [f for f in self.findings if not f.waived]

    @property
    def waived(self) -> list[Finding]:
        return [f for f in self.findings if f.waived]

    @property
    def ok(self) -> bool:
        return not self.unwaived

    def summary(self) -> str:
        return (
            f"{self.files_scanned} files, {len(self.rules_run)} rules: "
            f"{len(self.unwaived)} finding(s), {len(self.waived)} waived"
        )


def apply_waivers(project: Project, findings: Iterable[Finding]) -> list[Finding]:
    """Mark findings covered by an inline waiver; leaves others as-is.
    Waivers only apply to findings anchored in the waiving file — a
    finding in ``docs/`` (catalogue drift) cannot be waived from code."""
    by_display = {f.display: f for f in project}
    out: list[Finding] = []
    for finding in findings:
        src = by_display.get(finding.path)
        waiver = (
            src.waiver_for(finding.rule, finding.line) if src is not None else None
        )
        if waiver is not None:
            finding = replace(finding, waived=True, reason=waiver.reason)
        out.append(finding)
    return out


def run_lint(
    paths: Iterable[Path | str],
    *,
    root: Path | None = None,
    rules: Iterable[str] | None = None,
    passes: Iterable[LintPass] | None = None,
) -> LintReport:
    """Load ``paths``, run the registered passes (optionally filtered by
    rule id), apply waivers, and return the report."""
    if passes is None:
        from repro.analysis.passes import all_passes

        passes = all_passes()
    selected = [
        p for p in passes if rules is None or p.rule in set(rules)
    ]
    project = Project.load(paths, root=root)
    findings: list[Finding] = []
    for src in project:
        if src.parse_error is not None:
            findings.append(
                Finding(
                    rule="parse",
                    path=src.display,
                    line=src.parse_error.lineno or 1,
                    message=f"file does not parse: {src.parse_error.msg}",
                )
            )
        findings.extend(src.bad_waivers)
    for lint_pass in selected:
        findings.extend(lint_pass.run(project))
    findings = apply_waivers(project, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return LintReport(
        findings=findings,
        files_scanned=len(project.files),
        rules_run=tuple(p.rule for p in selected),
    )
