"""Checkpoint/resume support (§V-E).

FanStore does not replicate for fault tolerance: batch-size-sensitive
training cannot transparently absorb a lost node anyway, so the paper's
answer is the DL-standard one — epoch-numbered checkpoints on the
*shared* file system, resumable after relaunching at the same scale.
This module implements that convention: checkpoint naming, atomic
writes, latest-checkpoint discovery, and pruning.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import DataIntegrityError, FanStoreError
from repro.fanstore.journal import atomic_replace, fsync_dir

_CKPT_RE = re.compile(r"^checkpoint-(\d{6})\.ckpt$")
_CKPT_TMP_RE = re.compile(r"^checkpoint-\d{6}\.ckpt\.\d+\.[0-9a-f]{32}\.tmp$")


def _payload_digest(epoch: int, payload: dict[str, Any]) -> str:
    """Canonical sha256 of a checkpoint's content (epoch + state), so a
    bit flip anywhere in the saved state is caught at load time."""
    canon = json.dumps(
        {"epoch": epoch, "state": payload},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Checkpoint:
    """One saved training state."""

    epoch: int
    path: Path
    payload: dict[str, Any]


class CheckpointManager:
    """Epoch-numbered checkpoints in a shared directory.

    Payloads are JSON dicts (model/optimizer state supplied by the
    trainer as lists). Writes are atomic (tmp + rename) so a node crash
    mid-write never corrupts the resume point.
    """

    def __init__(self, directory: Path | str, *, keep_last: int | None = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if keep_last is not None and keep_last < 1:
            raise FanStoreError(f"keep_last must be >= 1, got {keep_last}")
        self.keep_last = keep_last

    def _path_for(self, epoch: int) -> Path:
        if epoch < 0 or epoch > 999_999:
            raise FanStoreError(f"epoch out of range: {epoch}")
        return self.directory / f"checkpoint-{epoch:06d}.ckpt"

    def save(self, epoch: int, payload: dict[str, Any]) -> Path:
        """Atomically persist ``payload`` as the epoch's checkpoint.

        Delegates to the store-wide atomic-apply helper
        (:func:`~repro.fanstore.journal.atomic_replace`): the tmp name
        carries a pid+uuid suffix so two writers racing on the same
        epoch (every rank of a relaunched job, say) never clobber each
        other's half-written file, the payload is fsynced before the
        rename, and the parent directory is fsynced after it — a crash
        right after ``save`` returns still finds complete bytes behind
        the final name, and the rename itself survives power loss. The
        §V-E resume point must survive exactly those crashes.
        """
        final = self._path_for(epoch)
        atomic_replace(final, json.dumps({
            "epoch": epoch,
            "state": payload,
            "sha256": _payload_digest(epoch, payload),
        }))
        if self.keep_last is not None:
            self._prune()
        return final

    def gc_orphans(self) -> int:
        """Remove ``*.tmp`` leftovers of savers that crashed between
        opening their tmp file and renaming it — the one state the
        atomic write can leak. Safe against live concurrent savers up
        to the (already accepted) pid+uuid collision odds; call it on
        restart, before resuming. Returns the number removed."""
        removed = 0
        for entry in self.directory.iterdir():
            if _CKPT_TMP_RE.match(entry.name):
                entry.unlink(missing_ok=True)
                removed += 1
        if removed:
            fsync_dir(self.directory)
        return removed

    def epochs(self) -> list[int]:
        """Checkpointed epochs, ascending."""
        found = []
        for entry in self.directory.iterdir():
            m = _CKPT_RE.match(entry.name)
            if m:
                found.append(int(m.group(1)))
        return sorted(found)

    def load(self, epoch: int) -> Checkpoint:
        """Load and *verify* one checkpoint: unparsable or structurally
        wrong files raise :class:`~repro.errors.FanStoreError`; a parsed
        file whose recorded payload digest no longer matches raises
        :class:`~repro.errors.DataIntegrityError` naming the path.
        Checkpoints saved before digests existed still load."""
        path = self._path_for(epoch)
        if not path.exists():
            raise FanStoreError(f"no checkpoint for epoch {epoch}")
        try:
            blob = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise FanStoreError(
                f"checkpoint {path.name} is truncated or corrupt ({exc})"
            ) from exc
        if not isinstance(blob, dict) or "state" not in blob:
            raise FanStoreError(
                f"checkpoint {path.name} has no state payload"
            )
        if blob.get("epoch") != epoch:
            raise FanStoreError(
                f"checkpoint {path.name} claims epoch {blob.get('epoch')}"
            )
        recorded = blob.get("sha256")
        if recorded is not None and recorded != _payload_digest(
            epoch, blob["state"]
        ):
            raise DataIntegrityError(
                str(path), "checkpoint payload digest mismatch"
            )
        return Checkpoint(epoch=epoch, path=path, payload=blob["state"])

    def latest_epoch(self) -> int | None:
        """Epoch of the newest *loadable* checkpoint (None when fresh).
        A relaunched rank checks this before rejoining the membership
        view: re-admission is only worth the handshake if there is a
        resume point to continue from."""
        latest = self.latest()
        return None if latest is None else latest.epoch

    def latest(self) -> Checkpoint | None:
        """The resume point after a failure (§V-E), or None if fresh.

        A corrupt newest checkpoint (the likeliest casualty — it was
        being written when the node died) falls back to the previous
        epoch rather than killing the resume; only when *every*
        checkpoint fails verification does the error propagate, because
        silently restarting from scratch would discard the run."""
        epochs = self.epochs()
        if not epochs:
            return None
        last_error: FanStoreError | None = None
        for epoch in reversed(epochs):
            try:
                return self.load(epoch)
            except FanStoreError as exc:  # includes DataIntegrityError
                last_error = exc
        assert last_error is not None
        raise last_error

    def _prune(self) -> None:
        assert self.keep_last is not None
        epochs = self.epochs()
        doomed = epochs[: -self.keep_last]
        for epoch in doomed:
            self._path_for(epoch).unlink(missing_ok=True)
        if doomed:
            # the unlinks are directory mutations too: without this a
            # crash can resurrect a pruned epoch as the "latest"
            fsync_dir(self.directory)
