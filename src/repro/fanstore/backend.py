"""Storage backends for compressed objects (§IV-C1).

The daemon keeps each partition's compressed file bytes either in RAM
(a hash table keyed by path — the paper's default when nodes have large
memory, e.g. the V100 cluster's RAM disk) or on the node-local file
system (the SSD case). Both present one tiny interface so the daemon is
backend-agnostic.
"""

from __future__ import annotations

import errno as _errno
import hashlib
import os
import threading
from pathlib import Path

from repro.errors import (
    DataIntegrityError,
    FileNotFoundInStoreError,
    StorageFullError,
)
from repro.fanstore.journal import atomic_replace


class RamBackend:
    """Compressed bytes in an in-memory hash table."""

    def __init__(self) -> None:
        self._objects: dict[str, bytes] = {}
        self._lock = threading.Lock()

    def put(self, path: str, data: bytes) -> None:
        with self._lock:
            self._objects[path] = data

    def get(self, path: str) -> bytes:
        with self._lock:
            try:
                return self._objects[path]
            except KeyError:
                raise FileNotFoundInStoreError(path) from None

    def discard(self, path: str) -> bool:
        """Quarantine: drop a (corrupt) copy so it is never served
        again; True if a copy was present."""
        with self._lock:
            return self._objects.pop(path, None) is not None

    def __contains__(self, path: str) -> bool:
        with self._lock:
            return path in self._objects

    def __len__(self) -> int:
        with self._lock:
            return len(self._objects)

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._objects.values())


class PartitionBackend:
    """Compressed bytes left *inside* the partition files on local disk,
    fetched by ``pread`` at the offsets recorded during the metadata
    scan — the paper's SSD mode: "if local disks (e.g., SSD) are the
    back end, the compressed data files are stored in the local file
    system" (§IV-C1), without unpacking into per-file blobs.

    Requires the partition files to be present locally (the daemon
    copies them in during load); runtime writes fall back to an overlay
    dict, since partitions are immutable once prepared.
    """

    def __init__(self) -> None:
        self._index: dict[str, tuple[Path, int, int]] = {}
        self._overlay: dict[str, bytes] = {}
        self._lock = threading.Lock()
        self._handles: dict[Path, object] = {}

    def register(
        self, path: str, partition_file: Path, offset: int, size: int
    ) -> None:
        """Index one entry's payload location within a partition file."""
        with self._lock:
            self._index[path] = (Path(partition_file), offset, size)

    def put(self, path: str, data: bytes) -> None:
        with self._lock:
            self._overlay[path] = data

    def _handle(self, partition_file: Path):
        """Cached read handle for a partition file. The cold open(2)
        happens outside the lock — an open on a slow disk must not
        stall every other reader; a lost insert race closes the spare
        handle."""
        with self._lock:
            handle = self._handles.get(partition_file)
        if handle is not None:
            return handle
        fresh = open(partition_file, "rb")
        with self._lock:
            handle = self._handles.setdefault(partition_file, fresh)
        if handle is not fresh:
            fresh.close()
        return handle

    def get(self, path: str) -> bytes:
        with self._lock:
            if path in self._overlay:
                return self._overlay[path]
            entry = self._index.get(path)
            if entry is None:
                raise FileNotFoundInStoreError(path)
            partition_file, offset, size = entry
        handle = self._handle(partition_file)
        data = os.pread(handle.fileno(), size, offset)
        if len(data) != size:
            # the entry is indexed but its bytes are gone: a truncated
            # or torn partition file is corruption, not absence
            raise DataIntegrityError(
                path,
                f"short pread from {partition_file.name}: "
                f"{len(data)} of {size} bytes at offset {offset}",
            )
        return data

    def discard(self, path: str) -> bool:
        """Quarantine: forget both the overlay copy and the index entry
        pointing into the (corrupt) partition region."""
        with self._lock:
            had_overlay = self._overlay.pop(path, None) is not None
            had_index = self._index.pop(path, None) is not None
            return had_overlay or had_index

    def __contains__(self, path: str) -> bool:
        with self._lock:
            return path in self._overlay or path in self._index

    def __len__(self) -> int:
        with self._lock:
            return len(self._index) + len(
                set(self._overlay) - set(self._index)
            )

    @property
    def resident_bytes(self) -> int:
        """Bytes on local disk attributable to this backend (payloads
        indexed plus overlay writes); partition headers excluded."""
        with self._lock:
            indexed = sum(size for _, _, size in self._index.values())
            overlay = sum(
                len(v) for k, v in self._overlay.items()
                if k not in self._index
            )
        return indexed + overlay

    def close(self) -> None:
        with self._lock:
            for handle in self._handles.values():
                handle.close()  # type: ignore[attr-defined]
            self._handles.clear()


class DiskBackend:
    """Compressed bytes as blob files on node-local storage (SSD mode).

    Blob names are content-addressed from the store path so arbitrary
    dataset paths can't escape ``root`` or collide with OS limits.
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._index: dict[str, Path] = {}
        self._lock = threading.Lock()
        #: optional :class:`~repro.fanstore.crash.DiskFaultInjector`
        #: consulted before every put (ENOSPC/EMFILE drills)
        self.injector = None
        #: owning rank, stamped by the daemon so crash points fired
        #: inside the atomic apply identify the dying rank
        self.rank: int | None = None

    def _blob_path(self, path: str) -> Path:
        digest = hashlib.sha1(path.encode("utf-8")).hexdigest()
        return self.root / f"{digest}.blob"

    def put(self, path: str, data: bytes) -> None:
        """Atomically install ``data`` as the blob for ``path``: a
        crash mid-put leaves either the old blob or the new one, never
        torn bytes that a later ``get`` would happily serve. Resource
        exhaustion (real or injected) surfaces as the typed
        :class:`~repro.errors.StorageFullError` instead of a half-
        applied write."""
        blob = self._blob_path(path)
        try:
            if self.injector is not None:
                self.injector.check_put(path)
            atomic_replace(blob, data, rank=self.rank)
        except OSError as exc:
            if exc.errno in (_errno.ENOSPC, _errno.EMFILE, _errno.EDQUOT):
                raise StorageFullError(
                    path, exc.strerror or "no space left on device"
                ) from exc
            raise
        with self._lock:
            self._index[path] = blob

    def adopt(self, path: str) -> bool:
        """Re-index a blob that already exists on disk (restart
        recovery: the bytes survived the crash, only the in-RAM index
        died with the process). True iff the blob file is present."""
        blob = self._blob_path(path)
        if not blob.is_file():
            return False
        with self._lock:
            self._index[path] = blob
        return True

    def blob_path(self, path: str) -> Path:
        """Where ``path``'s blob lives (whether or not it exists yet) —
        recovery digest-checks these without going through ``get``."""
        return self._blob_path(path)

    def get(self, path: str) -> bytes:
        with self._lock:
            blob = self._index.get(path)
        if blob is None:
            raise FileNotFoundInStoreError(path)
        return blob.read_bytes()

    def discard(self, path: str) -> bool:
        """Quarantine: unlink the (corrupt) blob and forget it."""
        with self._lock:
            blob = self._index.pop(path, None)
        if blob is None:
            return False
        blob.unlink(missing_ok=True)
        return True

    def __contains__(self, path: str) -> bool:
        with self._lock:
            return path in self._index

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            blobs = list(self._index.values())
        return sum(b.stat().st_size for b in blobs)
