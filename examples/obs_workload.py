#!/usr/bin/env python3
"""A small two-rank workload that exercises the observability layer.

Generates a synthetic dataset, packages it, runs a 2-rank FanStore with
full tracing and per-open metrics observation, does remote reads, a
compressed write, and a scrub sweep — then exports every rank's metric
snapshot and trace spans as JSONL. This is the workload the CI
observability job runs; aggregate the output with::

    python examples/obs_workload.py --out obs-artifacts
    python -m repro.obs.top obs-artifacts --assert-non-empty --traces
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro.comm.launcher import run_parallel
from repro.datasets import generate_dataset
from repro.fanstore import DaemonConfig, FanStore, FanStoreOptions
from repro.fanstore.prepare import prepare_dataset

RANKS = 2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="obs-artifacts",
                        help="directory for the JSONL exports")
    args = parser.parse_args()
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    workdir = Path(tempfile.mkdtemp(prefix="fanstore-obs-"))
    raw = workdir / "raw"
    generate_dataset("em", raw, num_files=12, avg_file_size=8_192,
                     num_dirs=3, seed=11)
    prepared = prepare_dataset(raw, workdir / "packed",
                               num_partitions=RANKS, compressor="zlib-6",
                               threads=2)
    print(f"packaged {prepared.num_files} files, "
          f"ratio {prepared.ratio:.2f}x")

    config = DaemonConfig(
        metrics_every=1,  # observe (phase-time) every open
        trace_sample=1.0,  # trace every open
        output_compressor="zlib-1",
    )

    def body(comm):
        opts = FanStoreOptions(comm=comm, config=config)
        with FanStore(prepared, opts) as fs:
            # every rank reads the whole namespace: half the opens are
            # remote fetches, so traces cross ranks
            for rec in fs.daemon.metadata.walk_files():
                fs.client.read_file(rec.path)
            # one compressed output write per rank
            fs.client.write_file(f"out/rank{comm.rank}.bin",
                                 b"artifact" * 128)
            # one full scrub sweep (digest re-verification)
            fs.scrub()
            comm.barrier()  # everyone done before anyone stops serving
            fs.metrics.snapshot().write_jsonl(
                out / f"rank{comm.rank}.metrics.jsonl"
            )
            fs.tracer.export_jsonl(out / f"rank{comm.rank}.traces.jsonl")
            return (len(fs.metrics), len(fs.tracer.finished()))

    results = run_parallel(body, RANKS, timeout=120)
    for rank, (n_metrics, n_spans) in enumerate(results):
        print(f"rank {rank}: {n_metrics} metrics, {n_spans} spans "
              f"-> {out}/rank{rank}.*.jsonl")


if __name__ == "__main__":
    main()
