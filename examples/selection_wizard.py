#!/usr/bin/env python3
"""End-to-end compressor selection for *your* dataset (§VI in anger).

This is the workflow a FanStore user runs before packaging a new
dataset: sample some files, measure every suite configuration's ratio
and decompression throughput on this machine (lzbench-style, §VII-D),
measure the I/O path, then run Equations 1-3 and get a recommendation
for both sync and async training loops.

Run: ``python examples/selection_wizard.py [dataset-dir]``
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.compressors import run_suite
from repro.datasets import generate_dataset
from repro.fanstore import FanStore, prepare_dataset
from repro.selection import (
    CompressorCandidate,
    CompressorSelector,
    IoPerformance,
    SelectionInputs,
    measure_client_read,
)
from repro.training import list_training_files
from repro.util import MB, format_seconds

#: suite members worth considering as packaging codecs on this host
#: (C-backed; the pure-Python members exist for format coverage).
SHORTLIST = ["zlib-1", "zlib-6", "zlib-9", "bz2-1", "bz2-9",
             "lzma-0", "lzma-6", "delta+zlib-6", "bitshuffle+zlib-6"]


def main() -> None:
    if len(sys.argv) > 1:
        data_dir = Path(sys.argv[1])
        print(f"== using your dataset: {data_dir} ==")
    else:
        data_dir = Path(tempfile.mkdtemp(prefix="wizard-data-")) / "astro"
        generate_dataset("astro", data_dir, num_files=8,
                         avg_file_size=48_000, seed=9)
        print(f"== no dataset given; generated a synthetic FITS set at "
              f"{data_dir} ==")

    samples = [
        p.read_bytes()
        for p in sorted(data_dir.rglob("*"))
        if p.is_file()
    ][:6]
    print(f"   sampled {len(samples)} files, "
          f"avg {sum(map(len, samples)) // len(samples)} bytes")

    print("\n== 1. lzbench pass over the shortlist (§VII-D) ==")
    results = run_suite(samples, names=SHORTLIST)
    print(f"   {'config':<20} {'ratio':>6} {'d.µs/file':>10}")
    for r in sorted(results, key=lambda r: -r.ratio):
        print(f"   {r.compressor:<20} {r.ratio:>6.2f} "
              f"{r.decompress_cost_per_file * 1e6:>10.1f}")

    print("\n== 2. measure the FanStore I/O path on this host ==")
    workdir = Path(tempfile.mkdtemp(prefix="wizard-packed-"))
    prepared = prepare_dataset(data_dir, workdir, compressor="memcpy",
                               threads=2)
    with FanStore(prepared) as fs:
        files = list_training_files(fs.client)
        perf = measure_client_read(fs.client, files, repetitions=3)
    print(f"   Tpt_read = {perf.tpt_read:,.0f} files/s, "
          f"Bdw_read = {perf.bdw_read / MB:,.0f} MB/s")

    print("\n== 3. Equations 1-3 for a hypothetical training job ==")
    c_batch = 64
    avg = sum(map(len, samples)) / len(samples)
    candidates = [
        CompressorCandidate(
            r.compressor,
            ratio=max(r.ratio, 1.0),
            decompress_cost=r.decompress_cost_per_file,
        )
        for r in results
    ]
    for io_mode, t_iter in (("sync", 0.0), ("async", 0.25)):
        inputs = SelectionInputs(
            io_mode=io_mode,
            c_batch=c_batch,
            s_batch_uncompressed=c_batch * avg,
            perf_uncompressed=perf,
            perf_compressed=perf,
            t_iter=t_iter if io_mode == "async" else 1.0,
            parallelism=2,
        )
        selector = CompressorSelector(inputs)
        result = selector.select(candidates)
        pick = result.choice
        verdict = "strict" if result.selected else "fallback"
        if pick is None:
            print(f"   {io_mode:>5}: no compressor preserves performance "
                  f"— package raw")
            continue
        budget = selector.budget_per_file(pick.ratio)
        print(f"   {io_mode:>5}: {pick.name} ({verdict}) — ratio "
              f"{pick.ratio:.2f}, cost "
              f"{format_seconds(pick.decompress_cost)} vs budget "
              f"{format_seconds(max(budget, 0))}")

    print("\nPackage with: fanstore-prepare "
          f"{data_dir} OUT -p <nodes> -c <choice>")


if __name__ == "__main__":
    main()
