"""Deterministic fault injection for the in-process world.

The paper's deployment (512 KNL nodes, multi-hour jobs, §VI) lives with
transient interconnect hiccups, slow peers, and outright node loss; its
fault-tolerance answer is checkpoint/resume (§V-E). To test that story
— and the retry/failover ladder layered on top of it — this module
injects faults *underneath* the communicator API, so every call site
(daemon service loop, ring replication, collectives) runs unmodified:

- :class:`FaultPlan` — a seeded, deterministic description of what to
  break: message **drops**, **delays** (with optional seeded jitter),
  **duplicates**, **amplification** (N copies — the overload/retry-storm
  case), all matched by source/dest/tag with bounded occurrence counts
  or seeded probabilities; whole-**rank death**; sustained
  **slow-rank** gray failures (:meth:`FaultPlan.slow_rank` /
  :meth:`FaultPlan.heal`) that delay everything a rank sends until
  healed; and **network partitions** (:meth:`FaultPlan.partition` /
  :meth:`FaultPlan.asymmetric_partition`) that silently swallow every
  message crossing a cut until the cut is healed — the split-brain
  case: both sides stay alive, neither can hear the other;
- :class:`ChaosWorld` — a drop-in :class:`~repro.comm.communicator.World`
  whose ``comm()`` hands out :class:`ChaosCommunicator` handles, so
  ``run_parallel(fn, size, world=ChaosWorld(size, plan))`` is the whole
  integration surface;
- :class:`ChaosCommunicator` — applies the plan on ``send`` and turns
  every operation of a dead rank into
  :class:`~repro.errors.RankDeadError` (the crash analog).

Death semantics mirror a lost node: the dead rank's pending and future
operations raise ``RankDeadError`` on *that* rank, while messages other
ranks send it vanish silently — peers observe timeouts, exactly what a
crashed remote looks like, and must recover via retry/failover.

Determinism: matching decisions depend only on the plan (rule order,
per-rule counters, and a ``random.Random(seed)`` stream for
probabilistic rules), so a failing chaos test replays byte-for-byte
from its seed. Delays use real timers, so wall-clock interleaving can
vary — but *which* messages are delayed does not.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

from repro.comm.communicator import (
    ANY_SOURCE,
    ANY_TAG,
    Communicator,
    World,
    _Message,
)
from repro.errors import CommClosedError, RankDeadError

#: sentinel actions a rule can take on a matched message.
DROP = "drop"
DELAY = "delay"
DUPLICATE = "duplicate"
AMPLIFY = "amplify"


@dataclass
class ChaosStats:
    """What the plan actually did, for test assertions."""

    dropped: int = 0
    delayed: int = 0
    duplicated: int = 0
    blackholed: int = 0  # messages sent to an already-dead rank
    dead_rank_ops: int = 0  # operations attempted by a dead rank
    slowed: int = 0  # messages delayed by a sustained slow_rank fault
    amplified: int = 0  # extra copies delivered by amplify rules
    partitioned: int = 0  # messages swallowed by an active partition cut


@dataclass
class _SlowSpec:
    """A sustained gray failure: every matching message the rank sends
    is delayed until :meth:`FaultPlan.heal` clears it."""

    seconds: float
    jitter: float = 0.0
    tag: int = ANY_TAG
    min_tag: int | None = None


@dataclass
class _Cut:
    """One directed partition edge: matching ``src``→``dst`` messages
    vanish until the cut is healed. Unlike death, the destination's
    mailbox stays open — a parked recv across the cut simply times out,
    and delivery resumes the instant the cut is removed."""

    src: int
    dst: int
    tag: int = ANY_TAG
    min_tag: int | None = None

    def blocks(self, source: int, dest: int, tag: int) -> bool:
        if self.src != source or self.dst != dest:
            return False
        if self.tag not in (ANY_TAG, tag):
            return False
        if self.min_tag is not None and tag < self.min_tag:
            return False
        return True


@dataclass
class _Rule:
    """One fault rule: match predicate + action + occurrence budget."""

    action: str
    source: int = ANY_SOURCE
    dest: int = ANY_SOURCE
    tag: int = ANY_TAG
    min_tag: int | None = None
    times: int | None = 1  # matches to consume; None = unlimited
    probability: float = 1.0
    seconds: float = 0.0  # DELAY only
    jitter: float = 0.0  # DELAY only: extra seeded uniform latency
    copies: int = 2  # AMPLIFY only
    used: int = field(default=0, compare=False)

    def matches(self, source: int, dest: int, tag: int, rng: random.Random) -> bool:
        if self.times is not None and self.used >= self.times:
            return False
        if self.source not in (ANY_SOURCE, source):
            return False
        if self.dest not in (ANY_SOURCE, dest):
            return False
        if self.tag not in (ANY_TAG, tag):
            return False
        if self.min_tag is not None and tag < self.min_tag:
            return False
        if self.probability < 1.0 and rng.random() >= self.probability:
            return False
        self.used += 1
        return True


class FaultPlan:
    """A seeded, replayable schedule of communication faults.

    Rules are consulted in registration order on every ``send``; the
    first match wins. All mutation is behind one lock so concurrent
    rank threads observe one consistent counter/RNG stream.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._rules: list[_Rule] = []
        self._dead: set[int] = set()
        self._slow: dict[int, _SlowSpec] = {}
        self._cuts: dict[int, list[_Cut]] = {}
        self._next_cut_id = 0
        self._kill_after_sends: dict[int, int] = {}
        self._sends_by_rank: dict[int, int] = {}
        self._lock = threading.Lock()
        self.stats = ChaosStats()

    # -- rule registration (chainable) ------------------------------------

    def drop(
        self,
        *,
        source: int = ANY_SOURCE,
        dest: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        min_tag: int | None = None,
        times: int | None = 1,
        probability: float = 1.0,
    ) -> "FaultPlan":
        """Silently discard matching messages (the lost-packet case)."""
        self._rules.append(_Rule(DROP, source, dest, tag, min_tag,
                                 times, probability))
        return self

    def delay(
        self,
        seconds: float,
        *,
        source: int = ANY_SOURCE,
        dest: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        min_tag: int | None = None,
        times: int | None = 1,
        probability: float = 1.0,
        jitter: float = 0.0,
    ) -> "FaultPlan":
        """Deliver matching messages late (the slow-peer case).
        ``jitter`` adds a seeded uniform extra latency in
        ``[0, jitter)`` per matched message — which messages draw which
        jitter replays exactly from the plan seed."""
        if seconds < 0:
            raise ValueError(f"delay must be >= 0, got {seconds}")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self._rules.append(_Rule(DELAY, source, dest, tag, min_tag,
                                 times, probability, seconds=seconds,
                                 jitter=jitter))
        return self

    def duplicate(
        self,
        *,
        source: int = ANY_SOURCE,
        dest: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        min_tag: int | None = None,
        times: int | None = 1,
        probability: float = 1.0,
    ) -> "FaultPlan":
        """Deliver matching messages twice (the retransmit-race case)."""
        self._rules.append(_Rule(DUPLICATE, source, dest, tag, min_tag,
                                 times, probability))
        return self

    def amplify(
        self,
        *,
        copies: int = 3,
        source: int = ANY_SOURCE,
        dest: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        min_tag: int | None = None,
        times: int | None = 1,
        probability: float = 1.0,
    ) -> "FaultPlan":
        """Deliver ``copies`` copies of matching messages — the
        overload case: a burst of identical requests floods the
        receiver's admission queue the way a retry storm would."""
        if copies < 2:
            raise ValueError(f"amplify needs copies >= 2, got {copies}")
        self._rules.append(_Rule(AMPLIFY, source, dest, tag, min_tag,
                                 times, probability, copies=copies))
        return self

    def slow_rank(
        self,
        rank: int,
        seconds: float,
        *,
        jitter: float = 0.0,
        tag: int = ANY_TAG,
        min_tag: int | None = None,
    ) -> "FaultPlan":
        """Mark ``rank`` as a sustained gray failure: every matching
        message *it sends* is delayed by ``seconds`` (plus a seeded
        uniform jitter in ``[0, jitter)``) until :meth:`heal`. Scope
        with ``tag``/``min_tag`` to slow e.g. only daemon replies while
        heartbeats keep flowing — a GC-pausing data plane with a
        healthy control plane."""
        if seconds < 0:
            raise ValueError(f"slow_rank delay must be >= 0, got {seconds}")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        with self._lock:
            self._slow[rank] = _SlowSpec(seconds, jitter, tag, min_tag)
        return self

    def partition(
        self,
        *groups,
        tag: int = ANY_TAG,
        min_tag: int | None = None,
    ) -> int:
        """Split the world into isolated components: every message
        between ranks of *different* groups (both directions, within the
        ``tag``/``min_tag`` scope) is silently swallowed until healed.
        Ranks absent from every group are unaffected. Returns a cut id
        for :meth:`heal(cut=...) <heal>`; ``heal()`` with no arguments
        removes every cut.

        Mailboxes stay open: unlike :meth:`kill`, a partitioned rank is
        alive and busy — it just cannot be heard across the cut, which
        is exactly what a membership detector must not confuse with
        death."""
        if len(groups) < 2:
            raise ValueError("partition needs at least two groups")
        ordered = [sorted(set(g)) for g in groups]
        seen: set[int] = set()
        for members in ordered:
            overlap = seen.intersection(members)
            if overlap:
                raise ValueError(f"partition groups overlap: {sorted(overlap)}")
            seen.update(members)
        cuts: list[_Cut] = []
        for i, left in enumerate(ordered):
            for right in ordered[i + 1:]:
                for a in left:
                    for b in right:
                        cuts.append(_Cut(a, b, tag, min_tag))
                        cuts.append(_Cut(b, a, tag, min_tag))
        return self._add_cut(cuts)

    def asymmetric_partition(
        self,
        src: int,
        dst: int,
        *,
        tag: int = ANY_TAG,
        min_tag: int | None = None,
    ) -> int:
        """Cut one direction only: ``src``'s messages to ``dst`` vanish
        while ``dst`` can still reach ``src`` — the half-broken link
        that makes naive failure detectors disagree. Returns a cut id
        for :meth:`heal(cut=...) <heal>`."""
        return self._add_cut([_Cut(src, dst, tag, min_tag)])

    def _add_cut(self, cuts: list[_Cut]) -> int:
        with self._lock:
            cut_id = self._next_cut_id
            self._next_cut_id += 1
            self._cuts[cut_id] = cuts
            return cut_id

    def heal(self, rank: int | None = None, *, cut: int | None = None) -> "FaultPlan":
        """Heal sustained faults. ``heal(rank)`` clears that rank's slow
        mark (the gray failure passed); ``heal(cut=id)`` removes one
        partition cut; ``heal()`` with no arguments removes every
        partition cut *and* every slow mark — the network is whole
        again. Messages swallowed while a cut was up stay lost (real
        links do not replay); only future sends are delivered."""
        with self._lock:
            if cut is not None:
                self._cuts.pop(cut, None)
            elif rank is not None:
                self._slow.pop(rank, None)
            else:
                self._cuts.clear()
                self._slow.clear()
        return self

    def kill(self, rank: int, *, after_sends: int = 0) -> "FaultPlan":
        """Schedule rank death: immediately, or once the rank has sent
        ``after_sends`` messages (a deterministic mid-run trigger)."""
        with self._lock:
            if after_sends <= 0:
                self._dead.add(rank)
            else:
                self._kill_after_sends[rank] = after_sends
        return self

    # -- runtime queries (called by ChaosCommunicator) --------------------

    def is_dead(self, rank: int) -> bool:
        with self._lock:
            return rank in self._dead

    def is_partitioned(self, src: int, dst: int, tag: int = 0) -> bool:
        """Whether a ``src``→``dst`` message with ``tag`` would be
        swallowed by an active cut right now."""
        with self._lock:
            return any(
                c.blocks(src, dst, tag)
                for cuts in self._cuts.values()
                for c in cuts
            )

    def is_slow(self, rank: int) -> bool:
        with self._lock:
            return rank in self._slow

    def slow_for(self, source: int, tag: int) -> float | None:
        """Delay seconds if ``source`` is marked slow for ``tag``, else
        None. Jitter draws come from the plan RNG under the lock, so
        the stream replays from the seed."""
        with self._lock:
            spec = self._slow.get(source)
            if spec is None:
                return None
            if spec.tag not in (ANY_TAG, tag):
                return None
            if spec.min_tag is not None and tag < spec.min_tag:
                return None
            seconds = spec.seconds
            if spec.jitter > 0.0:
                seconds += self._rng.uniform(0.0, spec.jitter)
            return seconds

    def dead_ranks(self) -> set[int]:
        with self._lock:
            return set(self._dead)

    def _mark_dead(self, rank: int) -> None:
        with self._lock:
            self._dead.add(rank)

    def revive(self, rank: int) -> "FaultPlan":
        """Clear a rank's death mark — the relaunched-process analog.
        Pair with :meth:`ChaosWorld.revive`, which also re-arms the
        mailbox; a revived rank starts with a clean slate (its send
        counter keeps counting, but no armed ``after_sends`` trigger
        remains for it)."""
        with self._lock:
            self._dead.discard(rank)
            self._kill_after_sends.pop(rank, None)
        return self

    def note_send(self, rank: int) -> bool:
        """Record one send by ``rank``; True if it crossed a scheduled
        ``after_sends`` death threshold (the send itself still happens —
        the crash lands on the *next* operation, like a real SIGKILL
        racing a completed write)."""
        with self._lock:
            self._sends_by_rank[rank] = self._sends_by_rank.get(rank, 0) + 1
            threshold = self._kill_after_sends.get(rank)
            if threshold is not None and self._sends_by_rank[rank] >= threshold:
                del self._kill_after_sends[rank]
                self._dead.add(rank)
                return True
            return False

    def decide(self, source: int, dest: int, tag: int) -> tuple[str, float]:
        """(action, value) for one message; first rule wins. The value
        is delay seconds for DELAY (base plus any seeded jitter draw)
        and the copy count for AMPLIFY."""
        with self._lock:
            for rule in self._rules:
                if rule.matches(source, dest, tag, self._rng):
                    if rule.action == DELAY and rule.jitter > 0.0:
                        extra = self._rng.uniform(0.0, rule.jitter)
                        return rule.action, rule.seconds + extra
                    if rule.action == AMPLIFY:
                        return rule.action, float(rule.copies)
                    return rule.action, rule.seconds
            return "deliver", 0.0


class ChaosWorld(World):
    """A :class:`World` whose communicators route through a plan."""

    def __init__(self, size: int, plan: FaultPlan | None = None) -> None:
        super().__init__(size)
        self.plan = plan or FaultPlan()

    def comm(self, rank: int) -> "ChaosCommunicator":
        super().comm(rank)  # rank-range validation
        return ChaosCommunicator(self, rank)

    def kill(self, rank: int) -> None:
        """Kill ``rank`` now: its operations raise
        :class:`~repro.errors.RankDeadError` (pending recvs wake via the
        closed mailbox), and traffic addressed to it is blackholed."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside [0, {self.size})")
        self.plan._mark_dead(rank)
        self._mailboxes[rank].close()

    def revive(self, rank: int) -> None:
        """Bring a killed rank back as a fresh incarnation: its death
        mark is cleared and its mailbox re-armed (stale mail discarded).
        This models a relaunched process taking over the rank slot — it
        must rejoin via the membership protocol, not silently resume."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside [0, {self.size})")
        self.plan.revive(rank)
        self._mailboxes[rank].reopen()


class ChaosCommunicator(Communicator):
    """A :class:`Communicator` that consults the fault plan on every
    operation. Peers holding plain communicators into the same world
    would bypass injection, so :class:`ChaosWorld` hands out only these.
    """

    def __init__(self, world: ChaosWorld, rank: int) -> None:
        super().__init__(world, rank)
        self.plan = world.plan

    # -- death handling ---------------------------------------------------

    def _check_alive(self) -> None:
        if self.plan.is_dead(self.rank):
            self.plan.stats.dead_rank_ops += 1
            raise RankDeadError(f"rank {self.rank} is dead")

    def _translate_closed(self, exc: CommClosedError) -> BaseException:
        """A closed mailbox on a dead rank is the crash, not teardown."""
        if self.plan.is_dead(self.rank):
            self.plan.stats.dead_rank_ops += 1
            return RankDeadError(f"rank {self.rank} is dead")
        return exc

    # -- injected point-to-point ------------------------------------------

    def send(self, payload, dest: int, tag: int = 0) -> None:
        self._check_alive()
        self._check_rank(dest)
        if tag < 0:
            # keep the inner validation order: bad args fail loudly even
            # when the message would have been dropped
            super().send(payload, dest, tag)
        if self.plan.is_dead(dest):
            self.plan.stats.blackholed += 1
            self._after_send()
            return
        if self.plan.is_partitioned(self.rank, dest, tag):
            # the cut swallows the message; the sender cannot tell this
            # apart from a lost packet, and the receiver's mailbox stays
            # open (a partitioned peer is alive, just unreachable)
            self.plan.stats.partitioned += 1
            self._after_send()
            return
        slow = self.plan.slow_for(self.rank, tag)
        if slow is not None:
            # a sustained gray failure outranks the one-shot rules:
            # everything this rank sends (in scope) limps
            self.plan.stats.slowed += 1
            self._deliver_later(payload, dest, tag, slow)
            self._after_send()
            return
        action, value = self.plan.decide(self.rank, dest, tag)
        if action == DROP:
            self.plan.stats.dropped += 1
        elif action == DELAY:
            self.plan.stats.delayed += 1
            self._deliver_later(payload, dest, tag, value)
        elif action == DUPLICATE:
            self.plan.stats.duplicated += 1
            super().send(payload, dest, tag)
            super().send(payload, dest, tag)
        elif action == AMPLIFY:
            copies = int(value)
            self.plan.stats.amplified += copies - 1
            for _ in range(copies):
                super().send(payload, dest, tag)
        else:
            super().send(payload, dest, tag)
        self._after_send()

    def _after_send(self) -> None:
        self.plan.note_send(self.rank)

    def _deliver_later(self, payload, dest: int, tag: int, seconds: float) -> None:
        source = self.rank
        mailbox = self.world._mailboxes[dest]

        def _deliver() -> None:
            if self.plan.is_dead(dest):
                self.plan.stats.blackholed += 1
                return
            try:
                mailbox.put(_Message(source, tag, payload))
            except CommClosedError:
                pass  # world tore down while the message was in flight

        timer = threading.Timer(seconds, _deliver)
        timer.daemon = True
        timer.start()

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = 60.0,
    ):
        self._check_alive()
        try:
            return super().recv(source, tag, timeout)
        except CommClosedError as exc:
            raise self._translate_closed(exc) from None

    def recv_with_status(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = 60.0,
    ):
        self._check_alive()
        try:
            return super().recv_with_status(source, tag, timeout)
        except CommClosedError as exc:
            raise self._translate_closed(exc) from None

    def try_recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        self._check_alive()
        try:
            return super().try_recv(source, tag)
        except CommClosedError as exc:
            raise self._translate_closed(exc) from None

    # -- collectives -------------------------------------------------------

    def _exchange(self, value, timeout):
        # Chaos does not corrupt collective payloads (they model shared
        # rendezvous state, not wire messages), but a dead rank must not
        # participate — its absence stalls peers until their timeout,
        # the same signature a crashed MPI rank produces.
        self._check_alive()
        try:
            return super()._exchange(value, timeout)
        except CommClosedError as exc:
            raise self._translate_closed(exc) from None
