"""Scheduler primitives for the pipelined daemon core.

The paper's throughput argument (Eq. 2) assumes fetch and decompress
*overlap*; PR 9 makes the daemon actually do that. This module holds the
two building blocks that are independent of the daemon itself:

- :class:`PipelineConfig` — the coherent knob group (worker pool width,
  in-flight bound, batching limits) promoted into
  :class:`~repro.fanstore.daemon.DaemonConfig` /
  :class:`~repro.fanstore.store.FanStoreOptions`;
- :class:`SingleFlight` — a keyed in-flight table: concurrent callers of
  the same key share one execution of the underlying work (one upstream
  fetch for a miss storm, one decompression for a cache-miss race).

Everything here is stdlib-only and takes no fanstore locks of its own
beyond the table mutex, which is never held across the coalesced work.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Hashable

from repro.errors import FanStoreError


@dataclass(frozen=True)
class PipelineConfig:
    """Tunables of the daemon's pipelined scheduler.

    ``pipeline_workers`` is the serve-side stage pool: admitted requests
    are dispatched to this many worker threads so the serve loop never
    blocks on digest-verify or codec work. ``0`` restores the legacy
    inline loop (requests served one at a time on the service thread) —
    the blocking baseline the saturation benchmark measures against.

    ``max_inflight`` bounds how many admitted requests may be in flight
    across the worker pool at once; the serve loop stops dispatching
    (but keeps draining + shedding its mailbox) when the bound is hit,
    so admission control stays live under a stalled pool.

    ``batch_max`` caps how many parked client requests one flush may
    coalesce into a single batched envelope per destination; ``1``
    disables client-side batching entirely. ``batch_linger`` is the
    extra wait (seconds) an elected flush leader spends letting the
    batch fill before flushing. The default is ``0`` — *opportunistic*
    batching: a flush packs whatever already parked behind the busy
    destination and sends immediately, trading no latency at all for
    its round-trip savings (backlog, not waiting, is what fills
    batches). A nonzero linger buys bigger batches at the price of
    added latency on every flush that is not already full — keep it
    well below typical request latency.

    ``coalesce`` turns single-flight fetch coalescing off: concurrent
    fetches of the same key each run their own failover ladder, as the
    pre-pipelining daemon did. Coalescing shares *outcomes* — a
    follower observes the leader's error as its own — so callers that
    need per-request error independence (or a true blocking baseline,
    as the saturation benchmark does) can opt out.
    """

    pipeline_workers: int = 4
    max_inflight: int = 32
    batch_max: int = 16
    batch_linger: float = 0.0
    coalesce: bool = True

    def __post_init__(self) -> None:
        if self.pipeline_workers < 0:
            raise FanStoreError(
                f"pipeline_workers must be >= 0, got {self.pipeline_workers}"
            )
        if self.max_inflight < 1:
            raise FanStoreError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.batch_max < 1:
            raise FanStoreError(
                f"batch_max must be >= 1, got {self.batch_max}"
            )
        if self.batch_linger < 0:
            raise FanStoreError(
                f"batch_linger must be >= 0, got {self.batch_linger}"
            )


class _Flight:
    """One in-flight execution; followers park on ``done``."""

    __slots__ = ("done", "value", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None


class SingleFlight:
    """Keyed single-flight coalescing.

    The first caller of :meth:`run` for a key becomes the *leader* and
    executes ``fn`` (outside the table lock); every concurrent caller of
    the same key becomes a *follower* and waits for the leader's result
    instead of duplicating the work. The leader's exception propagates
    to that round's followers (the same instance — callers must treat it
    as shared). The flight leaves the table before followers wake, so a
    later caller starts a fresh flight rather than reading a stale one.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[Hashable, _Flight] = {}

    def run(
        self,
        key: Hashable,
        fn: Callable[[], Any],
        *,
        timeout: float | None = None,
    ) -> tuple[Any, bool]:
        """Coalesced execution of ``fn`` under ``key``.

        Returns ``(value, led)`` where ``led`` tells the caller whether
        it ran the work itself (leaders may hold resources — e.g. a
        cache pin — that followers must acquire for themselves). A
        follower whose ``timeout`` lapses before the leader finishes
        raises :class:`TimeoutError`; the flight itself keeps running.
        """
        with self._lock:
            flight = self._flights.get(key)
            led = flight is None
            if led:
                flight = _Flight()
                self._flights[key] = flight
        if led:
            try:
                flight.value = fn()
            except BaseException as exc:
                flight.error = exc
                raise
            finally:
                # pop before waking followers: anyone arriving after the
                # wake starts a fresh flight instead of joining a dead one
                with self._lock:
                    self._flights.pop(key, None)
                flight.done.set()
            return flight.value, True
        if not flight.done.wait(timeout):
            raise TimeoutError(f"single-flight wait for {key!r} timed out")
        if flight.error is not None:
            raise flight.error
        return flight.value, False
