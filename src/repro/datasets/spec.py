"""Table II — statistics of the paper's six test datasets.

The reproduction generates synthetic stand-ins at reduced scale; these
specs carry both the paper's published statistics (for documentation and
the benchmark headers) and the default reduced generation parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import GB, KB, KIB, MB, TB


@dataclass(frozen=True)
class DatasetSpec:
    """One Table II row plus reduced-scale generation defaults."""

    key: str  # canonical key ("em", "tokamak", ...)
    name: str  # paper's dataset name
    file_format: str
    paper_num_files: int
    paper_num_dirs: int
    paper_total_bytes: int
    paper_avg_bytes: int
    # reduced-scale defaults for synthetic generation
    gen_num_files: int
    gen_avg_bytes: int
    #: approximate lossless compressibility the generator targets
    #: (zlib-level): ~1.0 for JPEG-like, >2 for scientific formats.
    target_ratio: float


TABLE2: dict[str, DatasetSpec] = {
    s.key: s
    for s in (
        DatasetSpec(
            key="em",
            name="EM",
            file_format="tif",
            paper_num_files=600_000,
            paper_num_dirs=6,
            paper_total_bytes=500 * GB,
            paper_avg_bytes=int(1.6 * MB),
            gen_num_files=24,
            gen_avg_bytes=96 * KIB,
            target_ratio=2.3,
        ),
        DatasetSpec(
            key="tokamak",
            name="Tokamak",
            file_format="npz",
            paper_num_files=580_000,
            paper_num_dirs=1,
            paper_total_bytes=int(1.7 * TB),
            paper_avg_bytes=int(1.2 * KB),
            gen_num_files=64,
            gen_avg_bytes=1200,
            target_ratio=2.6,
        ),
        DatasetSpec(
            key="lung",
            name="Lung image",
            file_format="nii",
            paper_num_files=1_400,
            paper_num_dirs=2,
            paper_total_bytes=int(2.2 * GB),
            paper_avg_bytes=int(1.3 * MB),
            gen_num_files=12,
            gen_avg_bytes=128 * KIB,
            target_ratio=5.7,
        ),
        DatasetSpec(
            key="astro",
            name="Astronomy image",
            file_format="fits",
            paper_num_files=17_700,
            paper_num_dirs=1,
            paper_total_bytes=1 * TB,
            paper_avg_bytes=6 * MB,
            gen_num_files=10,
            gen_avg_bytes=192 * KIB,
            target_ratio=2.6,
        ),
        DatasetSpec(
            key="imagenet",
            name="ImageNet",
            file_format="jpg",
            paper_num_files=1_300_000,
            paper_num_dirs=2_002,
            paper_total_bytes=140 * GB,
            paper_avg_bytes=100 * KB,
            gen_num_files=40,
            gen_avg_bytes=24 * KIB,
            target_ratio=1.0,
        ),
        DatasetSpec(
            key="language",
            name="Language",
            file_format="txt",
            paper_num_files=8,
            paper_num_dirs=1,
            paper_total_bytes=32 * MB,
            paper_avg_bytes=4 * MB,
            gen_num_files=8,
            gen_avg_bytes=64 * KIB,
            target_ratio=2.8,
        ),
    )
}


def get_spec(key: str) -> DatasetSpec:
    """Look up a Table II dataset spec by canonical key."""
    try:
        return TABLE2[key]
    except KeyError:
        raise KeyError(
            f"unknown dataset {key!r}; choose from {sorted(TABLE2)}"
        ) from None
