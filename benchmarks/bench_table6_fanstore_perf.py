"""Table VI — FanStore (Tpt_read, Bdw_read) per file size and cluster.

Modeled: the calibrated per-cluster storage models at the paper's file
sizes, with 4 parallel streams (the paper measures on four nodes).
Measured: the live client's throughput/bandwidth on this host, showing
the same throughput-bound-to-bandwidth-bound transition across sizes.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.report import PaperComparison
from repro.cluster.machines import cpu, gtx, v100
from repro.fanstore.daemon import DaemonConfig
from repro.fanstore.prepare import prepare_dataset
from repro.fanstore.store import FanStore, FanStoreOptions
from repro.selection.profiling import measure_client_read, model_read_performance
from repro.simnet.devices import fanstore_local
from repro.training.loader import list_training_files
from repro.util.units import KIB, MB

PAPER_TABLE6 = [
    # cluster, size label, size, Tpt_read (f/s), Bdw_read (MB/s)
    ("GTX", "512 KB", 512 * KIB, 9_469, 4_969),
    ("GTX", "2 MB", 2_048 * KIB, 3_158, 6_663),
    ("V100", "512 KB", 512 * KIB, 8_654, 4_540),
    ("V100", "2 MB", 2_048 * KIB, 5_026, 10_546),
    ("CPU", "1 KB", 1_024, 29_103, 30),
]

_MACHINES = {"GTX": gtx, "V100": v100, "CPU": cpu}


def _modeled_table6():
    # The paper's Table VI satisfies Bdw = Tpt × size exactly — i.e. it
    # reports the single-stream FanStore rate per cluster ("the FanStore
    # benchmark only uses one process per node", §VII-E discussion).
    rows = []
    for cluster, label, size, paper_tpt, paper_bdw in PAPER_TABLE6:
        machine = _MACHINES[cluster]()
        perf = model_read_performance(
            fanstore_local(machine.node.storage), size, streams=1
        )
        rows.append(
            (cluster, label, perf.tpt_read, paper_tpt,
             perf.bdw_read / MB, paper_bdw)
        )
    return rows


def test_table6_modeled(benchmark, emit_report):
    rows = benchmark(_modeled_table6)
    report = PaperComparison(
        "Table VI",
        "FanStore read performance, 4 nodes (modeled vs paper)",
        columns=["cluster", "size", "Tpt f/s", "(paper)", "Bdw MB/s",
                 "(paper)"],
    )
    for cluster, label, tpt, ptpt, bdw, pbdw in rows:
        report.add_row(cluster, label, round(tpt), ptpt, round(bdw), pbdw)
    report.add_note(
        "CPU cluster's 1 KB row is throughput-bound (30 MB/s at 29k f/s)"
        " — the regime Eq. 3's max() exists for"
    )
    emit_report(report)

    for cluster, label, tpt, ptpt, bdw, pbdw in rows:
        if cluster == "CPU":
            # tiny files: order-of-magnitude agreement is the target
            assert tpt == pytest.approx(ptpt, rel=2.0)
        else:
            assert tpt == pytest.approx(ptpt, rel=0.7)

    # The structural property: larger files shift from throughput-bound
    # to bandwidth-bound (files/s drops, MB/s rises).
    gtx_small = rows[0]
    gtx_big = rows[1]
    assert gtx_small[2] > gtx_big[2]  # Tpt falls
    assert gtx_small[4] < gtx_big[4]  # Bdw rises


def test_table6_measured_live_client(benchmark, em_store_raw, emit_report):
    files = list_training_files(em_store_raw.client)

    def read_all():
        return measure_client_read(em_store_raw.client, files)

    perf = benchmark.pedantic(read_all, rounds=3, iterations=1)
    report = PaperComparison(
        "Table VI (measured)",
        "live FanStore client on this host",
        columns=["metric", "value"],
    )
    report.add_row("Tpt_read (files/s)", round(perf.tpt_read))
    report.add_row("Bdw_read (MB/s)", round(perf.bdw_read / MB, 1))
    emit_report(report)
    assert perf.tpt_read > 1000  # user-space path is not the bottleneck

    # the run's MetricsSnapshot (written next to the report by
    # emit_report) must carry populated per-phase latency histograms:
    # with the default sampling (metrics_every=8) the 72 misses above
    # observed the fetch/verify/decompress split of the read path
    snap = em_store_raw.metrics.snapshot()
    assert snap.value("daemon.local_opens") >= len(files)
    for name in (
        "daemon.open_seconds",
        "daemon.phase.metadata_seconds",
        "daemon.phase.fetch_seconds",
        "daemon.phase.decompress_seconds",
    ):
        assert snap.get(name)["type"] == "histogram"
        assert snap.value(name) > 0, name


def test_table6_instrumentation_overhead(
    em_dataset_dir, tmp_path_factory, emit_report
):
    """The observability layer's read-path cost, measured: the same
    dataset read through an instrumented store (default sampling) and
    through one with observation disabled must agree within 5%."""
    packed = tmp_path_factory.mktemp("em-packed-overhead")
    prepared = prepare_dataset(
        em_dataset_dir, packed, num_partitions=2, compressor="zlib-1",
        threads=2,
    )
    instrumented = FanStore(prepared)  # metrics_every=8 default
    bare = FanStore(
        prepared,
        FanStoreOptions(config=DaemonConfig(metrics_every=0)),
    )
    try:
        files = list_training_files(instrumented.client)

        def read_all(fs):
            t0 = time.perf_counter()
            for path in files:
                fs.client.read_file(path)
            return time.perf_counter() - t0

        read_all(instrumented), read_all(bare)  # warm both paths
        # interleaved min-of-N: the minimum strips scheduler noise, the
        # interleaving strips drift
        t_instr = min(read_all(instrumented) for _ in range(7))
        t_bare = min(read_all(bare) for _ in range(7))
        ratio = t_instr / t_bare

        report = PaperComparison(
            "Table VI (instrumentation overhead)",
            "observed vs unobserved read path, min of 7 sweeps",
            columns=["configuration", "seconds/sweep"],
        )
        report.add_row("metrics_every=8 (default)", round(t_instr, 6))
        report.add_row("metrics_every=0 (off)", round(t_bare, 6))
        report.add_row("ratio", round(ratio, 4))
        emit_report(report)

        # sampled observation must stay within the 5% budget
        assert ratio <= 1.05, f"instrumentation overhead {ratio:.3f}x > 1.05x"
        # and the instrumented store actually observed phase timings
        assert instrumented.metrics.snapshot().value("daemon.open_seconds") > 0
        assert bare.metrics.snapshot().value("daemon.open_seconds") == 0
    finally:
        instrumented.shutdown()
        bare.shutdown()