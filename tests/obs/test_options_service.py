"""The redesigned construction API (FanStoreOptions, named
constructors, deprecated legacy kwargs) and the shared Service
contract."""

from __future__ import annotations

import dataclasses

import pytest

from repro.comm.launcher import run_parallel
from repro.fanstore.daemon import DaemonStats
from repro.fanstore.membership import FailureDetector
from repro.fanstore.scrub import Scrubber
from repro.fanstore.store import FanStore, FanStoreOptions
from repro.obs import MetricsRegistry
from repro.util.service import Service, stop_all


class TestFanStoreOptions:
    def test_defaults_are_single_node_quiet(self):
        opts = FanStoreOptions()
        assert opts.comm is None
        assert opts.membership is None
        assert opts.mount_point == "/fanstore"
        assert opts.metrics is None

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            FanStoreOptions().mount_point = "/other"  # type: ignore[misc]

    def test_options_construction(self, prepared_dataset):
        opts = FanStoreOptions(mount_point="/mnt/fs")
        with FanStore(prepared_dataset, opts) as fs:
            assert fs.options is opts
            assert fs.mount_point == "/mnt/fs"
            assert fs.resolve("/mnt/fs/train/x") == "train/x"

    def test_shared_metrics_registry(self, prepared_dataset):
        reg = MetricsRegistry(rank=0, label="shared")
        with FanStore(prepared_dataset, FanStoreOptions(metrics=reg)) as fs:
            assert fs.metrics is reg
            assert "daemon.local_opens" in reg

    def test_legacy_kwargs_warn_but_work(self, prepared_dataset):
        with pytest.deprecated_call(match="FanStoreOptions"):
            fs = FanStore(prepared_dataset, mount_point="/legacy")
        try:
            assert fs.options.mount_point == "/legacy"
            assert fs.resolve("/legacy/val/x") == "val/x"
        finally:
            fs.shutdown()

    def test_legacy_kwargs_layer_over_explicit_options(self, prepared_dataset):
        base = FanStoreOptions(mount_point="/base")
        with pytest.deprecated_call():
            fs = FanStore(prepared_dataset, base, mount_point="/override")
        try:
            assert fs.mount_point == "/override"
            assert base.mount_point == "/base"  # the original is untouched
        finally:
            fs.shutdown()

    def test_unknown_kwarg_is_a_typeerror(self, prepared_dataset):
        with pytest.raises(TypeError, match="wibble"):
            FanStore(prepared_dataset, wibble=1)

    def test_stats_method_deprecated_but_live(self, single_store):
        with pytest.deprecated_call(match="FanStore.metrics"):
            stats = single_store.stats()
        assert isinstance(stats, DaemonStats)
        assert stats is single_store.daemon.stats

    def test_with_membership_constructor(self, prepared_dataset):
        def body(comm):
            fs = FanStore.with_membership(prepared_dataset, comm)
            with fs:
                assert fs.membership is not None
                assert fs.membership.running
                assert fs.options.comm is comm
            assert not fs.membership.running
            return fs.rank

        assert run_parallel(body, 2, timeout=60) == [0, 1]


class TestServiceContract:
    def test_runtime_checkable_conformance(self, single_store):
        assert isinstance(single_store, Service)
        assert isinstance(single_store.scrubber(), Service)

    def test_failure_detector_conforms(self):
        def body(comm):
            det = FailureDetector(comm)
            assert isinstance(det, Service)
            with det:
                assert det.running
            assert not det.running
            comm.barrier()

        run_parallel(body, 2, timeout=60)

    def test_store_running_reflects_lifecycle(self, prepared_dataset):
        fs = FanStore(prepared_dataset)
        assert fs.running  # the constructor starts the service
        fs.start()  # idempotent while active
        assert fs.running
        fs.stop()
        assert not fs.running
        fs.stop()  # idempotent after shutdown
        fs.start()  # and restartable
        assert fs.running
        path = next(iter(fs.daemon.metadata.walk_files())).path
        assert fs.client.read_file(path)
        fs.shutdown()

    def test_context_manager_stops_on_exit(self, prepared_dataset):
        with FanStore(prepared_dataset) as fs:
            assert fs.running
        assert not fs.running

    def test_scrubber_service_lifecycle(self, single_store):
        scrub = single_store.scrubber(interval_s=0.01)
        assert not scrub.running
        with scrub:
            assert scrub.running
        assert not scrub.running

    def test_stop_all_reverse_order_and_exception_collection(self):
        order = []

        class Recorder:
            def __init__(self, name, fail=False):
                self.name, self.fail = name, fail
                self._running = False

            def start(self):
                self._running = True

            def stop(self):
                order.append(self.name)
                if self.fail:
                    raise RuntimeError(self.name)
                self._running = False

            @property
            def running(self):
                return self._running

        daemon = Recorder("daemon")
        detector = Recorder("detector", fail=True)
        scrub = Recorder("scrub")
        assert all(isinstance(s, Service) for s in (daemon, detector, scrub))
        failures = stop_all(daemon, detector, scrub)  # start order
        assert order == ["scrub", "detector", "daemon"]  # reverse stop
        assert [str(e) for e in failures] == ["detector"]

    def test_stop_all_on_real_stack(self, prepared_dataset):
        fs = FanStore(prepared_dataset)
        scrub = fs.scrubber(interval_s=0.01)
        scrub.start()
        assert stop_all(fs, scrub) == []
        assert not scrub.running and not fs.running
