"""The whole system in one pass: generate → prepare → multi-node store
→ interception → async training → outputs → teardown, with invariants
checked at every seam."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.launcher import run_parallel
from repro.datasets.synthetic import generate_dataset
from repro.fanstore.daemon import DaemonConfig
from repro.fanstore.interception import intercept
from repro.fanstore.prepare import PreparedDataset, prepare_dataset
from repro.fanstore.store import FanStore
from repro.training.loader import AsyncLoader, list_training_files
from repro.training.models import MLP
from repro.training.trainer import DataParallelTrainer, make_array_collate

NODES = 3
FEATURES = 8


def decoder(raw: bytes, path: str):
    arr = np.frombuffer(raw[8 : 8 + FEATURES], dtype=np.uint8)
    return arr.astype(np.float64) / 255.0, int(arr[0]) % 2


@pytest.fixture(scope="module")
def pipeline_dataset(tmp_path_factory):
    raw = tmp_path_factory.mktemp("pipe-raw")
    generate_dataset("astro", raw, num_files=9, avg_file_size=6_000,
                     num_dirs=3, seed=17)
    out = tmp_path_factory.mktemp("pipe-packed")
    prepare_dataset(raw, out, num_partitions=NODES,
                    compressor="delta+zlib-6", threads=2)
    return raw, out


def test_full_pipeline(pipeline_dataset):
    raw_dir, packed_dir = pipeline_dataset
    prepared = PreparedDataset.load(packed_dir)
    assert prepared.ratio > 1.0

    originals = {
        str(p.relative_to(raw_dir)): p.read_bytes()
        for p in sorted(raw_dir.rglob("*"))
        if p.is_file()
    }

    config = DaemonConfig(output_compressor="zlib-1")

    def node_main(comm):
        with FanStore(prepared, comm=comm, config=config) as fs:
            # 1. global view: every file enumerable and statable
            files = list_training_files(fs.client)
            assert len(files) == len(originals)
            for f in files:
                assert fs.client.stat(f).st_size == len(originals[f])

            # 2. every byte correct, local or remote
            for f in files:
                assert fs.client.read_file(f) == originals[f]

            # 3. interception serves unmodified code (one rank only;
            # builtins are process-global)
            if comm.rank == 0:
                import os

                with intercept(fs):
                    listing = os.listdir(fs.mount_point)
                    assert "cls0000" in listing

            # 4. async training with allreduce
            loader = AsyncLoader(
                fs.client, files, batch_size=6, epochs=2,
                rank=comm.rank, world_size=comm.size, seed=3,
                decoder=decoder,
            )
            trainer = DataParallelTrainer(
                MLP([FEATURES, 6, 2], seed=5),
                loader,
                make_array_collate((FEATURES,), 2),
                comm=comm,
                lr=0.1,
                log_client=fs.client,  # rank 0 writes the training log
                log_path="logs/train.log",
            )
            report = trainer.train()

            # 5. outputs: every rank writes a sample artifact (§II-B3's
            # GAN-sample pattern) through the compressed write path;
            # after a barrier, peers can read it remotely.
            fs.client.write_file(
                f"samples/rank{comm.rank}.bin",
                bytes([comm.rank]) * 512,
            )
            comm.barrier()
            peer = (comm.rank + 1) % comm.size
            assert fs.client.read_file(
                f"samples/rank{peer}.bin"
            ) == bytes([peer]) * 512
            log = fs.client.read_file("logs/train.log")
            assert b"epoch=" in log

            stats = fs.daemon.stats
            return {
                "params": trainer.model.get_flat_params(),
                "iterations": report.iterations,
                "decompressions": stats.decompressions,
                "remote": stats.remote_fetches,
                "writes": stats.writes,
            }

    results = run_parallel(node_main, NODES, timeout=180)

    # replicas identical; every rank decompressed and wrote
    p0 = results[0]["params"]
    for r in results[1:]:
        np.testing.assert_array_equal(r["params"], p0)
    for r in results:
        assert r["iterations"] > 0
        assert r["decompressions"] > 0
        assert r["writes"] >= 1
    # with 3 ranks and 3 partitions, somebody must have fetched remotely
    assert sum(r["remote"] for r in results) > 0


def test_pipeline_reuses_prepared_dataset(pipeline_dataset):
    """§V-B: prepare once, mount many times — a second mount of the
    same partitions sees the identical namespace."""
    _, packed_dir = pipeline_dataset
    prepared = PreparedDataset.load(packed_dir)
    with FanStore(prepared) as first:
        names_first = sorted(
            r.path for r in first.daemon.metadata.walk_files()
        )
    with FanStore(prepared) as second:
        names_second = sorted(
            r.path for r in second.daemon.metadata.walk_files()
        )
        assert names_first == names_second
        assert second.verify_integrity() == len(names_second)
