"""The ``fanstore-top`` aggregator CLI."""

from __future__ import annotations

import json

import pytest

from repro.obs import MetricsRegistry, Tracer
from repro.obs.top import main


@pytest.fixture()
def obs_dir(tmp_path):
    """Two ranks' worth of metrics plus one exported trace."""
    for rank in range(2):
        reg = MetricsRegistry(rank=rank, label="drill")
        reg.counter("daemon.local_opens").inc(5 + rank)
        reg.histogram("daemon.open_seconds").observe(1e-5)
        reg.snapshot().write_jsonl(tmp_path / f"rank{rank}.metrics.jsonl")
    tr = Tracer(rank=0)
    with tr.root("client.read"):
        with tr.span("fetch.degraded"):
            pass
    tr.export_jsonl(tmp_path / "rank0.traces.jsonl")
    return tmp_path


def test_directory_input_prints_merged_table(obs_dir, capsys):
    assert main([str(obs_dir)]) == 0
    out = capsys.readouterr().out
    assert "2 rank snapshot(s)" in out
    assert "daemon.local_opens" in out
    assert "11" in out  # 5 + 6 summed across ranks
    assert "count=2" in out  # merged histogram


def test_per_rank_tables(obs_dir, capsys):
    assert main([str(obs_dir), "--per-rank"]) == 0
    out = capsys.readouterr().out
    assert "rank 0 [drill]:" in out and "rank 1 [drill]:" in out


def test_filter_prefix(obs_dir, capsys):
    for rank in range(2):
        reg = MetricsRegistry(rank=rank, label="extra")
        reg.counter("cache.hits").inc()
        reg.snapshot().write_jsonl(
            obs_dir / f"rank{rank}.metrics.jsonl", append=True
        )
    assert main([str(obs_dir), "--filter", "daemon."]) == 0
    out = capsys.readouterr().out
    assert "daemon.local_opens" in out and "cache.hits" not in out


def test_json_output_parses(obs_dir, capsys):
    assert main([str(obs_dir), "--json"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    objs = [json.loads(line) for line in lines]
    assert all(obj["rank"] == -1 for obj in objs)
    by_name = {obj["name"]: obj for obj in objs}
    assert by_name["daemon.local_opens"]["value"] == 11


def test_traces_rendering(obs_dir, capsys):
    assert main([str(obs_dir), "--traces"]) == 0
    out = capsys.readouterr().out
    assert "traces: 1" in out
    assert "client.read" in out and "fetch.degraded" in out


def test_assert_non_empty_passes_with_metrics(obs_dir):
    assert main([str(obs_dir), "--assert-non-empty"]) == 0


def test_assert_non_empty_fails_on_empty_input(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main([str(empty), "--assert-non-empty"]) == 1
    assert "EMPTY" in capsys.readouterr().err


def test_missing_inputs_exit_nonzero(tmp_path, capsys):
    assert main([str(tmp_path / "nope.jsonl")]) == 1
    assert "no input files" in capsys.readouterr().err


def test_console_script_is_declared():
    """The packaging hook: fanstore-top must point at this main."""
    text = (
        __import__("pathlib").Path(__file__)
        .parents[2].joinpath("pyproject.toml").read_text()
    )
    assert 'fanstore-top = "repro.obs.top:main"' in text
