"""What crash-consistent durability costs.

Three measurements on the same single-rank, disk-resident store:

- **write-path overhead (gated)** — the identical multi-threaded
  burst of checkpoint-style outputs (8 writer threads, ~64 KiB JSON
  float blobs — the write workload this store actually sees: trainer
  checkpoints and logs) with the write-ahead journal on vs off. The
  full acked-write protocol (intent append + group fsync → atomic
  apply → lazily synced commit record) must stay within **1.10×** of
  the bare atomic-apply path. Best-of-N rounds on fresh directories,
  so filesystem cache drift does not masquerade as protocol cost.
- **flat per-write cost (informational)** — the same burst with
  small incompressible payloads, where nothing amortizes the
  protocol: the worst-case absolute overhead per acked write, in
  microseconds. Reported, not gated — no training write path is made
  of 2 KiB random blobs.
- **restart recovery time** — a journalled store is abandoned without
  shutdown after N acked writes (nothing checkpointed: the whole tail
  must be scanned and digest-verified on restart), and the restarting
  constructor is timed for N ∈ (50, 200, 800). Recovery is
  verification, not replay — committed bytes are already in place —
  so the cost should be near-linear in journal length.

Writes a repo-root ``BENCH_crash_recovery.json`` with the measured
rows and the overhead gate, alongside the usual
``benchmarks/_results`` report.
"""

from __future__ import annotations

import json
import random
import threading
import time
from pathlib import Path

import pytest

from repro.bench.report import PaperComparison
from repro.datasets.synthetic import generate_dataset
from repro.fanstore.journal import JournalConfig
from repro.fanstore.prepare import prepare_dataset
from repro.fanstore.store import FanStore, FanStoreOptions

SEED = 8
THREADS = 8
BURST_WRITES = 128          # total across the writer threads
ROUNDS = 5                  # best-of, fresh directories each round
RECOVERY_LENGTHS = (50, 200, 800)
OVERHEAD_GATE = 1.10

#: roomy segments so an 800-write journal never checkpoints itself —
#: restart recovery must walk the whole tail
BIG_JCFG = JournalConfig(
    segment_max_bytes=1 << 28,
    segment_max_records=1 << 20,
    max_segments=8,
)

JSON_OUT = Path(__file__).parents[1] / "BENCH_crash_recovery.json"


@pytest.fixture(scope="module")
def durability_dataset(tmp_path_factory):
    raw = tmp_path_factory.mktemp("durability-raw")
    generate_dataset("em", raw, num_files=12, avg_file_size=8_000,
                     num_dirs=2, seed=SEED)
    return prepare_dataset(
        raw, tmp_path_factory.mktemp("durability-packed"),
        num_partitions=1, compressor="zlib-1", threads=2,
    )


def _ckpt_payloads(count: int) -> dict[str, bytes]:
    """Checkpoint-shaped outputs: ~64 KiB JSON float blobs, exactly
    what ``CheckpointManager`` hands the write path every epoch."""
    rng = random.Random(SEED * 6151)
    return {
        f"out/ckpt{i:04d}.json": json.dumps(
            [rng.random() for _ in range(3277)]
        ).encode()
        for i in range(count)
    }


def _raw_payloads(count: int) -> dict[str, bytes]:
    """Small incompressible outputs straddling the default 4 KiB
    embed boundary — the protocol's worst case, nothing amortizes."""
    rng = random.Random(SEED * 7919)
    return {
        f"out/raw{i:04d}.bin": rng.randbytes(rng.choice((256, 2048, 8192)))
        for i in range(count)
    }


def _write_burst(fs: FanStore, payloads: dict[str, bytes]) -> float:
    """Write every payload from THREADS concurrent threads; return the
    wall-clock seconds for the whole acked burst."""
    items = sorted(payloads.items())
    shards = [items[t::THREADS] for t in range(THREADS)]
    start = threading.Barrier(THREADS + 1)
    errors: list[BaseException] = []

    def writer(shard):
        start.wait()
        try:
            for path, data in shard:
                fs.client.write_file(path, data)
        except BaseException as exc:  # surface, don't hang the join
            errors.append(exc)

    threads = [
        threading.Thread(target=writer, args=(shard,), daemon=True)
        for shard in shards
    ]
    for t in threads:
        t.start()
    start.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    assert not errors, errors
    return elapsed


def _best_burst(prepared, tmp_path_factory, payloads, *,
                journal: bool) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        root = tmp_path_factory.mktemp(
            "burst-journal" if journal else "burst-bare"
        )
        fs = FanStore(prepared, FanStoreOptions(
            local_dir=root / "local", journal=journal,
        ))
        try:
            best = min(best, _write_burst(fs, payloads))
        finally:
            fs.shutdown()
    return best


def _overhead(prepared, tmp_path_factory, payloads) -> dict:
    bare = _best_burst(prepared, tmp_path_factory, payloads, journal=False)
    journalled = _best_burst(prepared, tmp_path_factory, payloads,
                             journal=True)
    return {
        "bare_s": round(bare, 4),
        "journal_s": round(journalled, 4),
        "overhead_x": round(journalled / bare, 4),
        "per_write_us": round(
            (journalled - bare) / len(payloads) * 1e6, 1
        ),
    }


def _recovery_row(prepared, tmp_path_factory, length: int) -> dict:
    payloads = _raw_payloads(length)
    root = tmp_path_factory.mktemp(f"recover-{length}")
    opts = FanStoreOptions(local_dir=root / "local",
                           journal_config=BIG_JCFG)
    fs = FanStore(prepared, opts)
    _write_burst(fs, payloads)
    # abandoned, never shut down: the tail is never checkpointed and
    # the restart below must verify every journalled write
    t0 = time.perf_counter()
    fs2 = FanStore(prepared, opts)
    restart_s = time.perf_counter() - t0
    stats = fs2.daemon.jstats
    sample = min(payloads)
    ok = fs2.client.read_file(sample) == payloads[sample]
    row = {
        "writes": length,
        "restart_s": round(restart_s, 4),
        "recovery_s": round(stats.recovery_seconds, 4),
        "replayed": stats.recovery_replayed,
        "reapplied": stats.recovery_reapplied,
        "rolled_back": stats.recovery_rolled_back,
        "quarantined": stats.recovery_quarantined,
        "sample_byte_exact": ok,
    }
    fs2.shutdown()
    return row


def test_crash_recovery_economics(
    benchmark, durability_dataset, tmp_path_factory, emit_report
):
    def run_all():
        return {
            "checkpoint": _overhead(
                durability_dataset, tmp_path_factory,
                _ckpt_payloads(BURST_WRITES),
            ),
            "worst_case": _overhead(
                durability_dataset, tmp_path_factory,
                _raw_payloads(BURST_WRITES),
            ),
            "recovery": [
                _recovery_row(durability_dataset, tmp_path_factory, n)
                for n in RECOVERY_LENGTHS
            ],
        }

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    ckpt = rows["checkpoint"]
    worst = rows["worst_case"]

    report = PaperComparison(
        "Crash-consistent durability cost",
        f"{THREADS}-thread burst of {BURST_WRITES} acked writes, "
        "journal on vs off; restart recovery vs journal length",
        columns=["measurement", "value"],
    )
    report.add_row(
        "checkpoint burst, bare / journalled (s)",
        f"{ckpt['bare_s']} / {ckpt['journal_s']}",
    )
    report.add_row(
        "checkpoint write overhead (gated)",
        f"{ckpt['overhead_x']:.3f}x (gate {OVERHEAD_GATE:.2f}x)",
    )
    report.add_row(
        "worst case: small incompressible writes",
        f"{worst['overhead_x']:.3f}x, {worst['per_write_us']} us/write",
    )
    for r in rows["recovery"]:
        report.add_row(
            f"restart after {r['writes']} journalled writes (s)",
            r["restart_s"],
        )
    report.add_note(
        "the intent fsync is the only barrier on the acked path (the "
        "atomic apply's rename + dir fsync is the durable commit "
        "point, the commit record group-syncs lazily); recovery is "
        "digest verification of already-applied bytes, so restart "
        "cost tracks journal length"
    )
    emit_report(report)

    JSON_OUT.write_text(json.dumps({
        "bench": "crash_recovery",
        "threads": THREADS,
        "burst_writes": BURST_WRITES,
        "rounds": ROUNDS,
        "checkpoint_workload": ckpt,
        "worst_case_workload": worst,
        "overhead_x": ckpt["overhead_x"],
        "overhead_gate_x": OVERHEAD_GATE,
        "recovery": rows["recovery"],
    }, indent=2) + "\n")

    # the durability protocol must stay within the overhead gate on
    # the workload the store actually writes, and every journalled
    # write must come back verified on restart
    assert ckpt["overhead_x"] <= OVERHEAD_GATE, (
        f"journalled write path {ckpt['overhead_x']:.3f}x exceeds "
        f"the {OVERHEAD_GATE:.2f}x gate"
    )
    for r in rows["recovery"]:
        assert r["sample_byte_exact"]
        assert r["quarantined"] == 0
        assert r["replayed"] + r["reapplied"] >= r["writes"]
