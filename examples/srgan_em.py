#!/usr/bin/env python3
"""SRGAN-style distributed training over FanStore (the §VII-E1 case).

A scaled-down functional reproduction of the paper's first case study:
an EM micrograph dataset, packaged with the compressor the selection
algorithm picks for synchronous I/O, trained data-parallel on four
in-process "nodes" with gradient allreduce, epoch checkpoints, and a
log written through the FanStore write path. (The GAN itself is stood
in by a small numpy MLP — the I/O system cannot tell the difference.)

Run: ``python examples/srgan_em.py``
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.comm import run_parallel
from repro.compressors.profiles import PAPER_PROFILES
from repro.datasets import generate_dataset
from repro.fanstore import (
    CheckpointManager,
    FanStore,
    FanStoreOptions,
    prepare_dataset,
)
from repro.selection import CompressorSelector
from repro.selection.cases import srgan_gtx
from repro.selection.profiling import candidate_from_profile
from repro.training import (
    DataParallelTrainer,
    MLP,
    SyncLoader,
    list_training_files,
    make_array_collate,
)

NODES = 4
FEATURES = 32
CLASSES = 4
EPOCHS = 6


def decode_tif(raw: bytes, path: str):
    """Bytes → (features, label) — the 'data pipeline'. The label is a
    quantized image statistic, so the task is actually learnable and the
    loss visibly falls (a stand-in for SRGAN's reconstruction loss)."""
    pixels = np.frombuffer(raw[8 : 8 + FEATURES * 2], dtype=np.uint16)
    features = pixels.astype(np.float64)
    features = (features - features.mean()) / (features.std() + 1e-9)
    label = int(pixels.mean() // 80) % CLASSES
    return features[:FEATURES], label


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="srgan-em-"))

    print("== selection: which compressor survives sync I/O on GTX? ==")
    case = srgan_gtx()
    result = CompressorSelector(case.inputs).select(case.candidates())
    choice = result.selected
    print(f"   accepted: {[c.name for c in result.accepted]}; "
          f"selected {choice.name} "
          f"(ratio {choice.ratio}, {choice.decompress_cost * 1e6:.0f} µs/file)")

    print("\n== prepare the EM dataset with the selected compressor ==")
    raw = workdir / "raw"
    generate_dataset("em", raw, num_files=24, avg_file_size=16_384,
                     num_dirs=CLASSES, seed=3)
    # lzsse8 aliases to a real suite member for the byte path
    prepared = prepare_dataset(raw, workdir / "packed",
                               num_partitions=NODES,
                               compressor=choice.name, threads=2)
    print(f"   ratio achieved on synthetic EM: {prepared.ratio:.2f}x "
          f"(paper profile: {choice.ratio}x on real EM)")

    ckpt_dir = workdir / "ckpt"

    def node_main(comm):
        with FanStore(prepared, FanStoreOptions(comm=comm)) as fs:
            files = list_training_files(fs.client)
            loader = SyncLoader(
                fs.client, files, batch_size=8, epochs=EPOCHS,
                rank=comm.rank, world_size=comm.size, seed=0,
                decoder=decode_tif,
            )
            trainer = DataParallelTrainer(
                MLP([FEATURES, 24, CLASSES], seed=7),
                loader,
                make_array_collate((FEATURES,), CLASSES),
                comm=comm,
                lr=0.15,
                checkpoints=CheckpointManager(ckpt_dir) if comm.rank == 0
                else None,
                log_client=fs.client if comm.rank == 0 else None,
            )
            report = trainer.train()
            remote = fs.daemon.stats.remote_fetches
            return report, remote, trainer.model.get_flat_params()

    print(f"\n== train on {NODES} nodes (sync I/O, allreduce each step) ==")
    results = run_parallel(node_main, NODES, timeout=300)
    report0, remote0, params0 = results[0]
    print(f"   {report0.iterations} iterations over {EPOCHS} epochs; "
          f"loss {report0.losses[0]:.3f} -> {report0.losses[-1]:.3f}")
    print(f"   rank 0 fetched {remote0} files from peers over the "
          f"'interconnect'")
    for rank, (_, _, params) in enumerate(results[1:], start=1):
        assert np.array_equal(params, params0), "replicas diverged!"
    print(f"   all {NODES} model replicas bit-identical after training")

    mgr = CheckpointManager(ckpt_dir)
    print(f"   checkpoints on the shared FS: epochs {mgr.epochs()} "
          f"(resume point: {mgr.latest().epoch})")
    print("\ndone.")


if __name__ == "__main__":
    main()
