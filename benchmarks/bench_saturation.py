"""Saturation throughput of the pipelined daemon core (PR 9).

One rank serves its in-RAM store while 1/8/64 client threads on a peer
rank hammer it with small fetches — the many-DataLoader-workers shape
the paper's training runs produce. Two scheduler configurations face
the same storm:

- **blocking** — ``pipeline_workers=0, batch_max=1, coalesce=False``:
  the pre-PR-9 daemon. The service loop serves one request to
  completion at a time and every client fetch runs its own ladder and
  its own round trip.
- **pipelined** — the PR 9 defaults: staged serve-side workers, bounded
  in-flight dispatch, single-flight coalescing, and per-destination
  batching (parked requests ride one envelope, up to ``batch_max`` at a
  time).

Small payloads and an epoch-shaped strided walk on purpose: many
DataLoader workers pulling the same shuffled shard list collide on
paths constantly — exactly the traffic single-flight coalesces and the
batched envelope amortizes — and small stat/fetch requests are where a
blocking loop saturates first. The
second test guards the other side of the trade: a *single* client
running the full table-6 read path (fetch + zlib decompress) must not
pay more than 5% for the pipelined machinery it does not need.

Writes the repo-root ``BENCH_saturation.json`` perf-trajectory record
with requests/sec per (mode, clients) point and both gates:
pipelined/blocking >= 2x at 64 clients, single-client read-path
overhead <= 1.05x.

Run with ``FANSTORE_LOCKDEP=0`` (CI does): the lockdep witness taxes
every lock acquisition, which lands disproportionately on the
lock-heavy pipelined paths and distorts exactly the comparison these
gates make.
"""

from __future__ import annotations

import json
import random
import threading
import time
from pathlib import Path

from repro.bench.report import PaperComparison
from repro.comm.launcher import run_parallel
from repro.datasets.synthetic import generate_dataset
from repro.fanstore.daemon import DaemonConfig, FanStoreDaemon
from repro.fanstore.layout import FileStat, blob_crc32
from repro.fanstore.metadata import FileRecord
from repro.fanstore.pipeline import PipelineConfig
from repro.fanstore.prepare import prepare_dataset
from repro.fanstore.store import FanStore, FanStoreOptions

import pytest

RANKS = 2
SERVER = 1
BLOB_BYTES = 4 * 1024
PER_CLIENT = 24
CLIENT_COUNTS = (1, 8, 64)
N_FILES = 48
ROUNDS = 3  # best-of, per point: saturation numbers are noisy
SEED = 9

#: generous per-attempt budget and a deep admission queue: the storm
#: must be measured, not shed — both configurations share these.
BASE = dict(
    request_timeout=5.0,
    max_retries=2,
    retry_backoff_base=0.01,
    retry_backoff_max=0.05,
    retry_jitter=0.0,
    max_queue_depth=256,
)

MODES = {
    "blocking": PipelineConfig(
        pipeline_workers=0, batch_max=1, coalesce=False
    ),
    "pipelined": PipelineConfig(),  # the PR 9 defaults
}

JSON_OUT = Path(__file__).parents[1] / "BENCH_saturation.json"

SPEEDUP_GATE = 2.0  # pipelined vs blocking requests/sec at 64 clients
OVERHEAD_GATE = 1.05  # single-client read-path cost, pipelined/blocking


def _payloads() -> dict[str, bytes]:
    rng = random.Random(SEED)
    return {
        f"train/s{i:03d}": rng.randbytes(BLOB_BYTES) for i in range(N_FILES)
    }


def _record(path: str, payload: bytes) -> FileRecord:
    # memcpy records: the storm measures the scheduler, not a codec
    return FileRecord(
        path=path,
        stat=FileStat(st_size=len(payload)).with_digest(blob_crc32(payload)),
        compressor_id=1,
        compressed_size=len(payload),
        home_rank=SERVER,
        partition_id=0,
    )


def _run_point(mode: str, clients: int) -> dict:
    """One (mode, clients) saturation point: wall-clock the storm on
    the client rank, return requests/sec plus scheduler counters."""
    config = DaemonConfig(pipeline=MODES[mode], **BASE)
    payloads = _payloads()
    paths = sorted(payloads)

    def body(comm):
        daemon = FanStoreDaemon(comm, config=config)
        for path, blob in payloads.items():
            daemon.metadata.insert(_record(path, blob))
        if comm.rank == SERVER:
            for path, blob in payloads.items():
                daemon.backend.put(path, blob)
            daemon.start()
            comm.barrier(timeout=180)  # measurement done
            daemon.stop()
            return {
                "served": daemon.stats.served_requests,
                "batch_envelopes": daemon.metrics.get(
                    "daemon.batch.served"
                ).value,
            }
        start = threading.Barrier(clients + 1)
        errors: list[Exception] = []

        def client(idx: int) -> None:
            start.wait(60)
            for j in range(PER_CLIENT):
                # strided epoch walk: concurrent clients collide on
                # paths the way DataLoader workers sharing a shuffled
                # shard list do
                path = paths[(idx * 5 + j) % len(paths)]
                try:
                    daemon.fetch_compressed(path)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    return

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(clients)
        ]
        for t in threads:
            t.start()
        start.wait(60)
        t0 = time.perf_counter()
        for t in threads:
            t.join(180)
        elapsed = time.perf_counter() - t0
        comm.barrier(timeout=180)
        assert not errors, errors[:3]
        return {
            "elapsed_s": elapsed,
            "requests": clients * PER_CLIENT,
            "coalesced": daemon.metrics.get(
                "daemon.pipeline.coalesced_fetches"
            ).value,
            "batch_flushes": daemon.metrics.get(
                "daemon.batch.flushes"
            ).value,
        }

    client_side, server_side = None, None
    for _ in range(ROUNDS):  # best-of: keep the least-noisy round
        results = run_parallel(body, RANKS, timeout=300)
        if client_side is None or results[0]["elapsed_s"] < client_side["elapsed_s"]:
            client_side, server_side = results[0], results[RANKS - 1]
    return {
        "clients": clients,
        "requests": client_side["requests"],
        "elapsed_s": round(client_side["elapsed_s"], 4),
        "requests_per_s": round(
            client_side["requests"] / client_side["elapsed_s"], 1
        ),
        "coalesced_fetches": client_side["coalesced"],
        "batch_flushes": client_side["batch_flushes"],
        "server_batch_envelopes": server_side["batch_envelopes"],
    }


def _read_pass_seconds(prepared, pipeline: PipelineConfig) -> float:
    """One full-namespace table-6 read pass (fetch + decompress) with a
    single client thread; returns the read-phase wall time on rank 0."""
    config = DaemonConfig(pipeline=pipeline, **BASE)

    def body(comm):
        opts = FanStoreOptions(comm=comm, config=config)
        with FanStore(prepared, opts) as fs:
            comm.barrier()  # everyone loaded: time only the read pass
            t0 = time.perf_counter()
            for rec in fs.daemon.metadata.walk_files():
                fs.client.read_file(rec.path)
            elapsed = time.perf_counter() - t0
            comm.barrier()
            return elapsed

    return run_parallel(body, RANKS, timeout=300)[0]


@pytest.fixture(scope="module")
def saturation_dataset(tmp_path_factory):
    raw = tmp_path_factory.mktemp("saturation-raw")
    generate_dataset("em", raw, num_files=32, avg_file_size=16_000,
                     num_dirs=2, seed=SEED)
    return prepare_dataset(
        raw, tmp_path_factory.mktemp("saturation-packed"),
        num_partitions=RANKS, compressor="zlib-1", threads=2,
    )


def test_saturation_throughput(benchmark, emit_report):
    rows = {
        mode: [_run_point(mode, n) for n in CLIENT_COUNTS]
        for mode in MODES
    }
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    report = PaperComparison(
        "Daemon saturation: blocking vs pipelined scheduler",
        f"{N_FILES} x {BLOB_BYTES // 1024} KiB records on 1 server rank; "
        f"{PER_CLIENT} fetches per client",
        columns=["clients", "blocking req/s", "pipelined req/s", "speedup"],
    )
    speedups = {}
    for i, n in enumerate(CLIENT_COUNTS):
        blocking = rows["blocking"][i]["requests_per_s"]
        pipelined = rows["pipelined"][i]["requests_per_s"]
        speedups[n] = pipelined / blocking
        report.add_row(n, blocking, pipelined, f"{speedups[n]:.2f}x")
    report.add_note(
        f"gate: pipelined >= {SPEEDUP_GATE:.0f}x blocking at "
        f"{CLIENT_COUNTS[-1]} clients (measured "
        f"{speedups[CLIENT_COUNTS[-1]]:.2f}x)"
    )
    emit_report(report)

    payload = {
        "bench": "saturation",
        "ranks": RANKS,
        "files": N_FILES,
        "blob_bytes": BLOB_BYTES,
        "per_client_requests": PER_CLIENT,
        "modes": rows,
        "speedup_by_clients": {
            str(n): round(s, 2) for n, s in speedups.items()
        },
        "speedup_gate_64_clients": SPEEDUP_GATE,
    }
    if JSON_OUT.exists():
        payload.update(json.loads(JSON_OUT.read_text()).get("_keep", {}))
    JSON_OUT.write_text(json.dumps(payload, indent=2) + "\n")

    assert speedups[CLIENT_COUNTS[-1]] >= SPEEDUP_GATE, rows


def test_single_client_read_overhead(
    benchmark, saturation_dataset, emit_report
):
    """The table-6 read path must not pay for machinery it does not
    use: one client, full namespace, pipelined vs blocking."""
    best = {mode: float("inf") for mode in MODES}
    for _ in range(ROUNDS):
        for mode, pipeline in MODES.items():
            best[mode] = min(
                best[mode], _read_pass_seconds(saturation_dataset, pipeline)
            )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    overhead = best["pipelined"] / best["blocking"]

    report = PaperComparison(
        "Single-client read-path overhead of the pipelined scheduler",
        "full-namespace table-6 read pass (fetch + zlib-1 decompress)",
        columns=["config", "read pass s"],
    )
    for mode, seconds in best.items():
        report.add_row(mode, round(seconds, 4))
    report.add_note(
        f"pipelined/blocking = {overhead:.3f}x "
        f"(gate: <= {OVERHEAD_GATE:.2f}x at 1 client)"
    )
    emit_report(report)

    if JSON_OUT.exists():
        payload = json.loads(JSON_OUT.read_text())
    else:
        payload = {"bench": "saturation"}
    payload["single_client_read_pass_s"] = {
        mode: round(seconds, 4) for mode, seconds in best.items()
    }
    payload["single_client_overhead_x"] = round(overhead, 3)
    payload["overhead_gate"] = OVERHEAD_GATE
    JSON_OUT.write_text(json.dumps(payload, indent=2) + "\n")

    assert overhead <= OVERHEAD_GATE, best
