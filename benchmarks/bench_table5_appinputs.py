"""Table V — the application inputs to the selection algorithm.

The profiles carry the paper's published (T_iter, C_batch, S_batch)
rows; the functional layer demonstrates the *measurement procedure* —
profiling an application with data in RAM to isolate compute — on the
real tiny-numpy models.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.report import PaperComparison
from repro.training.apps import frnn, resnet50, srgan
from repro.training.models import LSTMClassifier, MLP
from repro.util.units import KB, MB


def test_table5_profiles(benchmark, emit_report):
    apps = benchmark.pedantic(
        lambda: (srgan(), frnn(), resnet50()), rounds=1, iterations=1
    )
    s, f, r = apps

    report = PaperComparison(
        "Table V",
        "application inputs (profiles carrying the paper's rows)",
        columns=["app", "cluster", "io", "T_iter", "C_batch", "S'_batch"],
    )
    report.add_row("SRGAN", "GTX", s.io_mode, "9689 ms", s.c_batch, "410 MB")
    report.add_row("SRGAN", "V100", s.io_mode, "2416 ms", s.c_batch, "410 MB")
    report.add_row("FRNN", "CPU", f.io_mode, "655 ms", f.c_batch, "615 KB")
    emit_report(report)

    assert s.t_iter("GTX") == pytest.approx(9.689)
    assert s.t_iter("V100") == pytest.approx(2.416)
    assert s.s_batch_bytes == pytest.approx(410 * MB)
    assert f.t_iter("CPU") == pytest.approx(0.655)
    assert f.s_batch_bytes == pytest.approx(615 * KB)
    assert (s.io_mode, f.io_mode) == ("sync", "async")


def test_table5_measurement_procedure_mlp(benchmark, emit_report):
    """Profile a real model with in-RAM data — T_iter for the
    functional stand-ins, measured the way §VII-E profiles SRGAN/FRNN."""
    rng = np.random.default_rng(0)
    model = MLP([64, 128, 10], seed=1)
    x = rng.standard_normal((32, 64))
    labels = rng.integers(0, 10, 32)

    def one_iteration():
        loss, grads = model.loss_and_gradients(x, labels)
        model.apply_gradients(grads, lr=0.01)
        return loss

    benchmark(one_iteration)
    t_iter = benchmark.stats.stats.mean

    report = PaperComparison(
        "Table V (measured)",
        "T_iter of the functional numpy stand-ins on this host",
        columns=["model", "batch", "T_iter"],
    )
    report.add_row("MLP 64-128-10 (ResNet stand-in)", 32,
                   f"{t_iter * 1e3:.2f} ms")
    emit_report(report)
    assert t_iter > 0


def test_table5_measurement_procedure_lstm(benchmark):
    rng = np.random.default_rng(1)
    model = LSTMClassifier(8, 16, 2, seed=2)
    x = rng.standard_normal((16, 10, 8))
    labels = rng.integers(0, 2, 16)

    def one_iteration():
        loss, grads = model.loss_and_gradients(x, labels)
        model.apply_gradients(grads, lr=0.01)
        return loss

    benchmark(one_iteration)
    assert benchmark.stats.stats.mean > 0