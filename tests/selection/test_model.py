"""Equations 1–3 and the selection policy."""

from __future__ import annotations

import pytest

from repro.errors import SelectionError
from repro.selection.model import (
    CompressorCandidate,
    CompressorSelector,
    IoPerformance,
    SelectionInputs,
    t_read,
)
from repro.util.units import MB


def make_inputs(**overrides):
    defaults = dict(
        io_mode="sync",
        c_batch=100,
        s_batch_uncompressed=100 * MB,
        perf_uncompressed=IoPerformance(tpt_read=1000, bdw_read=1000 * MB),
        perf_compressed=IoPerformance(tpt_read=2000, bdw_read=1000 * MB),
        t_iter=1.0,
        parallelism=1,
    )
    defaults.update(overrides)
    return SelectionInputs(**defaults)


class TestEquation3:
    def test_throughput_bound(self):
        perf = IoPerformance(tpt_read=100, bdw_read=10_000 * MB)
        # 100 files at 100 f/s = 1 s; bytes are negligible
        assert t_read(100, 1 * MB, perf) == pytest.approx(1.0)

    def test_bandwidth_bound(self):
        perf = IoPerformance(tpt_read=1_000_000, bdw_read=100 * MB)
        assert t_read(10, 500 * MB, perf) == pytest.approx(5.0)

    def test_max_of_both(self):
        """The §VI-A non-linearity: whichever bound is slower governs."""
        perf = IoPerformance(tpt_read=100, bdw_read=100 * MB)
        assert t_read(100, 200 * MB, perf) == pytest.approx(2.0)  # bw wins
        assert t_read(400, 200 * MB, perf) == pytest.approx(4.0)  # tpt wins

    def test_validation(self):
        perf = IoPerformance(tpt_read=1, bdw_read=1)
        with pytest.raises(SelectionError):
            t_read(0, 1, perf)
        with pytest.raises(SelectionError):
            t_read(1, -1, perf)
        with pytest.raises(SelectionError):
            IoPerformance(tpt_read=0, bdw_read=1)


class TestInputValidation:
    def test_io_mode(self):
        with pytest.raises(SelectionError):
            make_inputs(io_mode="magic")

    def test_async_requires_t_iter(self):
        with pytest.raises(SelectionError):
            make_inputs(io_mode="async", t_iter=0.0)

    def test_candidate_validation(self):
        with pytest.raises(SelectionError):
            CompressorCandidate("x", ratio=0.5, decompress_cost=1.0)
        with pytest.raises(SelectionError):
            CompressorCandidate("x", ratio=2.0, decompress_cost=-1.0)


class TestBudget:
    def test_sync_budget_is_read_time_saved(self):
        sel = CompressorSelector(make_inputs())
        # uncompressed: max(100/1000, 100/1000)=0.1 s
        # ratio 2: max(100/2000, 50/1000)=0.05 s → budget 0.05/100
        assert sel.budget_per_file(2.0) == pytest.approx(0.0005)

    def test_parallelism_scales_budget(self):
        s1 = CompressorSelector(make_inputs(parallelism=1))
        s4 = CompressorSelector(make_inputs(parallelism=4))
        assert s4.budget_per_file(2.0) == pytest.approx(
            4 * s1.budget_per_file(2.0)
        )

    def test_async_budget_is_iteration_slack(self):
        sel = CompressorSelector(make_inputs(io_mode="async", t_iter=1.0))
        # T_read compressed at ratio 2 = 0.05 s → slack 0.95 s over 100
        assert sel.budget_per_file(2.0) == pytest.approx(0.0095)

    def test_async_budget_bigger_than_sync(self):
        """Equation 2's condition is weaker than Equation 1's whenever
        T_iter exceeds the baseline read time."""
        sync = CompressorSelector(make_inputs(io_mode="sync"))
        async_ = CompressorSelector(make_inputs(io_mode="async"))
        assert async_.budget_per_file(2.0) > sync.budget_per_file(2.0)

    def test_higher_ratio_more_budget_when_bandwidth_bound(self):
        inputs = make_inputs(
            perf_compressed=IoPerformance(tpt_read=1_000_000, bdw_read=500 * MB)
        )
        sel = CompressorSelector(inputs)
        assert sel.budget_per_file(4.0) > sel.budget_per_file(1.5)

    def test_bad_ratio_rejected(self):
        sel = CompressorSelector(make_inputs())
        with pytest.raises(SelectionError):
            sel.read_time_compressed(0.9)


class TestSelection:
    def mk(self, name, ratio, cost):
        return CompressorCandidate(name, ratio=ratio, decompress_cost=cost)

    def test_highest_ratio_among_qualifiers(self):
        sel = CompressorSelector(make_inputs(parallelism=4))
        result = sel.select(
            [
                self.mk("fast-low", 1.5, 1e-6),
                self.mk("good", 2.5, 1e-6),
                self.mk("slow-high", 4.0, 1.0),  # blows the budget
            ]
        )
        assert result.selected.name == "good"
        assert {v.candidate.name for v in result.verdicts if v.accepted} == {
            "fast-low",
            "good",
        }

    def test_capacity_constraint_filters(self):
        sel = CompressorSelector(make_inputs(required_ratio=2.0, parallelism=4))
        result = sel.select(
            [self.mk("thin", 1.5, 1e-6), self.mk("fat", 2.5, 1e-6)]
        )
        assert result.selected.name == "fat"
        thin = next(v for v in result.verdicts if v.candidate.name == "thin")
        assert thin.meets_performance and not thin.meets_capacity

    def test_tie_breaks_on_cheaper_decompression(self):
        sel = CompressorSelector(make_inputs(parallelism=4))
        result = sel.select(
            [self.mk("a", 2.0, 2e-6), self.mk("b", 2.0, 1e-6)]
        )
        assert result.selected.name == "b"

    def test_fallback_when_nothing_qualifies(self):
        """§VII-E3 shape: the fast candidate buys no capacity, the
        capacity-buying one blows the budget — fallback picks the
        latter (never the trivial-ratio one)."""
        sel = CompressorSelector(make_inputs(required_ratio=1.5))
        result = sel.select(
            [self.mk("trivial", 1.1, 1e-9), self.mk("usable", 2.0, 0.5)]
        )
        assert result.selected is None
        assert result.fallback.name == "usable"
        assert result.choice.name == "usable"

    def test_no_fallback_below_threshold(self):
        sel = CompressorSelector(make_inputs())
        result = sel.select([self.mk("trivial", 1.1, 0.5)])
        assert result.selected is None and result.fallback is None
        assert result.choice is None

    def test_empty_candidates_raise(self):
        with pytest.raises(SelectionError):
            CompressorSelector(make_inputs()).select([])


class TestPerformancePrediction:
    def test_baseline_is_t_iter(self):
        sel = CompressorSelector(make_inputs())
        assert sel.predicted_iteration_time(None) == 1.0
        assert sel.performance_fraction(None) == 1.0

    def test_sync_swap_read_terms(self):
        sel = CompressorSelector(make_inputs())
        cand = CompressorCandidate("c", ratio=2.0, decompress_cost=0.001)
        # t_iter - 0.1 + 0.05 + 100*0.001 = 1.05
        assert sel.predicted_iteration_time(cand) == pytest.approx(1.05)
        assert sel.performance_fraction(cand) == pytest.approx(1 / 1.05)

    def test_async_hides_io_under_compute(self):
        sel = CompressorSelector(make_inputs(io_mode="async"))
        cheap = CompressorCandidate("c", ratio=2.0, decompress_cost=1e-6)
        assert sel.predicted_iteration_time(cheap) == pytest.approx(1.0)

    def test_async_surfaces_excess(self):
        sel = CompressorSelector(make_inputs(io_mode="async"))
        heavy = CompressorCandidate("h", ratio=2.0, decompress_cost=0.02)
        assert sel.predicted_iteration_time(heavy) == pytest.approx(
            0.05 + 2.0
        )

    def test_explicit_parallelism_override(self):
        sel = CompressorSelector(make_inputs(parallelism=4))
        cand = CompressorCandidate("c", ratio=2.0, decompress_cost=0.004)
        four = sel.predicted_iteration_time(cand)
        one = sel.predicted_iteration_time(cand, decompress_parallelism=1)
        assert one > four
