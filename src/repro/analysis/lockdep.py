"""Runtime lock-order witness, in the spirit of the kernel's lockdep.

While installed, :class:`LockdepWitness` replaces the
``threading.Lock``/``threading.RLock`` factories with proxies that
record, per thread, the stack of locks currently held and — whenever a
lock is acquired with others held — *acquired-while-held* edges between
lock **classes**. A lock's class is its allocation site (``file:line``
of the factory call), so the many per-instance locks of one shape (each
daemon's ``_reply_lock``, say) collapse into one graph node, and an
inversion between two ranks' instances is still a cycle.

Each first-seen edge stores a witness stack. When a new edge closes a
directed cycle, the cycle is recorded with both directions' stacks —
the two code paths that can deadlock — and the suite (via
:mod:`repro.analysis.pytest_plugin`) fails with the report. Detection
is edge-based: the ABBA pattern is caught even when the runs never
actually interleave, which is the point — the witness turns the 3-rank
chaos/membership drills into race drills without needing the race to
fire.

The witness's own bookkeeping uses the raw ``_thread`` primitive so it
is immune to its own patching. RLock proxies implement the private
Condition protocol (``_is_owned``/``_acquire_restore``/
``_release_save``) by delegation, with held-stack bookkeeping folded
in; Lock proxies deliberately do not, so ``threading.Condition`` takes
its documented fallback path for non-reentrant locks.
"""

from __future__ import annotations

import _thread
import threading
import traceback
from dataclasses import dataclass, field

_STACK_LIMIT = 16
#: frames inside this module, skipped when attributing sites/stacks
_SELF_FILE = __file__


def _call_site() -> str:
    """file:line of the nearest frame outside this module."""
    for frame in reversed(traceback.extract_stack(limit=24)):
        if frame.filename != _SELF_FILE:
            parts = frame.filename.replace("\\", "/").split("/")
            return f"{'/'.join(parts[-3:])}:{frame.lineno}"
    return "<unknown>:0"


def _witness_stack() -> tuple[str, ...]:
    out = []
    for frame in traceback.extract_stack(limit=_STACK_LIMIT):
        if frame.filename == _SELF_FILE:
            continue
        out.append(f"{frame.filename}:{frame.lineno} in {frame.name}")
    return tuple(out)


@dataclass(frozen=True)
class Edge:
    """First observation of ``dst`` acquired while ``src`` was held."""

    src: str
    dst: str
    thread: str
    stack: tuple[str, ...]


@dataclass(frozen=True)
class Cycle:
    """A directed cycle of lock classes, with one witness per edge."""

    chain: tuple[str, ...]  # lock classes, cycle order
    edges: tuple[Edge, ...]

    def render(self) -> str:
        lines = [
            "lock-order cycle: " + " -> ".join(self.chain + (self.chain[0],))
        ]
        for e in self.edges:
            lines.append(f"  {e.dst} acquired while holding {e.src} "
                         f"[thread {e.thread}]:")
            for frame in e.stack[-6:]:
                lines.append(f"    {frame}")
        return "\n".join(lines)


@dataclass
class _TLS(threading.local):
    held: list[str] = field(default_factory=list)


class LockdepWitness:
    """Install with :meth:`install`, read :attr:`cycles` at teardown."""

    def __init__(self) -> None:
        self._mutex = _thread.allocate_lock()
        self._tls = _TLS()
        self.edges: dict[tuple[str, str], Edge] = {}
        self.cycles: list[Cycle] = []
        self._installed = False
        self._orig_lock = None
        self._orig_rlock = None
        self._prev_current: "LockdepWitness | None" = None

    # -- patching ---------------------------------------------------------

    def install(self) -> None:
        global _current
        if self._installed:
            return
        self._orig_lock = threading.Lock
        self._orig_rlock = threading.RLock
        witness = self

        def make_lock():  # noqa: ANN202 - factory signature mirrors threading
            return _LockProxy(_thread.allocate_lock(), _call_site(), witness)

        def make_rlock():
            return _RLockProxy(witness._orig_rlock(), _call_site(), witness)

        threading.Lock = make_lock  # type: ignore[assignment]
        threading.RLock = make_rlock  # type: ignore[assignment]
        self._installed = True
        self._prev_current = _current
        _current = self

    def uninstall(self) -> None:
        global _current
        if not self._installed:
            return
        threading.Lock = self._orig_lock  # type: ignore[assignment]
        threading.RLock = self._orig_rlock  # type: ignore[assignment]
        self._installed = False
        if _current is self:
            _current = self._prev_current
        self._prev_current = None

    def __enter__(self) -> "LockdepWitness":
        self.install()
        return self

    def __exit__(self, *exc) -> None:
        self.uninstall()

    # -- bookkeeping (called from proxies) --------------------------------

    def note_acquired(self, site: str, count: int = 1) -> None:
        held = self._tls.held
        if held and site not in held:
            self._record_edges(tuple(held), site)
        held.extend([site] * count)

    def note_released(self, site: str) -> None:
        held = self._tls.held
        for i in range(len(held) - 1, -1, -1):
            if held[i] == site:
                del held[i]
                return

    def note_released_all(self, site: str) -> int:
        """Remove every occurrence (Condition.wait path); returns the
        count so ``_acquire_restore`` can put them back."""
        held = self._tls.held
        count = held.count(site)
        if count:
            self._tls.held = [s for s in held if s != site]
        return count

    def _record_edges(self, held: tuple[str, ...], new: str) -> None:
        for src in dict.fromkeys(held):  # distinct, order-preserving
            if src == new or (src, new) in self.edges:
                continue
            with self._mutex:
                if (src, new) in self.edges:
                    continue
                edge = Edge(
                    src=src,
                    dst=new,
                    thread=threading.current_thread().name,
                    stack=_witness_stack(),
                )
                self.edges[(src, new)] = edge
                cycle = self._find_cycle(new, src)
                if cycle is not None:
                    self.cycles.append(cycle)

    def _find_cycle(self, start: str, target: str) -> Cycle | None:
        """DFS for a path start → target in the edge graph; with the
        just-added target → start edge that path is a cycle."""
        graph: dict[str, list[str]] = {}
        for a, b in self.edges:
            graph.setdefault(a, []).append(b)
        stack: list[tuple[str, list[str]]] = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            for nxt in graph.get(node, ()):
                if nxt == target:
                    chain = [target] + path
                    edges = []
                    for i, src in enumerate(chain):
                        dst = chain[(i + 1) % len(chain)]
                        edges.append(self.edges[(src, dst)])
                    return Cycle(chain=tuple(chain), edges=tuple(edges))
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None

    # -- reporting --------------------------------------------------------

    def report(self) -> str:
        if not self.cycles:
            return (
                f"lockdep: no lock-order cycles "
                f"({len(self.edges)} edge(s) observed)"
            )
        parts = [f"lockdep: {len(self.cycles)} lock-order cycle(s) detected"]
        parts.extend(c.render() for c in self.cycles)
        return "\n".join(parts)


class _LockProxy:
    """Wraps a raw ``_thread`` lock; no Condition protocol on purpose
    (Condition's non-reentrant fallback uses plain acquire/release)."""

    def __init__(self, inner, site: str, witness: LockdepWitness) -> None:
        self._inner = inner
        self._site = site
        self._witness = witness

    def acquire(self, blocking: bool = True, timeout: float = -1):
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._witness.note_acquired(self._site)
        return got

    def release(self) -> None:
        self._inner.release()
        self._witness.note_released(self._site)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<lockdep Lock {self._site} wrapping {self._inner!r}>"

    def __getattr__(self, name):
        # _at_fork_reinit and friends pass straight through
        return getattr(self._inner, name)


class _RLockProxy:
    """Wraps a real RLock and speaks Condition's private protocol."""

    def __init__(self, inner, site: str, witness: LockdepWitness) -> None:
        self._inner = inner
        self._site = site
        self._witness = witness

    def acquire(self, blocking: bool = True, timeout: float = -1):
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._witness.note_acquired(self._site)
        return got

    def release(self) -> None:
        self._inner.release()
        self._witness.note_released(self._site)

    def locked(self) -> bool:
        locked = getattr(self._inner, "locked", None)
        return locked() if locked is not None else self._inner._is_owned()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    # Condition protocol -------------------------------------------------

    def _is_owned(self) -> bool:
        return self._inner._is_owned()

    def _release_save(self):
        count = self._witness.note_released_all(self._site)
        return self._inner._release_save(), count

    def _acquire_restore(self, saved) -> None:
        state, count = saved
        self._inner._acquire_restore(state)
        self._witness.note_acquired(self._site, count=max(count, 1))

    def __repr__(self) -> str:
        return f"<lockdep RLock {self._site} wrapping {self._inner!r}>"

    def __getattr__(self, name):
        return getattr(self._inner, name)


_current: LockdepWitness | None = None


def current_witness() -> LockdepWitness | None:
    """The installed witness, if any (set by :meth:`LockdepWitness.install`)."""
    return _current
