"""Tail latency under a gray failure — what hedged reads buy.

The same 3-rank store reads its full namespace under four regimes:
{healthy, one slow rank} × {hedging off, hedging on}. The slow rank
(rank 2) delays every data-plane reply by ``SLOW_S`` — it is alive,
answers correctly, and never trips the membership detector, so without
hedging every one of rank 1's remote reads eats the full delay.
Latencies are collected on the healthy ranks only (the slow rank's own
reads are not the phenomenon under test); breaker thresholds are set
out of reach so hedging is the *only* mechanism in play.

Besides the usual ``benchmarks/_results`` report, the run writes a
repo-root ``BENCH_tail_latency.json`` — the start of the committed
perf-trajectory record ROADMAP calls for — with p50/p99/p999 per
regime plus the two gates: hedging must cut the slow-regime p99 by
≥2x, and must cost ≤5% extra requests when everything is healthy.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.bench.report import PaperComparison
from repro.comm.chaos import ChaosWorld, FaultPlan
from repro.comm.launcher import run_parallel
from repro.datasets.synthetic import generate_dataset
from repro.fanstore.daemon import _REPLY_TAG_BASE, DaemonConfig
from repro.fanstore.prepare import prepare_dataset
from repro.fanstore.store import FanStore, FanStoreOptions

RANKS = 3
SLOW = 2
SLOW_S = 0.1  # every data-plane reply from SLOW arrives this late
SEED = 6

#: identical budgets for every regime; only ``hedge_reads`` varies.
#: breaker_slow_threshold is out of reach so the breaker never opens
#: and hedging is the only tail-tolerance mechanism being measured.
BASE = dict(
    extra_partition_budget=1,
    request_timeout=0.5,
    max_retries=1,
    retry_backoff_base=0.01,
    retry_backoff_max=0.05,
    retry_jitter=0.0,
    hedge_after_s=0.02,
    breaker_slow_threshold=1000,
)

JSON_OUT = Path(__file__).parents[1] / "BENCH_tail_latency.json"


@pytest.fixture(scope="module")
def tail_dataset(tmp_path_factory):
    raw = tmp_path_factory.mktemp("tail-raw")
    generate_dataset("em", raw, num_files=30, avg_file_size=8_000,
                     num_dirs=3, seed=SEED)
    return prepare_dataset(
        raw, tmp_path_factory.mktemp("tail-packed"),
        num_partitions=RANKS, compressor="zlib-1", threads=2,
    )


def _pct(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[int(q * (len(ordered) - 1))]


def _run_regime(prepared, *, slow: bool, hedge: bool):
    """Full-namespace read pass; returns per-healthy-rank timings and
    the request counters the overhead gate needs."""
    plan = FaultPlan(SEED)
    if slow:
        plan.slow_rank(SLOW, SLOW_S, min_tag=_REPLY_TAG_BASE)
    world = ChaosWorld(RANKS, plan)
    config = DaemonConfig(hedge_reads=hedge, **BASE)

    def body(comm):
        opts = FanStoreOptions(comm=comm, config=config)
        with FanStore(prepared, opts) as fs:
            comm.barrier()  # everyone loaded: time only the read pass
            timings: list[float] = []
            for rec in fs.daemon.metadata.walk_files():
                t0 = time.perf_counter()
                fs.client.read_file(rec.path)
                timings.append(time.perf_counter() - t0)
            comm.barrier()
            s = fs.daemon.stats
            return {
                "timings": [] if comm.rank == SLOW else timings,
                "remote_fetches": s.remote_fetches,
                "hedged_reads": s.hedged_reads,
                "hedge_wins": s.hedge_wins,
            }

    results = run_parallel(body, RANKS, world=world, timeout=120)
    samples = [t for r in results for t in r["timings"]]
    return {
        "reads": len(samples),
        "p50_s": _pct(samples, 0.50),
        "p99_s": _pct(samples, 0.99),
        "p999_s": _pct(samples, 0.999),
        "remote_fetches": sum(r["remote_fetches"] for r in results),
        "hedged_reads": sum(r["hedged_reads"] for r in results),
        "hedge_wins": sum(r["hedge_wins"] for r in results),
    }


def test_tail_latency_hedging(benchmark, tail_dataset, emit_report):
    regimes = [
        ("healthy, unhedged", dict(slow=False, hedge=False)),
        ("healthy, hedged", dict(slow=False, hedge=True)),
        ("1 slow rank, unhedged", dict(slow=True, hedge=False)),
        ("1 slow rank, hedged", dict(slow=True, hedge=True)),
    ]

    def run_all():
        return {
            name: _run_regime(tail_dataset, **kw) for name, kw in regimes
        }

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    report = PaperComparison(
        "Tail latency under gray failure (hedged reads)",
        "full-namespace read on 3 ranks; latencies from healthy ranks",
        columns=["regime", "p50 ms", "p99 ms", "p999 ms",
                 "hedges", "hedge wins"],
    )
    for name, r in rows.items():
        report.add_row(
            name,
            round(r["p50_s"] * 1e3, 2),
            round(r["p99_s"] * 1e3, 2),
            round(r["p999_s"] * 1e3, 2),
            r["hedged_reads"],
            r["hedge_wins"],
        )

    p99_ratio = (rows["1 slow rank, unhedged"]["p99_s"]
                 / rows["1 slow rank, hedged"]["p99_s"])
    healthy = rows["healthy, hedged"]
    overhead = (healthy["hedged_reads"] / healthy["remote_fetches"]
                if healthy["remote_fetches"] else 0.0)
    report.add_note(f"slow-regime p99 improvement {p99_ratio:.1f}x "
                    f"(gate: >=2x); healthy hedge overhead "
                    f"{overhead:.1%} extra requests (gate: <=5%)")
    emit_report(report)

    JSON_OUT.write_text(json.dumps({
        "bench": "tail_latency",
        "ranks": RANKS,
        "slow_rank_delay_s": SLOW_S,
        "hedge_after_s": BASE["hedge_after_s"],
        "regimes": rows,
        "p99_improvement_slow": round(p99_ratio, 2),
        "hedge_request_overhead_healthy": round(overhead, 4),
    }, indent=2) + "\n")

    # the acceptance gates: hedging pays under the fault and is ~free
    # without one
    assert p99_ratio >= 2.0, rows
    assert overhead <= 0.05, rows
    # and the slow regime's wins prove the hedge leg did the work
    assert rows["1 slow rank, hedged"]["hedge_wins"] >= 1
