"""Byte-size and rate units and human-readable formatting.

The paper mixes decimal (MB/s bandwidth figures) and binary (file sizes
like 512 KB test files) conventions; we expose both and are explicit at
every use site.
"""

from __future__ import annotations

import re

# Decimal units (used for bandwidth: MB/s in the paper's tables).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

# Binary units (used for file and buffer sizes).
KIB = 1 << 10
MIB = 1 << 20
GIB = 1 << 30
TIB = 1 << 40

_SIZE_RE = re.compile(
    r"^\s*(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>[KMGT]?i?B?)\s*$", re.IGNORECASE
)

_UNIT_FACTORS = {
    "": 1,
    "B": 1,
    "KB": KB,
    "MB": MB,
    "GB": GB,
    "TB": TB,
    "KIB": KIB,
    "MIB": MIB,
    "GIB": GIB,
    "TIB": TIB,
    "K": KB,
    "M": MB,
    "G": GB,
    "T": TB,
}


def parse_size(text: str | int | float) -> int:
    """Parse a human size string like ``"512 KiB"`` or ``"1.5GB"`` to bytes.

    Integers and floats pass through (rounded to int). Unit letters are
    case-insensitive; a trailing ``iB`` selects binary multiples.

    >>> parse_size("512 KiB")
    524288
    >>> parse_size("2MB")
    2000000
    """
    if isinstance(text, (int, float)):
        return int(text)
    m = _SIZE_RE.match(text)
    if not m:
        raise ValueError(f"unparseable size: {text!r}")
    unit = m.group("unit").upper()
    try:
        factor = _UNIT_FACTORS[unit]
    except KeyError:
        raise ValueError(f"unknown unit in size: {text!r}") from None
    return int(float(m.group("num")) * factor)


def format_bytes(n: int | float, *, binary: bool = True) -> str:
    """Render a byte count with an appropriate unit suffix.

    >>> format_bytes(524288)
    '512.0 KiB'
    >>> format_bytes(2_000_000, binary=False)
    '2.0 MB'
    """
    step = 1024.0 if binary else 1000.0
    suffixes = (
        ["B", "KiB", "MiB", "GiB", "TiB", "PiB"]
        if binary
        else ["B", "KB", "MB", "GB", "TB", "PB"]
    )
    value = float(n)
    for suffix in suffixes:
        if abs(value) < step or suffix == suffixes[-1]:
            if suffix == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {suffix}"
        value /= step
    raise AssertionError("unreachable")


def format_rate(bytes_per_second: float) -> str:
    """Render a bandwidth in decimal units, matching the paper's MB/s.

    >>> format_rate(4_969_000_000 / 1000)
    '5.0 MB/s'
    """
    return f"{format_bytes(bytes_per_second, binary=False)}/s"


def format_seconds(seconds: float) -> str:
    """Render a duration with µs/ms/s scaling.

    >>> format_seconds(0.000852)
    '852.0 µs'
    """
    if seconds < 0:
        return f"-{format_seconds(-seconds)}"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60.0:.1f} min"
