"""The SPMD launcher: results, failure aggregation, unblocking."""

from __future__ import annotations

import pytest

from repro.comm.launcher import ParallelFailure, run_parallel
from repro.errors import CommError


def test_results_ordered_by_rank():
    assert run_parallel(lambda c: c.rank * 2, 4, timeout=10) == [0, 2, 4, 6]


def test_extra_args_forwarded():
    assert run_parallel(lambda c, a, b: (c.rank, a + b), 2, 3, 4,
                        timeout=10) == [(0, 7), (1, 7)]


def test_single_failure_propagates_and_unblocks_peers():
    """Rank 1 raises while rank 0 is blocked in recv; the launcher must
    close the world so rank 0 unwinds instead of hanging."""

    def body(comm):
        if comm.rank == 1:
            raise RuntimeError("boom")
        comm.recv(source=1, timeout=30)  # would hang without close()

    with pytest.raises(ParallelFailure) as exc_info:
        run_parallel(body, 2, timeout=10)
    assert isinstance(exc_info.value.errors[1], RuntimeError)


def test_multiple_failures_aggregated():
    def body(comm):
        raise ValueError(f"rank {comm.rank}")

    with pytest.raises(ParallelFailure) as exc_info:
        run_parallel(body, 3, timeout=10)
    assert set(exc_info.value.errors) == {0, 1, 2}


def test_wrong_world_size_rejected():
    from repro.comm.communicator import World

    with pytest.raises(CommError):
        run_parallel(lambda c: None, 3, world=World(2))


def test_supplied_world_is_used():
    from repro.comm.communicator import World

    world = World(2)
    results = run_parallel(lambda c: c.size, 2, world=world, timeout=10)
    assert results == [2, 2]
