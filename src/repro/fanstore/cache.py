"""The decompressed-file cache (§IV-C3, Figures 2–4).

FanStore decompresses a file on ``open()`` into a shared cache region
and serves ``read()`` from it. Because DL training touches every file
with equal probability each epoch, retention buys little; the paper's
policy is therefore *minimum RAM*: a FIFO variant where an entry is
pinned while any I/O thread has the file open (a per-entry reference
count incremented on open, decremented on close) and released once its
count returns to zero.

This module implements that policy exactly (``retain_unpinned=False``),
plus a capacity-bounded retention mode (``retain_unpinned=True``) used
by the cache-policy ablation benchmark: entries whose count hits zero
stay cached FIFO-ordered until capacity pressure evicts them, and a
reopened file becomes a cache hit.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.errors import FanStoreError
from repro.fanstore.pipeline import SingleFlight


@dataclass
class CacheStats:
    """Counters for the ablation benchmarks."""

    opens: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    rejected: int = 0  # entries larger than the whole cache
    quarantined: int = 0  # entries discarded after integrity failures
    singleflight_leaders: int = 0  # get_or_compute misses that ran the factory
    singleflight_followers: int = 0  # concurrent misses that shared a flight

    @property
    def hit_rate(self) -> float:
        return self.hits / self.opens if self.opens else 0.0


@dataclass
class _Entry:
    data: bytes
    refcount: int = 0
    doomed: bool = False  # quarantined while pinned; never served again


class DecompressedCache:
    """Reference-counted FIFO cache of decompressed file bytes.

    ``capacity_bytes`` bounds resident bytes. Pinned entries (refcount
    > 0) are never evicted; if an insert cannot fit even after evicting
    everything unpinned, the insert still succeeds but is flagged in the
    stats (the shared-memory pool would grow — the paper sizes the pool
    for the largest working set).
    """

    def __init__(
        self, capacity_bytes: int = 1 << 30, *, retain_unpinned: bool = False
    ) -> None:
        if capacity_bytes <= 0:
            raise FanStoreError("cache capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.retain_unpinned = retain_unpinned
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._resident = 0
        self.stats = CacheStats()
        self._flight = SingleFlight()

    # -- core protocol ----------------------------------------------------

    def open(self, path: str) -> bytes | None:
        """Pin and return the cached bytes, or None on a miss.

        Mirrors Figure 2's fast path: a second thread opening the same
        file while the first still has it open shares the entry.
        """
        with self._lock:
            self.stats.opens += 1
            entry = self._entries.get(path)
            if entry is None or entry.doomed:
                # a doomed entry's bytes came from data that later
                # failed verification: force a re-fetch + re-verify
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            entry.refcount += 1
            return entry.data

    def insert(self, path: str, data: bytes) -> bytes:
        """Install decompressed bytes for an open miss; pins the entry.

        If another thread raced the decompression and inserted first,
        its copy wins and is returned (both threads then share it).
        """
        with self._lock:
            entry = self._entries.get(path)
            if entry is not None:
                if entry.doomed:
                    # replace the quarantined bytes in place: readers
                    # already holding the old object keep their (bad)
                    # reference, but the path serves only fresh,
                    # re-verified bytes from here on — and refcounts
                    # stay consistent for every outstanding close().
                    # The old bytes leave residency here, so this counts
                    # as an eviction; without it, quarantine-then-reload
                    # traffic undercounts evictions and the hit-ratio
                    # accounting drifts.
                    self.stats.evictions += 1
                    self._resident += len(data) - len(entry.data)
                    entry.data = data
                    entry.doomed = False
                entry.refcount += 1
                return entry.data
            self._make_room(len(data))
            self._entries[path] = _Entry(data=data, refcount=1)
            self._resident += len(data)
            if len(data) > self.capacity_bytes:
                self.stats.rejected += 1
            return data

    def get_or_compute(
        self, path: str, factory: Callable[[], bytes]
    ) -> bytes:
        """Pinned bytes for ``path``, computing on a miss — at most one
        ``factory()`` execution per miss storm.

        A plain ``open() → factory() → insert()`` sequence lets N
        threads missing the same key decompress N times (the raced
        :meth:`insert` keeps one copy, but the CPU is already burned).
        Here the first misser becomes the single-flight leader — it runs
        ``factory`` and installs the result (taking its pin from
        :meth:`insert`) — and every concurrent misser waits for that
        flight, then pins the installed entry for itself. A leader
        failure propagates to that round's followers; the next caller
        starts a fresh flight. Always returns pinned bytes; pair with
        :meth:`close`.
        """
        data = self.open(path)
        if data is not None:
            return data
        while True:
            def _lead() -> bytes:
                return self.insert(path, factory())

            value, led = self._flight.run(path, _lead)
            if led:
                self.stats.singleflight_leaders += 1
                return value
            self.stats.singleflight_followers += 1
            # the leader's pin is its own: take ours. The entry can have
            # been evicted between the leader's insert and this open
            # (leader closed it already, retention off) — rare; loop and
            # become the next leader.
            data = self.open(path)
            if data is not None:
                return data

    def close(self, path: str) -> None:
        """Unpin; with the paper's policy a zero count frees the entry
        immediately (Figure 4)."""
        with self._lock:
            entry = self._entries.get(path)
            if entry is None or entry.refcount <= 0:
                raise FanStoreError(f"close of non-open cache entry {path!r}")
            entry.refcount -= 1
            if entry.refcount == 0 and (entry.doomed or not self.retain_unpinned):
                self._evict(path)

    def discard(self, path: str) -> bool:
        """Quarantine a path whose source bytes failed verification:
        an unpinned entry is evicted immediately; a pinned one is
        doomed — never served to a new open, freed at its last close.
        Returns True if an entry was present."""
        with self._lock:
            entry = self._entries.get(path)
            if entry is None:
                return False
            self.stats.quarantined += 1
            if entry.refcount == 0:
                self._evict(path)
            else:
                entry.doomed = True
            return True

    # -- internals ----------------------------------------------------------

    def _evict(self, path: str) -> None:
        entry = self._entries.pop(path)
        self._resident -= len(entry.data)
        self.stats.evictions += 1

    def _make_room(self, incoming: int) -> None:
        if self._resident + incoming <= self.capacity_bytes:
            return
        # FIFO order, skipping pinned entries (the paper's exception).
        for path in list(self._entries):
            if self._resident + incoming <= self.capacity_bytes:
                break
            if self._entries[path].refcount == 0:
                self._evict(path)

    # -- observability ------------------------------------------------------

    def bind_metrics(self, metrics) -> None:
        """Register this cache's live counters with a
        :class:`repro.obs.metrics.MetricsRegistry` as ``cache.*``.

        The registry reads *through* to :class:`CacheStats` — the
        dataclass fields stay the storage, so the hot path keeps its
        plain ``+=`` and snapshots still see every update.
        """
        for name in (
            "opens", "hits", "misses", "evictions", "rejected", "quarantined"
        ):
            metrics.bind_counter(f"cache.{name}", self.stats, name)
        metrics.bind_counter(
            "cache.singleflight.leaders", self.stats, "singleflight_leaders"
        )
        metrics.bind_counter(
            "cache.singleflight.followers", self.stats,
            "singleflight_followers",
        )
        metrics.bind_gauge("cache.hit_ratio", fn=lambda: self.stats.hit_rate)
        metrics.bind_gauge("cache.resident_bytes", fn=lambda: self._resident)

    # -- introspection ------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return self._resident

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, path: str) -> bool:
        with self._lock:
            return path in self._entries

    def refcount(self, path: str) -> int:
        with self._lock:
            entry = self._entries.get(path)
            return entry.refcount if entry else 0
