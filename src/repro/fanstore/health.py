"""Per-peer health scoring, circuit breakers, and admission queueing.

The membership layer (:mod:`repro.fanstore.membership`) handles ranks
that *die* — heartbeats stop, the detector convicts, routing heals. A
*gray* failure is worse precisely because none of that fires: a rank
mid-GC-pause or behind a saturated NIC keeps heartbeating while every
fetch it serves limps at the tail. This module gives the daemon the
three mechanisms that close the gap:

- :class:`CircuitBreaker` — the classic closed → open → half-open
  machine, tripped by consecutive hard failures (timeouts, overload
  sheds) *or* consecutive slow signals (latency above threshold, hedges
  that fired), so the failover ladder routes around a merely-slow rank
  long before the detector would mark it SUSPECT;
- :class:`HealthTracker` — one breaker plus a latency EWMA and a
  bounded sample window per peer, thread-safe, reconciled against the
  membership view by the daemon (a DEAD conviction force-opens, a
  rejoin half-opens so the first fetch is a probe);
- :class:`AdmissionQueue` — the daemon's bounded request queue.
  Overflow sheds the entry closest to (or past) its deadline first: a
  request about to expire is the one least worth serving, and its
  requester is the one already walking away.

Everything takes an injectable monotonic clock so the unit tests step
time by hand instead of sleeping.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import deque
from typing import Any, Callable

Clock = Callable[[], float]


class BreakerState(enum.Enum):
    """Where a peer's breaker is in the closed → open → half-open
    cycle."""

    CLOSED = "closed"  # healthy: requests flow
    OPEN = "open"  # tripped: skip this peer, go straight to failover
    HALF_OPEN = "half_open"  # cooling off: let probes through


class CircuitBreaker:
    """One peer's breaker. Not thread-safe on its own —
    :class:`HealthTracker` serializes access; direct use is for unit
    tests."""

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        slow_threshold: int = 3,
        reset_after: float = 1.0,
        clock: Clock = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if slow_threshold < 1:
            raise ValueError(
                f"slow_threshold must be >= 1, got {slow_threshold}"
            )
        if reset_after < 0:
            raise ValueError(f"reset_after must be >= 0, got {reset_after}")
        self.failure_threshold = failure_threshold
        self.slow_threshold = slow_threshold
        self.reset_after = reset_after
        self._clock = clock
        self._state = BreakerState.CLOSED
        self._failures = 0
        self._slow = 0
        self._opened_at = 0.0
        self.opens = 0  # transitions into OPEN (for the metrics)
        self.probes = 0  # half-open requests let through

    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self._clock()
        self._failures = 0
        self._slow = 0
        self.opens += 1

    @property
    def state(self) -> BreakerState:
        """Current state; an OPEN breaker whose cool-off elapsed reads
        as HALF_OPEN (the transition is time-driven, not event-driven)."""
        if (
            self._state is BreakerState.OPEN
            and self._clock() - self._opened_at >= self.reset_after
        ):
            self._state = BreakerState.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May a request go to this peer right now? A half-open breaker
        says yes and counts the request as a probe."""
        state = self.state
        if state is BreakerState.OPEN:
            return False
        if state is BreakerState.HALF_OPEN:
            self.probes += 1
        return True

    def record_success(self) -> None:
        """A completed, timely exchange: closes a half-open breaker
        (the probe passed) and clears the strike counters."""
        self._failures = 0
        self._slow = 0
        self._state = BreakerState.CLOSED

    def record_failure(self) -> None:
        """A hard failure (timeout, overload shed). A failed half-open
        probe re-trips immediately; closed accumulates strikes."""
        if self.state is not BreakerState.CLOSED:
            self._trip()
            return
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._trip()

    def record_slow(self) -> None:
        """A soft failure: the peer answered, but late (above the
        latency threshold, or only after a hedge fired). Enough
        consecutive ones trip the breaker — this is the gray-failure
        path, where nothing ever *fails*."""
        if self.state is not BreakerState.CLOSED:
            self._trip()
            return
        self._slow += 1
        if self._slow >= self.slow_threshold:
            self._trip()

    def force_open(self) -> None:
        """External conviction (membership DEAD verdict): open
        unconditionally. Idempotent — an already-open breaker just has
        its cool-off restarted."""
        already_open = self._state is BreakerState.OPEN
        self._trip()
        if already_open:
            self.opens -= 1  # restarted, not a new transition

    def half_open(self) -> None:
        """External good news (membership re-admission): skip the rest
        of the cool-off so the next request probes immediately."""
        if self._state is BreakerState.OPEN:
            self._state = BreakerState.HALF_OPEN


class HealthTracker:
    """Latency statistics plus one :class:`CircuitBreaker` per peer.

    All signal sinks (:meth:`observe`, :meth:`failure`,
    :meth:`note_slow`) and the routing gate (:meth:`allow`) are
    thread-safe; the internal lock is a leaf — nothing blocking runs
    under it. ``on_open`` / ``on_probe`` callbacks (if set) fire under
    the lock and must stay trivial (the daemon binds them to counter
    increments).
    """

    def __init__(
        self,
        rank: int = 0,
        *,
        failure_threshold: int = 3,
        slow_threshold: int = 3,
        reset_after: float = 1.0,
        latency_threshold: float | None = None,
        ewma_alpha: float = 0.2,
        window: int = 128,
        clock: Clock = time.monotonic,
    ) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha {ewma_alpha} outside (0, 1]")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.rank = rank
        self.latency_threshold = latency_threshold
        self._alpha = ewma_alpha
        self._window = window
        self._clock = clock
        self._mk_breaker = lambda: CircuitBreaker(
            failure_threshold=failure_threshold,
            slow_threshold=slow_threshold,
            reset_after=reset_after,
            clock=clock,
        )
        self._lock = threading.Lock()
        self._breakers: dict[int, CircuitBreaker] = {}
        self._ewma: dict[int, float] = {}
        self._samples: dict[int, deque[float]] = {}
        self.on_open: Callable[[int], None] | None = None
        self.on_probe: Callable[[int], None] | None = None

    def _breaker(self, peer: int) -> CircuitBreaker:
        br = self._breakers.get(peer)
        if br is None:
            br = self._breakers[peer] = self._mk_breaker()
        return br

    def _signal(self, peer: int, record: Callable[[], None]) -> None:
        br = self._breaker(peer)
        opens_before = br.opens
        record()
        if br.opens > opens_before and self.on_open is not None:
            self.on_open(peer)

    # -- signal sinks ------------------------------------------------------

    def observe(self, peer: int, seconds: float) -> None:
        """A completed exchange took ``seconds``. Feeds the EWMA and
        the quantile window; counts as a success — or as a *slow*
        strike when above ``latency_threshold``."""
        with self._lock:
            prev = self._ewma.get(peer)
            self._ewma[peer] = (
                seconds if prev is None
                else prev + self._alpha * (seconds - prev)
            )
            samples = self._samples.get(peer)
            if samples is None:
                samples = self._samples[peer] = deque(maxlen=self._window)
            samples.append(seconds)
            br = self._breaker(peer)
            threshold = self.latency_threshold
            if threshold is not None and seconds > threshold:
                self._signal(peer, br.record_slow)
            else:
                self._signal(peer, br.record_success)

    def failure(self, peer: int) -> None:
        """A hard failure against ``peer`` (timeout, overload shed)."""
        with self._lock:
            self._signal(peer, self._breaker(peer).record_failure)

    def note_slow(self, peer: int) -> None:
        """``peer`` missed the hedge delay — the request was answered
        (or will be) by someone else first."""
        with self._lock:
            self._signal(peer, self._breaker(peer).record_slow)

    # -- routing gates -----------------------------------------------------

    def allow(self, peer: int) -> bool:
        """Routing gate: False means skip ``peer`` (breaker open)."""
        with self._lock:
            br = self._breaker(peer)
            probes_before = br.probes
            allowed = br.allow()
            if br.probes > probes_before and self.on_probe is not None:
                self.on_probe(peer)
            return allowed

    def state(self, peer: int) -> BreakerState:
        """Current breaker state (no probe accounting — use for
        ordering decisions, not admission)."""
        with self._lock:
            return self._breaker(peer).state

    def force_open(self, peer: int) -> None:
        """Membership DEAD verdict: stop routing to ``peer`` at once."""
        with self._lock:
            self._breaker(peer).force_open()

    def half_open(self, peer: int) -> None:
        """Membership re-admission: the next request probes ``peer``."""
        with self._lock:
            self._breaker(peer).half_open()

    # -- statistics --------------------------------------------------------

    def ewma(self, peer: int) -> float | None:
        with self._lock:
            return self._ewma.get(peer)

    def quantile(self, peer: int, q: float, default: float) -> float:
        """The ``q``-quantile of the peer's recent latencies, or
        ``default`` before any samples exist (nearest-rank on the
        bounded window — an estimate, not a full history)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        with self._lock:
            samples = self._samples.get(peer)
            if not samples:
                return default
            ordered = sorted(samples)
            return ordered[int(q * (len(ordered) - 1))]

    def open_peers(self) -> list[int]:
        """Peers currently skipped (state OPEN), for observability."""
        with self._lock:
            return sorted(
                peer for peer, br in self._breakers.items()
                if br.state is BreakerState.OPEN
            )


class AdmissionQueue:
    """The daemon's bounded request queue: FIFO service order,
    oldest-deadline-first shedding on overflow.

    Entries are opaque to the queue; the deadline is passed alongside
    (None = no deadline, shed last and oldest-arrival-first among
    themselves). Single-consumer (the service thread) — no lock."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._seq = 0
        self._items: list[tuple[float, int, Any]] = []  # (deadline, seq, item)

    def __len__(self) -> int:
        return len(self._items)

    def push(self, item: Any, deadline_at: float | None = None) -> list[Any]:
        """Enqueue; returns the entries shed to stay within capacity
        (possibly including ``item`` itself when it carries the nearest
        deadline of a full queue)."""
        self._seq += 1
        key = float("inf") if deadline_at is None else deadline_at
        self._items.append((key, self._seq, item))
        shed: list[Any] = []
        while len(self._items) > self.capacity:
            victim = min(
                range(len(self._items)),
                key=lambda i: (self._items[i][0], self._items[i][1]),
            )
            shed.append(self._items.pop(victim)[2])
        return shed

    def pop(self) -> Any | None:
        """Next entry in arrival order, or None when empty."""
        if not self._items:
            return None
        victim = min(range(len(self._items)), key=lambda i: self._items[i][1])
        return self._items.pop(victim)[2]
