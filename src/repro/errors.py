"""Exception hierarchy for the repro package.

Every subsystem raises errors derived from :class:`ReproError` so callers
can catch package-level failures with one ``except`` clause while still
discriminating by subsystem.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class CompressionError(ReproError):
    """A codec failed to compress or decompress a payload."""


class UnknownCompressorError(CompressionError, KeyError):
    """A compressor name or numeric id was not found in the registry."""


class FormatError(ReproError):
    """A serialized structure (partition, record file) is malformed."""


class FanStoreError(ReproError):
    """Base class for FanStore runtime errors."""


class ManifestError(FanStoreError, FormatError):
    """A dataset manifest is missing, truncated, hand-edited, or fails
    its schema/digest validation."""


class DataIntegrityError(FanStoreError, OSError):
    """Stored bytes failed digest verification and could not be
    repaired from any replica or shared-FS copy (the EIO of the store:
    ``errno`` is set accordingly and ``filename`` names the path)."""

    def __init__(self, path: str, detail: str = "") -> None:
        import errno as _errno

        message = f"{path}: data integrity violation"
        if detail:
            message += f" ({detail})"
        super().__init__(message)
        self.errno = _errno.EIO
        self.filename = path


class FileNotFoundInStoreError(FanStoreError, FileNotFoundError):
    """The requested path does not exist in the FanStore namespace
    (``errno`` is ENOENT, ``filename`` names the path)."""

    def __init__(self, path: str) -> None:
        import errno as _errno

        super().__init__(path)
        self.errno = _errno.ENOENT
        self.filename = path


class WriteViolationError(FanStoreError, PermissionError):
    """The multi-read single-write model was violated (e.g. reopening a
    closed output file for writing, or two writers on one path);
    ``errno`` is EACCES, ``filename`` names the path when known."""

    def __init__(self, detail: str, path: str | None = None) -> None:
        import errno as _errno

        super().__init__(detail)
        self.errno = _errno.EACCES
        self.filename = path


class BadFileDescriptorError(FanStoreError, OSError):
    """Operation on a file descriptor that is not open (``errno`` is
    EBADF; ``filename`` names the path when the fd resolved to one)."""

    def __init__(self, detail: str, path: str | None = None) -> None:
        import errno as _errno

        super().__init__(detail)
        self.errno = _errno.EBADF
        self.filename = path


class InvalidArgumentError(FanStoreError, OSError):
    """A POSIX-surface call was driven with an invalid argument
    (negative pread offset, unknown whence, unsupported mode); the
    EINVAL of the store."""

    def __init__(self, detail: str, path: str | None = None) -> None:
        import errno as _errno

        super().__init__(detail)
        self.errno = _errno.EINVAL
        self.filename = path


class WireFormatError(FanStoreError, FormatError):
    """A daemon wire body (request envelope or reply) is structurally
    malformed — neither a v2 envelope nor a legacy positional tuple. A
    server counts it as a malformed request; it never crashes on one."""


class CapacityError(FanStoreError):
    """A node's burst buffer cannot host the data assigned to it."""


class MembershipError(FanStoreError):
    """The cluster-membership protocol failed: a join or promotion
    handshake got no (or a rejecting) answer, or a view operation was
    driven with inconsistent arguments."""


class CommError(ReproError):
    """Base class for communicator failures."""


class RankError(CommError, ValueError):
    """A rank argument was outside ``[0, size)``."""


class CommClosedError(CommError, RuntimeError):
    """Communication attempted on a torn-down communicator."""


class RankDeadError(CommError, RuntimeError):
    """Communication attempted by (or teardown observed on) a rank that
    the fault-injection layer has declared dead — the in-process analog
    of a node crash mid-job."""


class RetryExhaustedError(CommError, TimeoutError):
    """A request/reply exchange failed every attempt of its bounded
    retry budget (and, for reads, every failover tier). TimeoutError is
    OSError-family, so the POSIX contract applies: ``errno`` is
    ETIMEDOUT and ``filename`` names the subject path when there is
    one."""

    def __init__(self, detail: str, path: str | None = None) -> None:
        import errno as _errno

        super().__init__(detail)
        self.errno = _errno.ETIMEDOUT
        self.filename = path


class DeadlineExpiredError(CommError, TimeoutError):
    """A request's propagated deadline ran out before (or while) the
    exchange completed — the remaining ladder is abandoned rather than
    stacking further timeouts. Deliberately *not* a
    :class:`RetryExhaustedError`: failover arms catch that to descend
    the ladder, and a dead deadline means there is no ladder left to
    descend. ``errno`` is ETIMEDOUT; ``filename`` names the subject
    path when there is one."""

    def __init__(self, detail: str, path: str | None = None) -> None:
        import errno as _errno

        super().__init__(detail)
        self.errno = _errno.ETIMEDOUT
        self.filename = path


class ServerOverloadedError(FanStoreError, OSError):
    """A daemon shed the request from its admission queue instead of
    serving it. The EAGAIN of the store: back off (honouring
    ``retry_after_s``) instead of retry-storming; ``filename`` names
    the subject path when there is one."""

    def __init__(
        self,
        detail: str,
        path: str | None = None,
        *,
        retry_after_s: float = 0.0,
    ) -> None:
        import errno as _errno

        super().__init__(detail)
        self.errno = _errno.EAGAIN
        self.filename = path
        self.retry_after_s = retry_after_s


class StaleEpochError(FanStoreError, OSError):
    """A mutating request carried a fencing token (membership view
    epoch) older than the serving rank's — the sender is acting on a
    pre-partition view of the cluster and must refresh before retrying.
    The ESTALE of the store: ``filename`` names the subject path when
    there is one, and ``server_epoch`` reports the epoch the server
    fenced with."""

    def __init__(
        self,
        detail: str,
        path: str | None = None,
        *,
        server_epoch: int = 0,
    ) -> None:
        import errno as _errno

        super().__init__(detail)
        self.errno = _errno.ESTALE
        self.filename = path
        self.server_epoch = server_epoch


class StorageFullError(FanStoreError, OSError):
    """A write was refused because local storage (or the journal's
    segment budget) is exhausted — refused *early*, before any bytes
    were torn: the store fails the write typed rather than half-apply
    it. The ENOSPC of the store: ``errno`` is set accordingly and
    ``filename`` names the path the write was for."""

    def __init__(self, path: str, detail: str = "") -> None:
        import errno as _errno

        message = f"{path}: storage full"
        if detail:
            message += f" ({detail})"
        super().__init__(message)
        self.errno = _errno.ENOSPC
        self.filename = path


class SelectionError(ReproError):
    """The compressor-selection algorithm received inconsistent inputs."""


class SimulationError(ReproError):
    """The discrete-event model was driven with invalid parameters."""
