"""FanStore reproduction.

A from-scratch Python reproduction of *"Efficient I/O for Neural Network
Training with Compressed Data"* (Zhang, Huang, Pauloski, Foster — IPDPS
2020): a distributed compressed object store ("FanStore") for deep
learning training on supercomputers, plus every substrate the paper
depends on (compressor suite, MPI-like runtime, cluster/storage/network
performance models, DL training pipelines, and the baselines it is
evaluated against).

The top-level package re-exports the handful of entry points a typical
user needs; the subpackages carry the full API:

- :mod:`repro.compressors` — lossless codecs, filters and the lzbench-like
  evaluation driver (the paper's 180 compressor configurations).
- :mod:`repro.fanstore` — the core system: compressed partition format,
  data preparation, metadata service, cache, daemon, POSIX-style client,
  and user-space interception.
- :mod:`repro.selection` — the compressor-selection algorithm (Eqs. 1-3).
- :mod:`repro.comm` — thread-per-rank MPI-like communicator.
- :mod:`repro.simnet` — discrete-event storage/network performance model.
- :mod:`repro.cluster` — machine presets (GTX / V100 / CPU from the paper).
- :mod:`repro.training` — data-parallel trainer with sync/async I/O.
- :mod:`repro.datasets` — synthetic generators matching Table II.
- :mod:`repro.baselines` — TFRecord-like, Lustre-like, FUSE and chunked
  comparison systems.
- :mod:`repro.obs` — unified observability: metrics registry, request
  tracing, and the ``fanstore-top`` snapshot aggregator.
"""

from repro._version import __version__
from repro.compressors import get_compressor, list_compressors
from repro.fanstore import FanStore, FanStoreOptions, prepare_dataset
from repro.obs import MetricsRegistry
from repro.selection import CompressorSelector, SelectionInputs

__all__ = [
    "__version__",
    "get_compressor",
    "list_compressors",
    "FanStore",
    "FanStoreOptions",
    "prepare_dataset",
    "MetricsRegistry",
    "CompressorSelector",
    "SelectionInputs",
]
