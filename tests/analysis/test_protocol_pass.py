"""protocol-conformance on fixture daemons: unhandled kinds, body
arity, wire-form coverage."""

from __future__ import annotations

import textwrap

from tests.analysis.conftest import rules_of

CONFORMING = textwrap.dedent(
    """
    TAG_DAEMON = 0x0FA0

    class Daemon:
        def _serve(self):
            while True:
                kind, body = self.comm.recv(-1, TAG_DAEMON, timeout=None)
                if kind == "stop":
                    break
                if kind not in ("fetch", "stat"):
                    continue
                subject, reply_tag, *rest = body
                if len(rest) > 3:
                    continue

        def _request(self, kind, body, dest):
            reply_tag = self._next_tag()
            ctx = self.tracer.current_context()
            wire_body = (
                body,
                reply_tag,
                None if ctx is None else ctx.as_wire(),
                self._clock() + self.timeout,
                self._fence_token(),
            )
            self.comm.send((kind, wire_body), dest, TAG_DAEMON)
            return self.comm.recv(dest, reply_tag, timeout=self.timeout)

        def fetch(self, path):
            return self._request("fetch", path, 0)

        def stop(self):
            self.comm.send(("stop", None), 0, TAG_DAEMON)
    """
)


class TestProtocolConformance:
    def test_conforming_daemon_is_clean(self, lint_tree):
        report = lint_tree({"fanstore/daemon.py": CONFORMING})
        assert not rules_of(report, "protocol-conformance"), report.summary()

    def test_unhandled_kind_via_helper_flagged(self, lint_tree):
        src = CONFORMING + textwrap.dedent(
            """
            class Client:
                def evict(self, daemon, path):
                    return daemon._request("evict", path, 0)
            """
        )
        report = lint_tree({"fanstore/daemon.py": src})
        findings = rules_of(report, "protocol-conformance")
        assert len(findings) == 1
        assert "'evict'" in findings[0].message
        assert "wait forever" in findings[0].message

    def test_unhandled_kind_via_direct_send_flagged(self, lint_tree):
        src = CONFORMING.replace(
            'self.comm.send(("stop", None), 0, TAG_DAEMON)',
            'self.comm.send(("halt", None), 0, TAG_DAEMON)',
        )
        report = lint_tree({"fanstore/daemon.py": src})
        findings = rules_of(report, "protocol-conformance")
        assert len(findings) == 1 and "'halt'" in findings[0].message

    def test_fixed_arity_unpack_flagged(self, lint_tree):
        src = CONFORMING.replace(
            "subject, reply_tag, *rest = body",
            "subject, reply_tag = body",
        ).replace("if len(rest) > 3:", "if reply_tag < 0:")
        report = lint_tree({"fanstore/daemon.py": src})
        findings = rules_of(report, "protocol-conformance")
        assert len(findings) == 1
        assert "fixed arity" in findings[0].message

    def test_oversized_wire_body_flagged(self, lint_tree):
        src = CONFORMING.replace(
            "self._fence_token(),",
            "self._fence_token(),\n            self.rank,",
        )
        report = lint_tree({"fanstore/daemon.py": src})
        messages = [f.message for f in rules_of(report, "protocol-conformance")]
        # the 6-tuple is flagged, and with it the fenced form is missing
        assert len(messages) == 2
        assert any("6 fields" in m for m in messages)
        assert any("never builds a fenced wire body" in m for m in messages)

    def test_missing_fenced_form_flagged(self, lint_tree):
        src = CONFORMING.replace(
            "            self._fence_token(),\n", ""
        )
        report = lint_tree({"fanstore/daemon.py": src})
        findings = rules_of(report, "protocol-conformance")
        assert len(findings) == 1
        assert "never builds a fenced wire body" in findings[0].message

    def test_waiver_applies(self, lint_tree):
        src = CONFORMING + textwrap.dedent(
            """
            class Client:
                def evict(self, daemon, path):
                    # lint: allow[protocol-conformance] arm lands in the next PR
                    return daemon._request("evict", path, 0)
            """
        )
        report = lint_tree({"fanstore/daemon.py": src})
        findings = rules_of(report, "protocol-conformance")
        assert findings and findings[0].waived


ENVELOPE = textwrap.dedent(
    """
    TAG_DAEMON = 0x0FA0

    class Daemon:
        def _serve(self):
            while True:
                kind, body = self.comm.recv(-1, TAG_DAEMON, timeout=None)
                if kind == "stop":
                    break
                if kind not in ("fetch", "stat", "batch"):
                    continue
                request = decode_request(body)

        def _request(self, kind, body, dest):
            reply_tag = self._next_tag()
            wire_body = Request(
                subject=body,
                reply_tag=reply_tag,
                trace_ctx=None,
                deadline=self._clock() + self.timeout,
                epoch=self._fence_token(),
            ).encode()
            self.comm.send((kind, wire_body), dest, TAG_DAEMON)
            return self.comm.recv(dest, reply_tag, timeout=self.timeout)

        def fetch(self, path):
            return self._request("fetch", path, 0)
    """
)


class TestEnvelopeConformance:
    """The typed v2 envelope is a recognised wire form, held to the
    same fencing bar as the legacy 5-tuple."""

    def test_fenced_envelope_is_clean(self, lint_tree):
        report = lint_tree({"fanstore/daemon.py": ENVELOPE})
        assert not rules_of(report, "protocol-conformance"), report.summary()

    def test_unfenced_envelope_flagged(self, lint_tree):
        src = ENVELOPE.replace(
            "            epoch=self._fence_token(),\n", ""
        )
        report = lint_tree({"fanstore/daemon.py": src})
        messages = [f.message for f in rules_of(report, "protocol-conformance")]
        # the envelope itself is flagged, and with it the helper never
        # builds any fenced form at all
        assert len(messages) == 2
        assert any("without an epoch= fencing token" in m for m in messages)
        assert any("never builds a fenced wire body" in m for m in messages)

    def test_envelope_counts_as_wire_form_beside_tuples(self, lint_tree):
        # a helper that builds only an unfenced legacy tuple plus a
        # fenced envelope is covered: the envelope carries the token
        src = ENVELOPE.replace(
            "            self.comm.send((kind, wire_body), dest, TAG_DAEMON)",
            "            legacy_body = (body, reply_tag)\n"
            "            self.comm.send((kind, wire_body), dest, TAG_DAEMON)",
        )
        report = lint_tree({"fanstore/daemon.py": src})
        assert not rules_of(report, "protocol-conformance"), report.summary()
