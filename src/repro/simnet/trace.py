"""I/O trace recording and model-based replay.

The paper's analysis of DL I/O (§II-B) rests on workload
characterization — the Darshan-style methodology of its citations
[17–19]. This module provides that instrument for FanStore itself:

- :class:`TraceRecorder` wraps a :class:`FanStoreClient` and records
  every ``open``/``read``/``stat``/``listdir``/``write`` with payload
  size and measured wall-clock duration;
- :class:`IoTrace` serializes to/from JSONL and summarizes (op mix,
  byte histograms, measured rates);
- :func:`replay` re-costs a recorded trace against any
  :class:`~repro.simnet.devices.StorageModel` — "what would this exact
  workload have cost on raw SSD / FUSE / Lustre?", which is how the
  measured and modeled halves of the reproduction are cross-validated.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.errors import ReproError
from repro.simnet.devices import StorageModel
from repro.util.stats import summarize

if TYPE_CHECKING:  # import kept type-only to avoid a package cycle
    from repro.fanstore.client import FanStoreClient

#: operations a trace may contain.
OPS = ("open", "read", "close", "stat", "listdir", "write")


@dataclass(frozen=True)
class TraceEvent:
    """One recorded I/O operation."""

    op: str
    path: str
    nbytes: int
    duration: float  # measured seconds
    timestamp: float  # seconds since trace start

    def to_json(self) -> str:
        return json.dumps(
            {
                "op": self.op,
                "path": self.path,
                "nbytes": self.nbytes,
                "duration": self.duration,
                "timestamp": self.timestamp,
            }
        )

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        data = json.loads(line)
        if data.get("op") not in OPS:
            raise ReproError(f"unknown trace op {data.get('op')!r}")
        return cls(
            op=data["op"],
            path=data["path"],
            nbytes=int(data["nbytes"]),
            duration=float(data["duration"]),
            timestamp=float(data["timestamp"]),
        )


@dataclass
class IoTrace:
    """An ordered sequence of trace events plus summary accessors."""

    events: list[TraceEvent] = field(default_factory=list)

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # -- persistence ------------------------------------------------------

    def save(self, path: Path | str) -> None:
        with open(path, "w") as fh:
            for e in self.events:
                fh.write(e.to_json() + "\n")

    @classmethod
    def load(cls, path: Path | str) -> "IoTrace":
        trace = cls()
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    trace.append(TraceEvent.from_json(line))
        return trace

    # -- analysis ----------------------------------------------------------

    def op_counts(self) -> dict[str, int]:
        counts = {op: 0 for op in OPS}
        for e in self.events:
            counts[e.op] += 1
        return counts

    def total_bytes(self, op: str = "read") -> int:
        return sum(e.nbytes for e in self.events if e.op == op)

    def measured_seconds(self) -> float:
        return sum(e.duration for e in self.events)

    def summary(self) -> str:
        counts = self.op_counts()
        lines = [f"trace: {len(self.events)} events, "
                 f"{self.measured_seconds() * 1e3:.2f} ms measured"]
        for op, n in counts.items():
            if not n:
                continue
            durations = [e.duration for e in self.events if e.op == op]
            s = summarize(durations)
            lines.append(
                f"  {op:<8} x{n:<6} mean {s.mean * 1e6:8.1f} µs   "
                f"p95 {s.p95 * 1e6:8.1f} µs   "
                f"bytes {self.total_bytes(op)}"
            )
        return "\n".join(lines)


class TraceRecorder:
    """Client wrapper that records every call it forwards.

    Exposes the same convenience surface the loaders use (``read_file``,
    ``stat``, ``listdir``, ``write_file``), so a loader pointed at the
    recorder produces a complete trace of a training epoch.
    """

    def __init__(self, client: "FanStoreClient") -> None:
        self.client = client
        self.trace = IoTrace()
        self._start = time.perf_counter()

    def _record(self, op: str, path: str, nbytes: int, began: float) -> None:
        now = time.perf_counter()
        self.trace.append(
            TraceEvent(
                op=op,
                path=path,
                nbytes=nbytes,
                duration=now - began,
                timestamp=began - self._start,
            )
        )

    def read_file(self, path: str) -> bytes:
        began = time.perf_counter()
        fd = self.client.open(path)
        self._record("open", path, 0, began)
        began = time.perf_counter()
        data = self.client.read(fd)
        self._record("read", path, len(data), began)
        began = time.perf_counter()
        self.client.close(fd)
        self._record("close", path, 0, began)
        return data

    def stat(self, path: str):
        began = time.perf_counter()
        result = self.client.stat(path)
        self._record("stat", path, 0, began)
        return result

    def listdir(self, path: str = ""):
        began = time.perf_counter()
        result = self.client.listdir(path)
        self._record("listdir", path, 0, began)
        return result

    def write_file(self, path: str, data: bytes) -> None:
        began = time.perf_counter()
        self.client.write_file(path, data)
        self._record("write", path, len(data), began)

    # loaders access .daemon for metadata walks
    @property
    def daemon(self):
        return self.client.daemon


def replay(trace: IoTrace | Iterable[TraceEvent], model: StorageModel) -> float:
    """Modeled seconds for the traced workload on ``model``.

    open+read pairs cost one ``read_time`` (the model's per-op term
    covers the open); stats and listdirs cost ``stat_time``; writes cost
    ``write_time``.
    """
    total = 0.0
    for e in trace:
        if e.op == "read":
            total += model.read_time(e.nbytes)
        elif e.op == "write":
            total += model.write_time(e.nbytes)
        elif e.op in ("stat", "listdir"):
            total += model.stat_time()
        # open/close are folded into read_time's per-op term
    return total
