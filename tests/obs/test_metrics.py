"""The metrics registry: bucket semantics, binding, snapshots, merge."""

from __future__ import annotations

import json
import math

import pytest

from repro.fanstore.daemon import DaemonStats
from repro.obs import (
    DEFAULT_LATENCY_EDGES,
    Counter,
    Histogram,
    MetricsRegistry,
    ObservabilityError,
    live_registries,
    load_snapshots,
    merge_snapshots,
)


class TestHistogramBuckets:
    def test_edges_are_sorted_unique_and_span_the_ladder(self):
        edges = DEFAULT_LATENCY_EDGES
        assert list(edges) == sorted(set(edges))
        assert edges[0] == pytest.approx(1e-6)
        assert edges[-1] == 100.0

    def test_value_on_edge_lands_in_that_bucket(self):
        """``le`` semantics: an observation exactly equal to an upper
        edge belongs to that edge's bucket, not the next one."""
        h = Histogram("t", edges=(1.0, 2.0, 5.0))
        h.observe(2.0)
        assert h.buckets == [0, 1, 0, 0]

    def test_value_below_first_edge_lands_in_first_bucket(self):
        h = Histogram("t", edges=(1.0, 2.0, 5.0))
        h.observe(0.001)
        assert h.buckets == [1, 0, 0, 0]

    def test_value_past_last_edge_lands_in_overflow(self):
        h = Histogram("t", edges=(1.0, 2.0, 5.0))
        h.observe(7.5)
        assert h.buckets == [0, 0, 0, 1]
        assert h.max == 7.5

    def test_interior_value_picks_the_ceiling_bucket(self):
        h = Histogram("t", edges=(1.0, 2.0, 5.0))
        h.observe(1.5)  # between 1 and 2 → the le=2 bucket
        assert h.buckets == [0, 1, 0, 0]

    def test_count_sum_min_max_track_observations(self):
        h = Histogram("t", edges=(1.0, 2.0, 5.0))
        for v in (0.5, 2.0, 9.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(11.5)
        assert h.min == 0.5
        assert h.max == 9.0
        assert h.mean == pytest.approx(11.5 / 3)

    def test_bad_edges_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram("t", edges=())
        with pytest.raises(ObservabilityError):
            Histogram("t", edges=(2.0, 1.0))
        with pytest.raises(ObservabilityError):
            Histogram("t", edges=(1.0, 1.0, 2.0))


class TestHistogramQuantiles:
    def test_quantile_of_empty_histogram_is_zero(self):
        assert Histogram("t").quantile(0.5) == 0.0

    def test_quantile_returns_bucket_upper_edge(self):
        h = Histogram("t", edges=(1.0, 2.0, 5.0))
        for _ in range(9):
            h.observe(0.5)  # le=1 bucket
        h.observe(4.0)  # le=5 bucket
        assert h.quantile(0.5) == 1.0
        assert h.quantile(0.9) == 1.0
        assert h.quantile(1.0) == 5.0

    def test_overflow_quantile_reports_recorded_max(self):
        h = Histogram("t", edges=(1.0,))
        h.observe(123.0)
        assert h.quantile(1.0) == 123.0

    def test_quantile_range_checked(self):
        with pytest.raises(ObservabilityError):
            Histogram("t").quantile(1.5)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ObservabilityError):
            reg.gauge("x")
        with pytest.raises(ObservabilityError):
            reg.histogram("x")

    def test_bound_counter_reads_and_writes_through_stats_field(self):
        """The fold-DaemonStats-in contract: the dataclass field IS the
        counter cell, so hot-path ``stats.x += 1`` and registry reads
        observe the same storage."""
        stats = DaemonStats()
        reg = MetricsRegistry()
        bound = reg.bind_counter("daemon.retries", stats, "retries")
        stats.retries += 3
        assert bound.value == 3
        bound.inc(2)
        assert stats.retries == 5
        assert reg.snapshot().value("daemon.retries") == 5

    def test_bound_counter_requires_existing_attribute(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().bind_counter("bad", DaemonStats(), "nope")

    def test_bound_gauge_fn_evaluated_at_snapshot_time(self):
        reg = MetricsRegistry()
        cell = {"v": 1}
        reg.bind_gauge("g", fn=lambda: cell["v"])
        cell["v"] = 42
        assert reg.snapshot().value("g") == 42

    def test_bound_gauge_rejects_both_or_neither_binding(self):
        reg = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            reg.bind_gauge("g1")
        with pytest.raises(ObservabilityError):
            reg.bind_gauge("g2", obj=object(), attr="x", fn=lambda: 0)

    def test_live_registries_tracks_instances(self):
        reg = MetricsRegistry(rank=9)
        assert reg in live_registries()

    def test_contains_len_names(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a")
        assert "a" in reg and "zzz" not in reg
        assert len(reg) == 2
        assert reg.names() == ["a", "b"]


class TestSnapshotRoundTrip:
    def _populated(self, rank):
        reg = MetricsRegistry(rank=rank, label="t")
        reg.counter("c").inc(10 + rank)
        reg.gauge("g").set(rank)
        h = reg.histogram("h", edges=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5 + rank)
        return reg

    def test_jsonl_round_trip(self, tmp_path):
        snap = self._populated(0).snapshot()
        path = snap.write_jsonl(tmp_path / "r0.jsonl")
        loaded = load_snapshots([path])
        assert len(loaded) == 1
        back = loaded[0]
        assert back.rank == 0 and back.label == "t"
        assert back.names() == snap.names()
        assert back.value("c") == 10
        assert back.get("h")["buckets"] == snap.get("h")["buckets"]

    def test_lines_are_flat_json_objects(self):
        for line in self._populated(1).snapshot().to_lines():
            obj = json.loads(line)
            assert obj["rank"] == 1
            assert obj["label"] == "t"
            assert obj["type"] in ("counter", "gauge", "histogram")

    def test_load_skips_interleaved_span_and_junk_lines(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        lines = self._populated(0).snapshot().to_lines()
        lines.insert(0, json.dumps({"kind": "span", "trace_id": "t0-1"}))
        lines.append("not json at all")
        path.write_text("\n".join(lines) + "\n")
        loaded = load_snapshots([path])
        assert len(loaded) == 1
        assert loaded[0].names() == ["c", "g", "h"]

    def test_merge_across_ranks(self, tmp_path):
        paths = []
        for rank in range(3):
            snap = self._populated(rank).snapshot()
            paths.append(snap.write_jsonl(tmp_path / f"r{rank}.jsonl"))
        merged = merge_snapshots(load_snapshots(paths))
        assert merged.rank == -1 and merged.label == "merged"
        assert merged.value("c") == 10 + 11 + 12  # counters sum
        assert merged.value("g") == 2  # gauges keep the max
        h = merged.get("h")  # histograms add bucket-wise
        assert h["count"] == 6
        assert sum(h["buckets"]) == 6
        assert h["min"] == 0.5
        assert h["max"] == 3.5

    def test_merge_rejects_mismatched_edges(self):
        a = MetricsRegistry(rank=0)
        a.histogram("h", edges=(1.0,)).observe(0.5)
        b = MetricsRegistry(rank=1)
        b.histogram("h", edges=(2.0,)).observe(0.5)
        with pytest.raises(ObservabilityError):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_render_is_a_parseable_table(self):
        text = self._populated(0).snapshot().render()
        lines = text.splitlines()
        assert lines[0].split() == ["metric", "type", "value"]
        assert any(line.startswith("c ") for line in lines)
        assert any("count=2" in line for line in lines)

    def test_render_prefix_filters(self):
        reg = MetricsRegistry()
        reg.counter("daemon.x").inc()
        reg.counter("cache.y").inc()
        text = reg.snapshot().render(prefix="daemon.")
        assert "daemon.x" in text and "cache.y" not in text


def test_counter_to_dict_shape():
    c = Counter("n")
    c.inc(7)
    assert c.to_dict() == {"name": "n", "type": "counter", "value": 7}


def test_histogram_empty_to_dict_has_null_extremes():
    d = Histogram("h").to_dict()
    assert d["min"] is None and d["max"] is None
    assert math.isinf(Histogram("h").min)
