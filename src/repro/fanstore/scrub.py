"""The self-healing integrity scrubber.

Verify-on-read (:meth:`FanStoreDaemon._verified_local`) catches
corruption the moment a training process touches the bytes — but a
record nobody has read yet can sit corrupt for hours, and the repair
sources (peer replicas, the shared-FS partition files) are most likely
to still exist *early*. The scrubber closes that window: a background
sweep over the records staged on this rank that digest-checks each
compressed payload and heals mismatches through the same failover
ladder the read path uses, so by the time an epoch reaches a damaged
record it has already been replaced.

Design points:

- **incremental** — :meth:`Scrubber.step` verifies one bounded batch
  and remembers its cursor, so the sweep interleaves with training
  instead of stalling it; :meth:`Scrubber.run` is the one-shot full
  pass (what ``FanStore.verify_integrity`` builds on).
- **rate-limited** — ``rate_limit_bytes_per_s`` caps scrub bandwidth so
  the sweep never competes with the §IV-C3 read path for memory
  bandwidth.
- **repair policy** — ``repair=True`` heals via
  :meth:`FanStoreDaemon.repair` (replicas → shared FS) and counts into
  ``DaemonStats.corruption_detected/corruption_repaired``;
  ``repair=False`` only reports, mutating nothing.
- **deep mode** — additionally decompresses each payload and checks the
  plaintext length against the stat record, catching corruption that
  predates the digest (or datasets packed before digests existed).

Every sweep produces a :class:`ScrubReport`; unrepairable paths are
listed by name so operators (and the E2E drill) know exactly what was
lost.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import (
    DataIntegrityError,
    FanStoreError,
    FileNotFoundInStoreError,
)
from repro.fanstore.daemon import FanStoreDaemon
from repro.fanstore.layout import blob_crc32
from repro.fanstore.metadata import FileRecord
from repro.util.service import ServiceMixin


@dataclass
class ScrubReport:
    """Outcome of one scrub pass (or one incremental batch)."""

    scanned: int = 0  # records examined
    verified: int = 0  # digest (and, deep mode, plaintext) checked OK
    skipped: int = 0  # no digest recorded, or bytes not staged here
    corrupted: int = 0  # digest mismatches found
    repaired: int = 0  # of those, healed via the failover ladder
    unrepaired: list[str] = field(default_factory=list)  # lost paths
    bytes_scanned: int = 0
    elapsed_s: float = 0.0

    @property
    def clean(self) -> bool:
        """True when nothing is corrupt *now* (repaired counts as clean)."""
        return not self.unrepaired and self.corrupted == self.repaired

    def merge(self, other: "ScrubReport") -> None:
        """Fold a batch into a cumulative report."""
        self.scanned += other.scanned
        self.verified += other.verified
        self.skipped += other.skipped
        self.corrupted += other.corrupted
        self.repaired += other.repaired
        self.unrepaired.extend(other.unrepaired)
        self.bytes_scanned += other.bytes_scanned
        self.elapsed_s += other.elapsed_s

    def __str__(self) -> str:  # the inspect CLI prints reports
        state = "clean" if self.clean else f"{len(self.unrepaired)} unrepaired"
        return (
            f"scrub: {self.scanned} scanned, {self.verified} verified, "
            f"{self.skipped} skipped, {self.corrupted} corrupt, "
            f"{self.repaired} repaired ({state}; "
            f"{self.bytes_scanned} B in {self.elapsed_s:.3f}s)"
        )


class Scrubber(ServiceMixin):
    """Incremental, rate-limited digest sweep over one rank's records.

    Progress is visible in the daemon's metrics registry: the
    ``scrub.bytes_scanned`` counter and ``scrub.batch_seconds``
    histogram advance with every batch, and the ``scrub.pending`` gauge
    reports how far through the current sweep snapshot the cursor is.
    """

    def __init__(
        self,
        daemon: FanStoreDaemon,
        *,
        repair: bool = True,
        deep: bool = False,
        batch: int = 32,
        rate_limit_bytes_per_s: float | None = None,
        interval_s: float = 0.0,
    ) -> None:
        if batch < 1:
            raise FanStoreError(f"scrub batch must be >= 1, got {batch}")
        if rate_limit_bytes_per_s is not None and rate_limit_bytes_per_s <= 0:
            raise FanStoreError("rate limit must be positive (or None)")
        self.daemon = daemon
        self.repair = repair
        self.deep = deep
        self.batch = batch
        self.rate_limit_bytes_per_s = rate_limit_bytes_per_s
        self.interval_s = interval_s  # idle time between background batches
        self.report = ScrubReport()  # cumulative across step() calls
        self._pending: list[str] = []
        self._mid_sweep = False
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        metrics = daemon.metrics
        self._c_bytes = metrics.counter("scrub.bytes_scanned")
        self._h_batch = metrics.histogram("scrub.batch_seconds")
        metrics.bind_gauge("scrub.pending", fn=lambda: len(self._pending))

    # -- target selection --------------------------------------------------

    def local_paths(self) -> list[str]:
        """Paths whose compressed bytes this rank is responsible for:
        its home records plus any replica/promoted copies staged in the
        backend (sorted, so sweeps are deterministic)."""
        daemon = self.daemon
        paths = {
            rec.path for rec in daemon.metadata.records()
            if rec.home_rank == daemon.rank or rec.path in daemon.backend
        }
        return sorted(paths)

    # -- sweeping ----------------------------------------------------------

    def step(self, max_records: int | None = None) -> ScrubReport:
        """Verify the next batch (default ``self.batch``) and advance
        the cursor. When a sweep's snapshot is exhausted, one empty
        report marks the boundary (``scanned == 0`` — callers driving
        "scrub until done" stop there) and the next call starts a fresh
        snapshot. Folds into :attr:`report` and returns the batch's own
        report."""
        if not self._pending:
            if self._mid_sweep:
                self._mid_sweep = False
                return ScrubReport()  # sweep boundary
            self._pending = self.local_paths()
            self._mid_sweep = True
        budget = self.batch if max_records is None else max_records
        batch, self._pending = self._pending[:budget], self._pending[budget:]
        result = self._verify(batch)
        self.report.merge(result)
        return result

    def run(self, sample: int | None = None) -> ScrubReport:
        """One full pass (or the first ``sample`` records) over a fresh
        snapshot; independent of the incremental cursor."""
        paths = self.local_paths()
        if sample is not None:
            paths = paths[:sample]
        return self._verify(paths)

    def _verify(self, paths: list[str]) -> ScrubReport:
        report = ScrubReport()
        start = time.monotonic()
        daemon = self.daemon
        for path in paths:
            try:
                record = daemon.metadata.get(path)
            except FileNotFoundInStoreError:
                continue  # unlinked between snapshot and visit
            self._verify_one(record, report)
            daemon.stats.records_scrubbed += 1
            self._throttle(report, start)
        report.elapsed_s = time.monotonic() - start
        self._c_bytes.inc(report.bytes_scanned)
        self._h_batch.observe(report.elapsed_s)
        return report

    def _verify_one(self, record: FileRecord, report: ScrubReport) -> None:
        daemon = self.daemon
        report.scanned += 1
        try:
            data = daemon.backend.get(record.path)
        except FileNotFoundInStoreError:
            report.skipped += 1  # metadata-only here; bytes live elsewhere
            return
        except DataIntegrityError:
            self._handle_corrupt(record, report)
            return
        report.bytes_scanned += len(data)
        if not record.has_digest:
            if self.deep and not self._plaintext_ok(record, data):
                self._handle_corrupt(record, report)
            else:
                report.skipped += 1
            return
        digest_ok = blob_crc32(data) == record.crc32
        if digest_ok and (not self.deep or self._plaintext_ok(record, data)):
            report.verified += 1
            return
        self._handle_corrupt(record, report)

    def _plaintext_ok(self, record: FileRecord, data: bytes) -> bool:
        """Deep check: the payload decompresses to the recorded size."""
        try:
            plain = self.daemon.registry.get(record.compressor_id).decompress(data)
        except Exception:
            return False
        return len(plain) == record.stat.st_size

    def _handle_corrupt(self, record: FileRecord, report: ScrubReport) -> None:
        report.corrupted += 1
        if not self.repair:
            return
        try:
            # by path, not by the snapshot's record: repair() re-resolves
            # ownership, so a record re-homed by the membership layer is
            # healed from its *current* owner, not the dead original
            self.daemon.repair(record.path)
        except DataIntegrityError:
            report.unrepaired.append(record.path)
        else:
            report.repaired += 1

    def _throttle(self, report: ScrubReport, start: float) -> None:
        limit = self.rate_limit_bytes_per_s
        if limit is None or report.bytes_scanned == 0:
            return
        earliest = start + report.bytes_scanned / limit
        delay = earliest - time.monotonic()
        if delay > 0:
            time.sleep(delay)

    # -- background mode ---------------------------------------------------

    def start(self) -> None:
        """Run :meth:`step` on a daemon thread until :meth:`stop`,
        sleeping ``interval_s`` between batches (no-op if running)."""
        if self._thread is not None:
            return
        self._stop.clear()

        def _loop() -> None:
            while not self._stop.is_set():
                self.step()
                if self._stop.wait(self.interval_s):
                    return

        self._thread = threading.Thread(
            target=_loop,
            name=f"fanstore-scrubber-{self.daemon.rank}",
            daemon=True,
        )
        self._thread.start()

    def stop(self, timeout: float | None = 5.0) -> None:
        """Stop the background sweep (idempotent)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=timeout)
        self._thread = None

    @property
    def running(self) -> bool:
        """Whether the background sweep is live (Service contract)."""
        thread = self._thread
        return thread is not None and thread.is_alive()
