"""The self-healing membership acceptance drill.

A rank is killed by the chaos layer mid-job. The survivors must:
convict it within the detector's threshold, re-replicate every record
it held (digest-verified, counted), keep training elastically with
zero step failures, and route post-detection reads without ever
entering the retry/backoff ladder. The killed rank is then relaunched
as a fresh incarnation that rejoins via the membership protocol —
ending ALIVE in every peer's view at the same epoch and serving
verified reads — all inside one world, one launch.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.comm.chaos import ChaosWorld, FaultPlan
from repro.comm.launcher import run_parallel
from repro.fanstore.daemon import TAG_DAEMON, DaemonConfig
from repro.fanstore.faults import CheckpointManager
from repro.fanstore.membership import MembershipConfig, RankState
from repro.fanstore.metadata import normalize
from repro.fanstore.store import FanStore
from repro.training.loader import SyncLoader, list_training_files
from repro.training.models import MLP
from repro.training.trainer import DataParallelTrainer, make_array_collate

FEATURES = 8
CLASSES = 2
NODES = 3
DEAD = 2
KILLER = 1  # the rank that pulls the trigger (and later relaunches)
TOTAL_EPOCHS = 4
HEALTHY_EPOCHS = 2

MEMBERSHIP_SEEDS = (41, 42, 43)
seeds = pytest.mark.parametrize(
    "seed", MEMBERSHIP_SEEDS, ids=[f"seed{s}" for s in MEMBERSHIP_SEEDS]
)

#: tight request budgets (the PR-1 drill's FAST profile)
FAST = dict(
    request_timeout=0.4,
    max_retries=1,
    retry_backoff_base=0.01,
    retry_backoff_max=0.05,
)

#: dead_after is deliberately the slow part: the deterministic probe
#: reads (full retry ladder, then a negative-route-cache hit) must both
#: land before the conviction bumps the epoch.
MCFG = MembershipConfig(
    heartbeat_interval=0.05, suspect_after=0.3, dead_after=2.0
)

#: records with the dead rank among their copies, given 3 partitions of
#: 4 files and extra_partition_budget=1 (rank r replicates partition
#: r-1): the 4 files homed on DEAD plus the 4 replicas DEAD held of
#: partition KILLER — the total the survivors must restore.
LOST_COPIES = 8

_TAG_DONE = 0x0D0F  # pairwise teardown drain (no collective barrier)
_TAG_READY = 0x0D10  # rank 0 → KILLER: conviction asserts captured

POLL = 0.01


def decoder(raw: bytes, path: str):
    arr = np.frombuffer(raw[8 : 8 + FEATURES], dtype=np.uint8)
    features = arr.astype(np.float64) / 255.0
    return features, int(arr.sum()) % CLASSES


def _make_trainer(fs, comm, ckpt_dir, epochs):
    files = [p for p in list_training_files(fs.client) if p.startswith("cls")]
    loader = SyncLoader(
        fs.client, files, batch_size=6, epochs=epochs,
        rank=comm.rank, world_size=comm.size, seed=1, decoder=decoder,
    )
    model = MLP([FEATURES, 6, CLASSES], seed=13)
    return DataParallelTrainer(
        model,
        loader,
        make_array_collate((FEATURES,), CLASSES),
        comm=comm,
        lr=0.2,
        checkpoints=CheckpointManager(ckpt_dir),
        membership=fs.membership,
        elastic_timeout=0.5,
        elastic_deadline=30.0,
    )


def _await(predicate, deadline_s, what):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(POLL)
    raise AssertionError(f"timed out waiting for {what}")


@pytest.fixture(scope="module")
def originals(raw_dataset_dir):
    """store path → raw bytes, for byte-identity assertions."""
    expected = {}
    train = raw_dataset_dir / "train"
    for p in sorted(train.rglob("*")):
        if p.is_file():
            expected[normalize(str(p.relative_to(train)))] = p.read_bytes()
    for p in sorted((raw_dataset_dir / "val").iterdir()):
        if p.is_file():
            expected[f"val/{p.name}"] = p.read_bytes()
    return expected


def _read_all(fs):
    return {
        rec.path: fs.client.read_file(rec.path)
        for rec in fs.daemon.metadata.walk_files()
    }


def _drain(comm):
    """Pairwise teardown: keep serving until every peer is done too."""
    others = [r for r in range(NODES) if r != comm.rank]
    for other in others:
        comm.send("done", other, _TAG_DONE)
    for other in others:
        comm.recv(other, _TAG_DONE, timeout=120)


class TestMembershipDrill:
    """Kill → convict → re-replicate → keep training → rejoin."""

    @seeds
    def test_kill_heal_rejoin(
        self, seed, prepared_dataset, originals, tmp_path
    ):
        ckpt_dir = tmp_path / "ckpt"
        config = DaemonConfig(**FAST, extra_partition_budget=1)
        # light chaos on the daemon tag while the healthy epochs train,
        # well inside the request timeout
        plan = FaultPlan(seed).delay(0.02, tag=TAG_DAEMON, times=4)
        world = ChaosWorld(NODES, plan)

        def body(comm):
            fs = FanStore(
                prepared_dataset, comm=comm, config=config, membership=MCFG
            )
            det = fs.membership
            report1 = _make_trainer(fs, comm, ckpt_dir, HEALTHY_EPOCHS).train()
            assert report1.epochs_completed == HEALTHY_EPOCHS
            comm.barrier()

            if comm.rank == DEAD:
                return _corpse_then_rejoin(fs, comm, world, originals)

            if comm.rank == KILLER:
                t_kill = time.monotonic()
                world.kill(DEAD)
                probe = _probe_dead_routes(fs)
            else:
                t_kill = None
                probe = {}

            # -- survivors keep training, elastically --------------------
            trainer = _make_trainer(fs, comm, ckpt_dir, TOTAL_EPOCHS)
            report2 = trainer.train(resume=True)
            assert report2.resumed_from_epoch == HEALTHY_EPOCHS - 1
            assert report2.epochs_completed == TOTAL_EPOCHS - HEALTHY_EPOCHS
            assert report2.elastic_steps > 0  # steps ran short-handed

            # -- conviction within threshold -----------------------------
            _await(
                lambda: det.view.state(DEAD) == RankState.DEAD,
                30, "conviction of the killed rank",
            )
            assert det.stats.convictions == 1
            detected = det.detected_at[DEAD]
            if t_kill is not None:
                # the detector's clock is time.monotonic, so the latency
                # is directly comparable; one heartbeat of slack for the
                # last beat that arrived just before the kill, plus
                # generous scheduling slack for a loaded CI machine
                assert detected - t_kill <= MCFG.dead_after + 2.0
                assert detected - t_kill >= 1.0

            # -- replication factor restored, digest-verified ------------
            stats = fs.daemon.stats
            _await(
                lambda: stats.rereplicated_records
                + stats.rereplication_failed >= LOST_COPIES // 2,
                30, "re-replication to finish",
            )
            assert stats.rereplication_failed == 0
            assert stats.rereplicated_records == LOST_COPIES // 2
            assert 0 < stats.mean_time_to_repair < 30
            assert fs.scrub(repair=False).clean  # restored copies verify

            # -- post-detection reads: no retry/backoff ------------------
            retries_before = stats.retries
            assert _read_all(fs) == originals
            assert stats.retries == retries_before

            # -- relaunch the corpse's rank ------------------------------
            if comm.rank == KILLER:
                comm.recv(0, _TAG_READY, timeout=120)
                world.revive(DEAD)
            else:
                comm.send("ready", KILLER, _TAG_READY)

            # every peer ends with the joiner ALIVE at the same epoch:
            # one bump for the conviction, one for the verified rejoin
            _await(
                lambda: det.view.state(DEAD) == RankState.ALIVE
                and det.view.epoch == 2,
                60, "the relaunched rank to be promoted",
            )
            if comm.rank == KILLER:
                # the rejoined rank serves reads directly: fetch a record
                # it re-staged and digest-verify the bytes
                path = min(
                    r.path for r in fs.daemon.metadata.records()
                    if not r.is_broadcast and r.partition_id % NODES == DEAD
                )
                ok, data = fs.daemon._request("fetch", path, DEAD, attempts=2)
                assert ok and fs.daemon._blob_ok(
                    fs.daemon.metadata.get(path), data
                )
            if comm.rank == 0:
                assert det.stats.joins_served == 1
                assert det.stats.promotions == 1
                own = fs.export_ownership()
                assert own["epoch"] == 2
                # a record that lost its home was adopted by the lowest
                # surviving copy holder, and the rejoined rank was
                # re-announced as a replica for its old partition
                rehomed = [
                    r for r in fs.daemon.metadata.records()
                    if not r.is_broadcast and r.partition_id % NODES == DEAD
                ]
                for rec in rehomed:
                    assert rec.home_rank == 0
                    assert DEAD in own["files"][rec.path]["replicas"]

            _drain(comm)
            fs.shutdown()
            return {
                "role": "survivor",
                "rereplicated": stats.rereplicated_records,
                "epoch": det.view.epoch,
                "probe": probe,
            }

        results = run_parallel(body, NODES, world=world, timeout=300)
        survivors = [r for r in results if r["role"] == "survivor"]
        rejoined = [r for r in results if r["role"] == "rejoined"]
        assert len(survivors) == 2 and len(rejoined) == 1

        # every lost copy was restored, across the surviving cohort
        assert sum(r["rereplicated"] for r in survivors) == LOST_COPIES
        # the whole cluster converged on the same membership history
        assert {r["epoch"] for r in results} == {2}

        # the deterministic probe: one full retry ladder on the dead
        # home, then the negative route cache short-circuits the next
        # read — failover without a single new retry
        probe = next(r["probe"] for r in survivors if r["probe"])
        assert probe["first_retries"] >= 1
        assert probe["second_retries"] == 0
        assert probe["dead_route_skips"] == 1

        # the rejoined incarnation read the full namespace byte-exact
        assert rejoined[0]["files_ok"]
        assert rejoined[0]["promoted"]

        # training never failed a step: the run checkpointed every epoch
        assert CheckpointManager(ckpt_dir).epochs() == list(range(TOTAL_EPOCHS))


def _probe_dead_routes(fs) -> dict:
    """Two reads of records homed on the (not yet convicted) corpse:
    the first pays the full retry ladder and caches the outcome, the
    second must fail over immediately off the negative route cache."""
    stats = fs.daemon.stats
    victims = sorted(
        r.path for r in fs.daemon.metadata.records()
        if not r.is_broadcast and r.home_rank == DEAD
    )
    assert len(victims) >= 2
    fs.client.read_file(victims[0])  # retry ladder → replica failover
    first_retries = stats.retries
    skips_before = stats.dead_route_skips
    fs.client.read_file(victims[1])  # cache hit → straight to replica
    return {
        "first_retries": first_retries,
        "second_retries": stats.retries - first_retries,
        "dead_route_skips": stats.dead_route_skips - skips_before,
    }


def _corpse_then_rejoin(fs, comm, world, originals) -> dict:
    """The killed rank's script: notice the kill, go quiet, then come
    back as a relaunched incarnation that rejoins via the protocol."""
    _await(lambda: world.plan.is_dead(DEAD), 60, "the kill to land")
    # the old incarnation's service threads die on their own (their
    # blocked receives wake via the closed mailbox); make that
    # deterministic before the rank slot is reused
    fs.membership.stop()
    serve = fs.daemon._service_thread
    if serve is not None:
        serve.join(timeout=30)
        assert not serve.is_alive()
    _await(lambda: not world.plan.is_dead(DEAD), 120, "the operator relaunch")

    # fresh incarnation: partitions off the shared FS, metadata from the
    # join snapshot, ALIVE only after a peer verified a read against us
    fs2 = FanStore(
        fs.prepared, comm=comm, config=fs.daemon.config,
        membership=MCFG, rejoin_peer=0,
    )
    view = fs2.membership.view
    assert view.state(DEAD) == RankState.ALIVE
    files_ok = _read_all(fs2) == originals  # byte-exact, remote + local
    _drain(comm)
    result = {
        "role": "rejoined",
        "promoted": view.state(DEAD) == RankState.ALIVE,
        "epoch": view.epoch,
        "files_ok": files_ok,
    }
    fs2.shutdown()
    return result
