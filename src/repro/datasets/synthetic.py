"""Synthetic stand-ins for the six Table II datasets.

The I/O system touches exactly two dataset properties: the file-size
distribution and the byte-level compressibility. Each generator below
reproduces the *format signature* (header structure) and the
*statistical texture* (what makes the real data compress the way
Table IV reports) of its dataset:

- **EM (tif)** — spatially correlated 16-bit micrographs: smooth 2-D
  random fields quantize to bytes with strong local redundancy
  (lossless ratio ≈ 2–4, like the paper's electron-microscopy stacks).
- **Tokamak (npz)** — ~1.2 KB NumPy archives of slowly varying
  diagnostic channels (LZ-compressible floats, tiny files whose on-disk
  footprint is block-size dominated — the §VII-E2 observation).
- **Lung (nii)** — NIfTI-style volumes that are mostly background
  (zero) voxels: very high ratios (Table IV: 5.7–10.8).
- **Astronomy (FITS)** — 2880-byte ASCII header blocks plus a smooth
  sky background with point sources (ratio ≈ 2.6–3.4).
- **ImageNet (jpg)** — JFIF-framed entropy-coded payloads: already
  compressed, ratio ≈ 1.0 — the paper's incompressible control.
- **Language (txt)** — Zipf-weighted word stream (ratio ≈ 2.8–4).

All generators are deterministic in ``seed``.
"""

from __future__ import annotations

import io
import struct
import zlib
from pathlib import Path
from typing import Callable

import numpy as np

from repro.datasets.spec import TABLE2, DatasetSpec, get_spec


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


# ---------------------------------------------------------------------------
# EM / tif


def em_tif(size: int, seed: int = 0) -> bytes:
    """A smooth 16-bit "micrograph" with a minimal TIFF header."""
    rng = _rng(seed)
    n_pixels = max((size - 8) // 2, 64)
    side = max(int(np.sqrt(n_pixels)), 8)
    # Low-amplitude 2-D random walk + shot noise: the high byte of each
    # 16-bit pixel is nearly constant and the low byte locally
    # correlated, landing the lossless ratio near Table IV's 2.0-2.3.
    coarse = np.cumsum(
        rng.integers(-2, 3, size=(side // 4 + 1, side // 4 + 1)), axis=1
    )
    field = np.kron(coarse, np.ones((4, 4), dtype=np.int64))[:side, :side]
    field = field * 4 + rng.integers(-3, 4, size=(side, side))
    field = (field - field.min() + 200).astype(np.uint16)
    header = struct.pack("<2sHI", b"II", 42, 8)  # little-endian TIFF magic
    body = field.tobytes()[: max(size - len(header), 0)]
    return header + body


# ---------------------------------------------------------------------------
# Tokamak / npz


def tokamak_npz(size: int, seed: int = 0) -> bytes:
    """A small uncompressed ``.npz`` of slowly varying channel signals."""
    rng = _rng(seed)
    samples = max(size // 7, 16)
    t = np.linspace(0.0, 1.0, samples, dtype=np.float32)
    # Digitized diagnostics: int16 ADC counts of slowly varying channels
    # (real tokamak channels are quantized sensor streams). One stacked
    # array keeps the zip-container overhead small at ~1.2 KB files.
    # Coarse ADC quantization gives the plateau runs real diagnostic
    # channels show, which is what makes 1.2 KB files compress ~2.6×.
    signals = np.stack(
        [
            (
                20 * np.sin(2 * np.pi * (1 + rng.random()) * t)
            ).astype(np.int16) * 50,
            (np.cumsum(rng.integers(-1, 2, samples)) // 4).astype(np.int16),
            (t * rng.integers(8, 24)).astype(np.int16) * 10,
        ]
    )
    buf = io.BytesIO()
    np.savez(buf, signals=signals)
    return buf.getvalue()


# ---------------------------------------------------------------------------
# Lung / nii


def lung_nii(size: int, seed: int = 0) -> bytes:
    """A NIfTI-1-style volume: 348-byte header, mostly-zero int16 voxels
    with one dense ellipsoidal region (the organ)."""
    rng = _rng(seed)
    header = bytearray(348)
    struct.pack_into("<i", header, 0, 348)  # sizeof_hdr
    header[344:348] = b"n+1\x00"  # NIfTI magic
    n_voxels = max((size - 348) // 2, 512)
    side = max(int(round(n_voxels ** (1 / 3))), 8)
    vol = np.zeros((side, side, side), dtype=np.int16)
    c = side / 2.0
    idx = np.indices(vol.shape).astype(np.float32)
    dist2 = sum((idx[i] - c) ** 2 for i in range(3))
    organ = dist2 < (side / 3.5) ** 2
    vol[organ] = (
        600 + 50 * rng.standard_normal(int(organ.sum()))
    ).astype(np.int16)
    body = vol.tobytes()[: max(size - len(header), 0)]
    return bytes(header) + body


# ---------------------------------------------------------------------------
# Astronomy / FITS


def astro_fits(size: int, seed: int = 0) -> bytes:
    """A FITS file: 2880-byte card header + float32 sky with sources."""
    rng = _rng(seed)
    cards = [
        "SIMPLE  =                    T",
        "BITPIX  =                  -32",
        "NAXIS   =                    2",
        "END",
    ]
    header = "".join(c.ljust(80) for c in cards).ljust(2880).encode("ascii")
    n_pixels = max((size - 2880) // 4, 256)
    side = max(int(np.sqrt(n_pixels)), 16)
    # Smooth sky + integer-count photon noise + point sources, stored as
    # quantized counts in float32 (what calibrated survey images hold):
    # enough structure for ratio ≈ 2.5-3.5, not the exact-repeat blocks
    # a noiseless background would give.
    coarse = rng.random((side // 8 + 1, side // 8 + 1)).astype(np.float32)
    sky = np.kron(coarse * 100, np.ones((8, 8), dtype=np.float32))
    sky = sky[:side, :side] + rng.poisson(3.0, (side, side))
    stars = rng.random((side, side)) > 0.999
    sky[stars] += rng.exponential(500.0, int(stars.sum())).astype(np.float32)
    # Keep at least 1 KiB of image even when the requested size is
    # header-dominated, so tiny astro files still carry (seeded) data.
    body = np.round(sky).astype(">f4").tobytes()[: max(size - 2880, 1024)]
    return header + body


# ---------------------------------------------------------------------------
# ImageNet / jpg


def imagenet_jpg(size: int, seed: int = 0) -> bytes:
    """A JFIF-framed blob of already-entropy-coded bytes (ratio ≈ 1.0).

    Real JPEG payloads are Huffman-coded DCT coefficients —
    statistically indistinguishable from random bytes to a second
    lossless pass. We reproduce that by deflating random-walk pixel data
    and keeping the (incompressible) deflate stream as the payload.
    """
    rng = _rng(seed)
    soi = b"\xff\xd8\xff\xe0\x00\x10JFIF\x00\x01"
    eoi = b"\xff\xd9"
    payload_len = max(size - len(soi) - len(eoi), 16)
    raw = rng.integers(0, 256, payload_len * 2, dtype=np.uint8).tobytes()
    payload = zlib.compress(raw, 1)[:payload_len]
    if len(payload) < payload_len:  # pad with more entropy if needed
        payload += rng.bytes(payload_len - len(payload))
    return soi + payload + eoi


# ---------------------------------------------------------------------------
# Language / txt

_WORDS = (
    "the of and to in a is that for it as was with be by on not he this are "
    "or his from at which but have an they you were her she all would there "
    "their we him been has when who will no more if out so up said what its "
    "about than into them can only other time new some could these two may "
    "first then do any like my now over such our man me even most made after "
    "also did many off before must well back through years where much your "
    "way down should because each just those people how too little state good"
).split()


def language_txt(size: int, seed: int = 0) -> bytes:
    """A Zipf-weighted word stream with sentence structure."""
    rng = _rng(seed)
    ranks = np.arange(1, len(_WORDS) + 1, dtype=np.float64)
    probs = (1.0 / ranks) / (1.0 / ranks).sum()
    out = io.StringIO()
    sentence_len = 0
    while out.tell() < size:
        word = _WORDS[int(rng.choice(len(_WORDS), p=probs))]
        if sentence_len == 0:
            word = word.capitalize()
        out.write(word)
        sentence_len += 1
        if sentence_len >= int(rng.integers(6, 18)):
            out.write(". ")
            sentence_len = 0
        else:
            out.write(" ")
    return out.getvalue().encode("ascii")[:size]


# ---------------------------------------------------------------------------
# Registry + directory materialization

GENERATORS: dict[str, Callable[[int, int], bytes]] = {
    "em": em_tif,
    "tokamak": tokamak_npz,
    "lung": lung_nii,
    "astro": astro_fits,
    "imagenet": imagenet_jpg,
    "language": language_txt,
}


def sample_files(
    key: str, count: int, *, size: int | None = None, seed: int = 0
) -> list[bytes]:
    """``count`` in-memory sample files of dataset ``key`` (for the
    lzbench-style evaluations, §VII-D's "we sample a few files")."""
    spec = get_spec(key)
    gen = GENERATORS[key]
    size = size or spec.gen_avg_bytes
    return [gen(size, seed + i) for i in range(count)]


def generate_dataset(
    key: str,
    out_dir: Path | str,
    *,
    num_files: int | None = None,
    avg_file_size: int | None = None,
    num_dirs: int | None = None,
    seed: int = 0,
) -> DatasetSpec:
    """Materialize a reduced-scale synthetic dataset on disk.

    Files are spread across ``num_dirs`` class directories the way
    ImageNet's 2 002 directories are (``cls0000/file000.jpg``), so the
    metadata workload (readdir + stat storm, §II-B1) is represented.
    """
    spec = get_spec(key)
    gen = GENERATORS[key]
    out_dir = Path(out_dir)
    num_files = num_files or spec.gen_num_files
    avg_file_size = avg_file_size or spec.gen_avg_bytes
    num_dirs = num_dirs or min(max(spec.paper_num_dirs, 1), 4, num_files)
    rng = _rng(seed)
    for i in range(num_files):
        d = out_dir / f"cls{i % num_dirs:04d}"
        d.mkdir(parents=True, exist_ok=True)
        # ±25 % size jitter around the average, like real datasets.
        jitter = 0.75 + 0.5 * rng.random()
        size = max(int(avg_file_size * jitter), 64)
        (d / f"file{i:05d}.{spec.file_format}").write_bytes(
            gen(size, seed + i)
        )
    return spec


def list_datasets() -> list[str]:
    """Canonical keys of every Table II dataset, sorted."""
    return sorted(TABLE2)
