"""Cross-validation — measured trace vs modeled devices.

Records a real training epoch's I/O through the live FanStore client
(every open/read/close/stat with wall-clock durations), then replays
the *identical* workload through the four calibrated device models.
This closes the loop between the repo's measured and modeled halves:
the replay on the FanStore model should land within a small factor of
the actual measured time, and the device ordering must match Table III.
"""

from __future__ import annotations

import pytest

from repro.bench.report import PaperComparison
from repro.simnet.devices import fanstore_local, fuse_over_ssd, lustre, ssd
from repro.simnet.trace import TraceRecorder, replay
from repro.training.loader import SyncLoader, list_training_files


def test_trace_crossvalidation(benchmark, em_store_raw, emit_report):
    recorder = TraceRecorder(em_store_raw.client)
    files = list_training_files(em_store_raw.client)

    def epoch():
        # the §II-B pattern: metadata scan then batched reads
        recorder.listdir("")
        for f in files:
            recorder.stat(f)
        loader = SyncLoader(recorder, files, batch_size=6, epochs=1)
        return sum(b.bytes_read for b in loader)

    total = benchmark.pedantic(epoch, rounds=1, iterations=1)
    assert total > 0
    trace = recorder.trace
    measured = trace.measured_seconds()

    models = {
        "fanstore (modeled)": fanstore_local(),
        "raw SSD (modeled)": ssd(),
        "FUSE over SSD (modeled)": fuse_over_ssd(),
        "Lustre (modeled)": lustre(),
    }
    replayed = {name: replay(trace, m) for name, m in models.items()}

    report = PaperComparison(
        "Trace cross-validation",
        "one real epoch's I/O trace replayed on the device models",
        columns=["device", "epoch I/O seconds", "vs measured"],
    )
    report.add_row("measured (this host)", f"{measured:.4f}", "1.0x")
    for name, t in replayed.items():
        report.add_row(name, f"{t:.4f}", f"{t / measured:.2f}x")
    report.add_note(
        f"trace: {len(trace)} events, "
        f"{trace.total_bytes('read')} bytes read"
    )
    emit_report(report)

    # Ordering must match Table III.
    assert replayed["raw SSD (modeled)"] <= replayed["FUSE over SSD (modeled)"]
    assert (
        replayed["FUSE over SSD (modeled)"] < replayed["Lustre (modeled)"]
    )
    # The FanStore model should be within an order of magnitude of the
    # real measured path (different hardware; shape, not absolutes).
    ratio = replayed["fanstore (modeled)"] / measured
    assert 0.05 < ratio < 20.0