"""Request tracing: span mechanics, and the chaos trace drill — one
read followed across three ranks through retry, replica failover, and
a degraded shared-FS re-read, reconstructed from per-rank JSONL."""

from __future__ import annotations

import pytest

from repro.comm.chaos import ChaosWorld, FaultPlan
from repro.comm.launcher import run_parallel
from repro.fanstore.daemon import _REPLY_TAG_BASE, DaemonConfig
from repro.fanstore.store import FanStore, FanStoreOptions
from repro.obs import (
    NULL_SPAN,
    TraceContext,
    Tracer,
    assemble_trace,
    format_trace,
    load_spans,
    trace_ids,
)
from repro.obs.metrics import ObservabilityError

RANKS = 3
#: requester / home / replica casting for the drill: rank 1 reads a
#: file homed on rank 2; with one extra ring partition, rank 0 holds
#: rank 2's block as the announced replica.
REQUESTER, HOME, REPLICA = 1, 2, 0

FAST = dict(
    request_timeout=0.4,
    max_retries=1,
    retry_backoff_base=0.01,
    retry_backoff_max=0.05,
)


class TestSpanMechanics:
    def test_root_span_has_no_parent_and_fresh_trace_id(self):
        tr = Tracer(rank=3)
        with tr.root("client.read") as span:
            assert span.parent_id is None
            assert span.trace_id.startswith("t3-")
            assert span.rank == 3
        assert span.duration_s is not None

    def test_child_spans_nest_through_the_thread_local_stack(self):
        tr = Tracer()
        with tr.root("outer") as outer:
            with tr.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        names = [s.name for s in tr.finished()]
        assert names == ["inner", "outer"]  # children close first

    def test_span_without_open_parent_is_null(self):
        tr = Tracer()
        assert tr.span("orphan") is NULL_SPAN
        assert not NULL_SPAN
        assert NULL_SPAN.context() is None
        assert NULL_SPAN.tag(x=1) is NULL_SPAN

    def test_maybe_root_respects_sampling(self):
        assert Tracer(sample=0.0).maybe_root("r") is NULL_SPAN
        span = Tracer(sample=1.0).maybe_root("r")
        assert span is not NULL_SPAN
        span.__enter__()
        span.__exit__(None, None, None)

    def test_maybe_root_continues_open_trace_even_unsampled(self):
        tr = Tracer(sample=0.0)
        with tr.root("outer") as outer:
            child = tr.maybe_root("continued")
            assert child is not NULL_SPAN
            with child:
                assert child.trace_id == outer.trace_id

    def test_exception_marks_span_error(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.root("boom"):
                raise ValueError("x")
        assert tr.finished()[0].error == "ValueError"

    def test_adopt_joins_remote_trace_and_survives_garbage(self):
        server = Tracer(rank=2)
        span = server.adopt(("trace-a", "span-b"), "daemon.serve.fetch")
        with span:
            assert span.trace_id == "trace-a"
            assert span.parent_id == "span-b"
        for garbage in (None, "x", (1, 2), ("a",), ("a", "b", "c"), 17):
            assert server.adopt(garbage, "n") is NULL_SPAN

    def test_context_wire_round_trip(self):
        ctx = TraceContext("t", "s")
        assert TraceContext.from_wire(ctx.as_wire()).trace_id == "t"

    def test_sample_range_checked(self):
        with pytest.raises(ObservabilityError):
            Tracer(sample=1.5)

    def test_finished_buffer_is_bounded(self):
        tr = Tracer(max_spans=4)
        for i in range(10):
            with tr.root(f"s{i}"):
                pass
        names = [s.name for s in tr.finished()]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_export_jsonl_handles_non_json_tags(self, tmp_path):
        tr = Tracer()
        with tr.root("r", path=tmp_path):  # a Path is not JSON-able
            pass
        spans = load_spans([tr.export_jsonl(tmp_path / "t.jsonl")])
        assert spans[0]["tags"]["path"] == str(tmp_path)


class TestReconstruction:
    def _spans(self):
        tr = Tracer(rank=0)
        with tr.root("read") as root:
            with tr.span("fetch"):
                pass
            with tr.span("decompress"):
                pass
        return [s.to_dict() for s in tr.finished()], root.trace_id

    def test_assemble_builds_the_tree(self):
        spans, tid = self._spans()
        tree = assemble_trace(spans, tid)
        assert tree["span"]["name"] == "read"
        assert sorted(c["span"]["name"] for c in tree["children"]) == [
            "decompress", "fetch",
        ]

    def test_orphans_attach_to_root(self):
        spans, tid = self._spans()
        spans.append({
            "kind": "span", "trace_id": tid, "span_id": "z-1",
            "parent_id": "missing", "name": "lost", "rank": 9,
            "start_s": 1e12, "duration_s": 0.0, "error": None, "tags": {},
        })
        tree = assemble_trace(spans, tid)
        assert "lost" in [c["span"]["name"] for c in tree["children"]]

    def test_unknown_trace_raises(self):
        spans, _ = self._spans()
        with pytest.raises(ObservabilityError):
            assemble_trace(spans, "nope")

    def test_format_trace_renders_indented_lines(self):
        spans, tid = self._spans()
        text = format_trace(assemble_trace(spans, tid))
        lines = text.splitlines()
        assert lines[0].startswith("read rank=0")
        assert all(line.startswith("  ") for line in lines[1:])


class TestChaosTraceDrill:
    """The ISSUE acceptance drill: one ``client.read()`` that traverses
    retry → replica failover → degraded shared-FS read must leave ONE
    trace whose spans name every hop and rank, reconstructable from the
    per-rank JSONL exports."""

    def test_trace_follows_read_across_retry_failover_degraded(
        self, prepared_dataset, originals, tmp_path
    ):
        # Drop the first three reply-band messages addressed to the
        # requester: the home rank's two replies (attempt 0 and the
        # retry) and then the replica's one reply. The fourth tier —
        # the degraded shared-FS re-read — needs no reply to lose.
        plan = FaultPlan(101).drop(
            min_tag=_REPLY_TAG_BASE, dest=REQUESTER, times=3
        )
        world = ChaosWorld(RANKS, plan)
        config = DaemonConfig(
            extra_partition_budget=1,  # ring copy: rank 0 replicates rank 2
            trace_sample=1.0,
            **FAST,
        )
        out = tmp_path

        def body(comm):
            opts = FanStoreOptions(comm=comm, config=config)
            with FanStore(prepared_dataset, opts) as fs:
                comm.barrier()  # everyone loaded and serving
                result = None
                if comm.rank == REQUESTER:
                    target = next(
                        rec.path
                        for rec in sorted(
                            fs.daemon.metadata.walk_files(),
                            key=lambda r: r.path,
                        )
                        if rec.home_rank == HOME
                        and rec.path not in fs.daemon.backend
                    )
                    data = fs.client.read_file(target)
                    assert data == originals[target]
                    stats = fs.daemon.stats
                    result = (
                        stats.retries,
                        stats.failovers,
                        stats.degraded_reads,
                    )
                comm.barrier()  # serving ranks outlive the drill read
                fs.tracer.export_jsonl(out / f"rank{comm.rank}.traces.jsonl")
                return result

        results = run_parallel(body, RANKS, world=world, timeout=120)
        assert plan.stats.dropped == 3
        retries, failovers, degraded = results[REQUESTER]
        assert retries == 1  # one lost reply re-asked at the home rank
        assert failovers == 1  # the fetch left the home rank once
        assert degraded == 1  # the floor of the ladder answered

        spans = load_spans(
            out / f"rank{r}.traces.jsonl" for r in range(RANKS)
        )
        degraded_spans = [s for s in spans if s["name"] == "fetch.degraded"]
        assert len(degraded_spans) == 1
        tid = degraded_spans[0]["trace_id"]

        mine = [s for s in spans if s["trace_id"] == tid]
        by_name = {}
        for s in mine:
            by_name.setdefault(s["name"], []).append(s)

        # the root: the requester's observed open
        (root,) = by_name["client.read"]
        assert root["rank"] == REQUESTER
        assert root["parent_id"] is None

        # retry tier: two rpc.fetch attempts at the home rank, both
        # errored (their replies were dropped), then one attempt at the
        # replica — every hop a sibling span naming its destination
        rpc = by_name["rpc.fetch"]
        home_attempts = sorted(
            s["tags"]["attempt"] for s in rpc if s["tags"]["dest"] == HOME
        )
        assert home_attempts == [0, 1]
        assert [s["tags"]["dest"] for s in rpc].count(REPLICA) == 1
        assert all(s["error"] for s in rpc)  # every reply was lost
        assert all(s["rank"] == REQUESTER for s in rpc)

        # failover tier: the replica attempt wrapped in its own span
        (replica_span,) = by_name["fetch.replica"]
        assert replica_span["tags"]["rank"] == REPLICA

        # server side: the home rank served twice, the replica once —
        # their spans joined the requester's trace via the wire context
        serves = by_name["daemon.serve.fetch"]
        assert sorted(s["rank"] for s in serves) == [REPLICA, HOME, HOME]
        rpc_ids = {s["span_id"] for s in rpc}
        assert all(s["parent_id"] in rpc_ids for s in serves)

        # floor: the degraded shared-FS read happened on the requester
        assert degraded_spans[0]["rank"] == REQUESTER

        # the whole journey assembles into one tree under the root and
        # renders with every hop visible
        assert tid in trace_ids(spans)
        tree = assemble_trace(spans, tid)
        assert tree["span"]["span_id"] == root["span_id"]
        text = format_trace(tree)
        for name in (
            "client.read",
            "rpc.fetch",
            "fetch.replica",
            "fetch.degraded",
            "daemon.serve.fetch",
        ):
            assert name in text
