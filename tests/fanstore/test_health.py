"""Unit drills for the gray-failure primitives: circuit-breaker FSM,
deadline arithmetic, admission-queue shedding, brownout verification
skips, and the client side of overload replies. State machines run
against fake clocks — no sleeps; only the request-exchange tests touch
a real two-rank world."""

from __future__ import annotations

import errno
import math
import time

import pytest

from repro.comm.communicator import ANY_SOURCE
from repro.comm.deadline import Deadline, wire_deadline
from repro.comm.launcher import run_parallel
from repro.errors import DeadlineExpiredError, ServerOverloadedError
from repro.fanstore.daemon import (
    _OVERLOAD,
    TAG_DAEMON,
    DaemonConfig,
    FanStoreDaemon,
)
from repro.fanstore.health import (
    AdmissionQueue,
    BreakerState,
    CircuitBreaker,
    HealthTracker,
)
from repro.fanstore.layout import FileStat, blob_crc32
from repro.fanstore.metadata import FileRecord
from repro.fanstore.wire import decode_request


class FakeClock:
    def __init__(self, t: float = 100.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def breaker(clock, **kw):
    kw.setdefault("failure_threshold", 3)
    kw.setdefault("slow_threshold", 3)
    kw.setdefault("reset_after", 1.0)
    return CircuitBreaker(clock=clock, **kw)


class TestCircuitBreakerFSM:
    def test_starts_closed_and_allows(self):
        br = breaker(FakeClock())
        assert br.state is BreakerState.CLOSED
        assert br.allow()
        assert br.opens == 0

    def test_consecutive_failures_trip(self):
        br = breaker(FakeClock())
        br.record_failure()
        br.record_failure()
        assert br.state is BreakerState.CLOSED  # below threshold
        br.record_failure()
        assert br.state is BreakerState.OPEN
        assert not br.allow()
        assert br.opens == 1

    def test_success_clears_strikes(self):
        br = breaker(FakeClock())
        br.record_failure()
        br.record_failure()
        br.record_success()
        br.record_failure()
        br.record_failure()
        assert br.state is BreakerState.CLOSED  # counter restarted

    def test_consecutive_slow_signals_trip(self):
        br = breaker(FakeClock(), slow_threshold=2)
        br.record_slow()
        assert br.state is BreakerState.CLOSED
        br.record_slow()
        assert br.state is BreakerState.OPEN

    def test_cooloff_half_opens_and_counts_probes(self):
        clock = FakeClock()
        br = breaker(clock)
        for _ in range(3):
            br.record_failure()
        assert not br.allow()
        clock.advance(0.99)
        assert not br.allow()  # still cooling off
        clock.advance(0.02)
        assert br.state is BreakerState.HALF_OPEN
        assert br.allow()
        assert br.probes == 1

    def test_probe_success_closes(self):
        clock = FakeClock()
        br = breaker(clock)
        for _ in range(3):
            br.record_failure()
        clock.advance(1.5)
        assert br.allow()
        br.record_success()
        assert br.state is BreakerState.CLOSED
        assert br.allow() and br.probes == 1  # no new probe once closed

    def test_probe_failure_retrips_immediately(self):
        clock = FakeClock()
        br = breaker(clock)
        for _ in range(3):
            br.record_failure()
        clock.advance(1.5)
        assert br.allow()
        br.record_failure()  # one strike is enough in HALF_OPEN
        assert br.state is BreakerState.OPEN
        assert br.opens == 2
        # and the cool-off restarted from the re-trip
        clock.advance(0.5)
        assert not br.allow()

    def test_slow_probe_also_retrips(self):
        clock = FakeClock()
        br = breaker(clock)
        for _ in range(3):
            br.record_slow()
        clock.advance(1.5)
        assert br.allow()
        br.record_slow()
        assert br.state is BreakerState.OPEN

    def test_force_open_is_idempotent_on_the_open_counter(self):
        clock = FakeClock()
        br = breaker(clock)
        br.force_open()
        assert br.state is BreakerState.OPEN and br.opens == 1
        clock.advance(0.8)
        br.force_open()  # restart, not a new transition
        assert br.opens == 1
        clock.advance(0.8)  # 1.6 since first, 0.8 since restart
        assert br.state is BreakerState.OPEN

    def test_half_open_skips_the_cooloff(self):
        br = breaker(FakeClock())
        br.force_open()
        br.half_open()
        assert br.state is BreakerState.HALF_OPEN
        assert br.allow() and br.probes == 1

    def test_half_open_noop_when_closed(self):
        br = breaker(FakeClock())
        br.half_open()
        assert br.state is BreakerState.CLOSED

    @pytest.mark.parametrize(
        "kw", [dict(failure_threshold=0), dict(slow_threshold=0),
               dict(reset_after=-1.0)]
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            CircuitBreaker(**kw)


class TestHealthTracker:
    def tracker(self, clock=None, **kw):
        return HealthTracker(0, clock=clock or FakeClock(), **kw)

    def test_ewma_and_quantile(self):
        h = self.tracker(ewma_alpha=0.5)
        assert h.ewma(1) is None
        assert h.quantile(1, 0.95, default=0.25) == 0.25
        h.observe(1, 0.1)
        h.observe(1, 0.3)
        assert h.ewma(1) == pytest.approx(0.2)
        for v in (0.2, 0.4, 0.5):
            h.observe(1, v)
        assert h.quantile(1, 0.0, default=0.0) == pytest.approx(0.1)
        assert h.quantile(1, 1.0, default=0.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            h.quantile(1, 1.5, default=0.0)

    def test_failures_open_and_fire_callback(self):
        h = self.tracker()
        opened = []
        h.on_open = opened.append
        for _ in range(3):
            h.failure(2)
        assert h.state(2) is BreakerState.OPEN
        assert not h.allow(2)
        assert h.open_peers() == [2]
        assert opened == [2]

    def test_latency_threshold_turns_observes_into_slow_strikes(self):
        h = self.tracker(latency_threshold=0.05, slow_threshold=3)
        for _ in range(3):
            h.observe(3, 0.2)
        assert h.state(3) is BreakerState.OPEN

    def test_note_slow_strikes(self):
        h = self.tracker(slow_threshold=2)
        h.note_slow(1)
        h.note_slow(1)
        assert h.state(1) is BreakerState.OPEN

    def test_allow_counts_probes_via_callback(self):
        clock = FakeClock()
        h = self.tracker(clock=clock, reset_after=1.0)
        probes = []
        h.on_probe = probes.append
        for _ in range(3):
            h.failure(1)
        clock.advance(2.0)
        assert h.allow(1)
        assert probes == [1]
        # state() must not count probes
        assert h.state(1) is BreakerState.HALF_OPEN
        assert probes == [1]

    def test_membership_reconciliation_hooks(self):
        h = self.tracker()
        h.force_open(4)
        assert not h.allow(4)
        h.half_open(4)
        assert h.allow(4)  # the rejoin probe

    def test_validation(self):
        with pytest.raises(ValueError):
            HealthTracker(0, ewma_alpha=0.0)
        with pytest.raises(ValueError):
            HealthTracker(0, window=0)


class TestDeadline:
    def test_after_and_remaining(self):
        clock = FakeClock(50.0)
        d = Deadline.after(2.0, clock=clock)
        assert d.remaining() == pytest.approx(2.0)
        assert not d.expired()
        clock.advance(1.5)
        assert d.remaining() == pytest.approx(0.5)
        clock.advance(1.0)
        assert d.expired()
        assert d.remaining() == 0.0  # never negative

    def test_after_rejects_negative(self):
        with pytest.raises(ValueError):
            Deadline.after(-0.1)

    def test_cap(self):
        clock = FakeClock(0.0)
        d = Deadline.after(1.0, clock=clock)
        assert d.cap(5.0) == pytest.approx(1.0)
        assert d.cap(0.25) == pytest.approx(0.25)
        assert d.cap(None) == pytest.approx(1.0)

    def test_check_raises_typed_oserror(self):
        clock = FakeClock(0.0)
        d = Deadline.after(0.5, clock=clock)
        d.check("still fine", path="a/b")
        clock.advance(1.0)
        with pytest.raises(DeadlineExpiredError) as ei:
            d.check("budget spent", path="a/b")
        assert isinstance(ei.value, (OSError, TimeoutError))
        assert ei.value.errno == errno.ETIMEDOUT
        assert ei.value.filename == "a/b"

    @pytest.mark.parametrize(
        "raw,expected",
        [
            (12.5, 12.5),
            (3, 3.0),
            (True, None),  # a bool is not a deadline
            (float("nan"), None),
            (float("inf"), None),
            (-float("inf"), None),
            ("soon", None),
            (None, None),
        ],
    )
    def test_wire_deadline_validation(self, raw, expected):
        got = wire_deadline(raw)
        if expected is None:
            assert got is None
        else:
            assert got == pytest.approx(expected) and isinstance(got, float)
            assert not isinstance(got, bool)
            assert not math.isnan(got)


class TestAdmissionQueue:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)

    def test_fifo_under_capacity(self):
        q = AdmissionQueue(4)
        for name in ("a", "b", "c"):
            assert q.push(name, None) == []
        assert [q.pop(), q.pop(), q.pop(), q.pop()] == ["a", "b", "c", None]

    def test_overflow_sheds_nearest_deadline_first(self):
        q = AdmissionQueue(2)
        q.push("late", 100.0)
        q.push("soon", 10.0)
        shed = q.push("mid", 50.0)
        assert shed == ["soon"]  # closest to expiry goes first
        assert len(q) == 2

    def test_new_item_itself_can_be_shed(self):
        q = AdmissionQueue(2)
        q.push("a", 100.0)
        q.push("b", 200.0)
        assert q.push("urgent-but-doomed", 1.0) == ["urgent-but-doomed"]
        assert [q.pop(), q.pop()] == ["a", "b"]

    def test_no_deadline_sheds_last_oldest_first(self):
        q = AdmissionQueue(2)
        q.push("old-nodl", None)
        q.push("new-nodl", None)
        shed = q.push("deadlined", 5.0)
        # entries without a deadline are shed after deadlined ones,
        # oldest arrival first among themselves — but never before a
        # deadlined entry
        assert shed == ["deadlined"]
        shed = q.push("another", None)
        assert shed == ["old-nodl"]

    def test_service_order_stays_fifo_after_shedding(self):
        q = AdmissionQueue(3)
        q.push("a", 30.0)
        q.push("b", 10.0)
        q.push("c", 20.0)
        q.push("d", 40.0)  # sheds "b"
        assert [q.pop(), q.pop(), q.pop()] == ["a", "c", "d"]


class TestBrownoutVerificationSkip:
    def _record(self, payload: bytes) -> FileRecord:
        return FileRecord(
            path="data/x",
            stat=FileStat(st_size=len(payload)).with_digest(
                blob_crc32(payload)
            ),
            compressor_id=1,
            compressed_size=len(payload),
            home_rank=0,
            partition_id=0,
        )

    def test_first_verification_always_runs(self):
        daemon = FanStoreDaemon()
        rec = self._record(b"payload")
        daemon._brownout_until = time.monotonic() + 60.0
        # never verified before: brownout must NOT skip the check
        assert not daemon._blob_ok(rec, b"corrupt")
        assert daemon.stats.brownout_skipped_verifies == 0

    def test_reverification_skipped_under_brownout(self):
        daemon = FanStoreDaemon()
        rec = self._record(b"payload")
        assert daemon._blob_ok(rec, b"payload")  # verified once, clean
        daemon._brownout_until = time.monotonic() + 60.0
        assert daemon._blob_ok(rec, b"anything goes")
        assert daemon.stats.brownout_skipped_verifies == 1
        # brownout over: the check is back
        daemon._brownout_until = 0.0
        assert not daemon._blob_ok(rec, b"anything goes")
        assert daemon.stats.brownout_skipped_verifies == 1


FAST = dict(
    request_timeout=0.3,
    max_retries=1,
    retry_backoff_base=0.01,
    retry_backoff_max=0.02,
    retry_jitter=0.0,
)


def _serve_until_done(comm, reply=None):
    """Stub server: answer every daemon request with ``reply`` (or
    swallow it when None) until a 'done' kind arrives."""
    while True:
        payload, src, _tag = comm.recv_with_status(
            ANY_SOURCE, TAG_DAEMON, timeout=30
        )
        kind, body = payload
        if kind == "done":
            return None
        if reply is not None:
            reply_tag = decode_request(body).reply_tag
            comm.send(reply, src, reply_tag)


class TestOverloadReplies:
    def test_every_attempt_shed_raises_server_overloaded(self):
        def body(comm):
            if comm.rank == 1:
                return _serve_until_done(comm, reply=(_OVERLOAD, 0.01))
            daemon = FanStoreDaemon(comm, config=DaemonConfig(**FAST))
            with pytest.raises(ServerOverloadedError) as ei:
                daemon._request("fetch", "some/path", 1)
            comm.send(("done", None), 1, TAG_DAEMON)
            exc = ei.value
            return (
                exc.errno,
                exc.retry_after_s,
                daemon.stats.overload_backoffs,
                daemon.stats.retries,
            )

        res = run_parallel(body, 2, timeout=30)[0]
        err, retry_after, backoffs, retries = res
        assert err == errno.EAGAIN
        assert retry_after == pytest.approx(0.01)
        assert backoffs == 2  # both attempts were shed
        assert retries == 1

    def test_overload_trips_the_breaker_like_a_failure(self):
        def body(comm):
            if comm.rank == 1:
                return _serve_until_done(comm, reply=(_OVERLOAD, 0.0))
            cfg = DaemonConfig(breaker_failure_threshold=2, **FAST)
            daemon = FanStoreDaemon(comm, config=cfg)
            with pytest.raises(ServerOverloadedError):
                daemon._request("fetch", "p", 1)
            comm.send(("done", None), 1, TAG_DAEMON)
            return daemon.health.state(1), daemon.stats.breaker_opens

        state, opens = run_parallel(body, 2, timeout=30)[0]
        assert state is BreakerState.OPEN
        assert opens == 1


class TestDeadlineBudgetedRetries:
    def test_deadline_bounds_the_whole_retry_ladder(self):
        def body(comm):
            if comm.rank == 1:
                return _serve_until_done(comm, reply=None)  # never answer
            cfg = DaemonConfig(
                request_timeout=0.15,
                max_retries=8,
                retry_backoff_base=0.01,
                retry_backoff_max=0.02,
                retry_jitter=0.0,
            )
            daemon = FanStoreDaemon(comm, config=cfg)
            t0 = time.perf_counter()
            with pytest.raises(DeadlineExpiredError) as ei:
                daemon._request(
                    "fetch", "p", 1, deadline=Deadline.after(0.4)
                )
            elapsed = time.perf_counter() - t0
            comm.send(("done", None), 1, TAG_DAEMON)
            return ei.value.errno, elapsed, daemon.stats.deadline_aborts

        err, elapsed, aborts = run_parallel(body, 2, timeout=30)[0]
        assert err == errno.ETIMEDOUT
        # 9 stacked timeouts would be >1.3 s; the deadline caps the lot
        assert elapsed < 1.0
        assert aborts == 1
