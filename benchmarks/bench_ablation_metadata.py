"""Ablation — metadata placement (§IV-C1's design choice).

FanStore replicates all metadata into RAM on every node; the
alternative the paper displaces is a central metadata server every
stat() round-trips to. Measured: the real RAM-table stat rate on this
host. Modeled: the central-server startup storm at the paper's scales.
"""

from __future__ import annotations

import pytest

from repro.baselines.sharedfs import default_lustre
from repro.bench.report import PaperComparison
from repro.training.loader import list_training_files


def test_ablation_metadata_ram_vs_server(benchmark, em_store_raw,
                                         emit_report):
    client = em_store_raw.client
    files = list_training_files(client)

    def stat_storm():
        # Every I/O thread stats every file (§II-B1's startup pattern).
        return sum(client.stat(p).st_size for p in files)

    total = benchmark(stat_storm)
    assert total > 0
    ram_stat_rate = len(files) / benchmark.stats.stats.mean

    shared = default_lustre()
    mds_rate = shared.mds_ops_per_second

    report = PaperComparison(
        "Ablation (metadata placement)",
        "stat() service rate: replicated RAM table vs central MDS",
        columns=["design", "stat/s", "512-node ImageNet startup"],
    )
    imagenet_scan = 512 * 2 * (1_300_000 + 2_002)
    report.add_row(
        "RAM table per node (FanStore)",
        round(ram_stat_rate),
        # each node scans independently: wall time = one node's scan
        f"{1_300_000 / ram_stat_rate:.0f} s",
    )
    report.add_row(
        "central metadata server (Lustre-like)",
        round(mds_rate),
        f"{imagenet_scan / mds_rate / 3600:.0f} h",
    )
    report.add_note("the central server serializes every node's scan; "
                    "replication makes it embarrassingly parallel")
    emit_report(report)

    # RAM beats an MDS round-trip by orders of magnitude.
    assert ram_stat_rate > 10 * mds_rate