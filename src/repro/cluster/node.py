"""Compute-node and machine descriptions."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.simnet.devices import StorageModel
from repro.simnet.network import InterconnectModel


@dataclass(frozen=True)
class NodeSpec:
    """One compute node: accelerators plus a node-local burst buffer.

    ``burst_buffer_bytes`` is the *M* of the paper's Figure 1 constraint
    ``N × M ≥ |T|``; ``arch`` selects the compressor performance scale
    ("skx" or "power9").
    """

    name: str
    processors: int  # GPUs or CPU sockets usable for training
    processor_name: str
    burst_buffer_bytes: int
    storage: StorageModel
    arch: str = "skx"

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise SimulationError(f"{self.name}: processors must be >= 1")
        if self.burst_buffer_bytes <= 0:
            raise SimulationError(f"{self.name}: burst buffer must be positive")


@dataclass(frozen=True)
class MachineSpec:
    """A cluster: homogeneous nodes on one fabric (§VII-A platforms)."""

    name: str
    nodes: int
    node: NodeSpec
    interconnect: InterconnectModel

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise SimulationError(f"{self.name}: nodes must be >= 1")

    @property
    def total_processors(self) -> int:
        return self.nodes * self.node.processors

    @property
    def total_burst_buffer_bytes(self) -> int:
        return self.nodes * self.node.burst_buffer_bytes

    def subset(self, nodes: int) -> "MachineSpec":
        """The same machine restricted to ``nodes`` nodes (scaling sweeps)."""
        if not 1 <= nodes <= self.nodes:
            raise SimulationError(
                f"{self.name}: cannot take {nodes} of {self.nodes} nodes"
            )
        return MachineSpec(
            name=self.name, nodes=nodes, node=self.node,
            interconnect=self.interconnect,
        )
