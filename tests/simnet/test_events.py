"""The discrete-event engine: ordering, processes, resources, barriers."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simnet.events import Simulator


class TestTimeAndOrdering:
    def test_timeouts_fire_in_order(self):
        sim = Simulator()
        log = []

        def proc(delay, name):
            yield sim.timeout(delay)
            log.append((name, sim.now))

        sim.process(proc(2.0, "b"))
        sim.process(proc(1.0, "a"))
        sim.process(proc(3.0, "c"))
        sim.run()
        assert log == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_equal_times_fifo(self):
        sim = Simulator()
        log = []

        def proc(name):
            yield sim.timeout(1.0)
            log.append(name)

        for n in "abc":
            sim.process(proc(n))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_run_until(self):
        sim = Simulator()
        log = []

        def proc():
            for _ in range(10):
                yield sim.timeout(1.0)
                log.append(sim.now)

        sim.process(proc())
        t = sim.run(until=3.5)
        assert t == 3.5
        assert log == [1.0, 2.0, 3.0]

    def test_run_until_past_rejected(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)

        sim.process(proc())
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=0.5)

    def test_nested_processes_return_values(self):
        sim = Simulator()

        def child():
            yield sim.timeout(1.0)
            return 42

        def parent():
            value = yield sim.process(child())
            return value + 1

        p = sim.process(parent())
        sim.run()
        assert p.value == 43
        assert sim.now == 1.0

    def test_yielding_non_event_raises(self):
        sim = Simulator()

        def bad():
            yield "not an event"

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()


class TestEvents:
    def test_manual_trigger_resumes_waiter(self):
        sim = Simulator()
        gate = sim.event()
        log = []

        def waiter():
            value = yield gate
            log.append((value, sim.now))

        def opener():
            yield sim.timeout(5.0)
            gate.trigger("open")

        sim.process(waiter())
        sim.process(opener())
        sim.run()
        assert log == [("open", 5.0)]

    def test_double_trigger_raises(self):
        sim = Simulator()
        ev = sim.event()
        ev.trigger()
        with pytest.raises(SimulationError):
            ev.trigger()

    def test_all_of_waits_for_all(self):
        sim = Simulator()
        done = []

        def proc(d):
            yield sim.timeout(d)
            return d

        both = sim.all_of([sim.process(proc(1.0)), sim.process(proc(4.0))])

        def waiter():
            yield both
            done.append(sim.now)

        sim.process(waiter())
        sim.run()
        assert done == [4.0]

    def test_all_of_empty_triggers_immediately(self):
        sim = Simulator()
        fired = []

        def waiter():
            yield sim.all_of([])
            fired.append(sim.now)

        sim.process(waiter())
        sim.run()
        assert fired == [0.0]


class TestResources:
    def test_serializes_holders(self):
        sim = Simulator()
        res = sim.resource(1)
        spans = []

        def worker(name):
            grant = res.request()
            yield grant
            start = sim.now
            yield sim.timeout(2.0)
            res.release()
            spans.append((name, start, sim.now))

        for n in "abc":
            sim.process(worker(n))
        sim.run()
        assert spans == [("a", 0.0, 2.0), ("b", 2.0, 4.0), ("c", 4.0, 6.0)]

    def test_capacity_allows_parallelism(self):
        sim = Simulator()
        res = sim.resource(2)
        ends = []

        def worker():
            yield res.request()
            yield sim.timeout(1.0)
            res.release()
            ends.append(sim.now)

        for _ in range(4):
            sim.process(worker())
        sim.run()
        assert ends == [1.0, 1.0, 2.0, 2.0]

    def test_release_without_request_raises(self):
        sim = Simulator()
        res = sim.resource(1)
        with pytest.raises(SimulationError):
            res.release()

    def test_queue_length_visible(self):
        sim = Simulator()
        res = sim.resource(1)
        observed = []

        def holder():
            yield res.request()
            yield sim.timeout(1.0)
            observed.append(res.queue_length)
            res.release()

        def waiter():
            yield res.request()
            res.release()

        sim.process(holder())
        sim.process(waiter())
        sim.run()
        assert observed == [1]

    def test_bad_capacity(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.resource(0)


class TestBarrier:
    def test_releases_at_slowest(self):
        sim = Simulator()
        bar = sim.barrier(3)
        crossings = []

        def proc(delay):
            yield sim.timeout(delay)
            yield bar.wait()
            crossings.append(sim.now)

        for d in (1.0, 5.0, 3.0):
            sim.process(proc(d))
        sim.run()
        assert crossings == [5.0, 5.0, 5.0]

    def test_reusable_across_rounds(self):
        sim = Simulator()
        bar = sim.barrier(2)
        log = []

        def proc(d):
            for round_ in range(3):
                yield sim.timeout(d)
                yield bar.wait()
                log.append((round_, sim.now))

        sim.process(proc(1.0))
        sim.process(proc(2.0))
        sim.run()
        rounds = [t for _, t in log]
        assert rounds == [2.0, 2.0, 4.0, 4.0, 6.0, 6.0]

    def test_bad_parties(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.barrier(0)


class TestQueueingTheoryValidation:
    def test_md1_mean_wait_matches_pollaczek_khinchine(self):
        """Validate the engine's Resource queueing against M/D/1 theory:
        Poisson arrivals (rate λ), deterministic service (time s),
        utilization ρ=λs ⇒ mean wait in queue Wq = ρ·s / (2(1−ρ)).
        A DES whose queues are wrong cannot reproduce the Lustre
        contention results, so this is the engine's ground truth."""
        import numpy as np

        sim = Simulator()
        service = 1.0
        lam = 0.7  # ρ = 0.7
        rng = np.random.default_rng(42)
        n_jobs = 4000
        arrivals = np.cumsum(rng.exponential(1.0 / lam, n_jobs))
        server = sim.resource(1)
        waits = []

        def job(arrival_time):
            yield sim.timeout(arrival_time)
            queued_at = sim.now
            yield server.request()
            waits.append(sim.now - queued_at)
            yield sim.timeout(service)
            server.release()

        for t in arrivals:
            sim.process(job(float(t)))
        sim.run()

        rho = lam * service
        expected_wq = rho * service / (2.0 * (1.0 - rho))
        measured = float(np.mean(waits))
        # 4000 jobs: expect within ~15 % of theory
        assert measured == pytest.approx(expected_wq, rel=0.15)
