#!/usr/bin/env python3
"""Weak scaling to 512 nodes: FanStore vs the shared file system.

Drives the discrete-event cluster model through the Figure 9 protocol
for all three panels and prints the efficiency series plus the
Lustre metadata-storm startup times — the paper's headline scalability
story, regenerated in a few seconds of simulation.

Run: ``python examples/scale_out.py``
"""

from __future__ import annotations

from repro.cluster import cpu, gtx
from repro.compressors.profiles import get_profile
from repro.training import (
    SimJob,
    resnet50,
    simulate_run,
    srgan,
    weak_scaling_sweep,
)


def panel(title: str, reports, baseline_nodes: int = 1) -> None:
    base = reports[baseline_nodes]
    print(f"\n== {title} ==")
    print(f"   {'nodes':>6} {'iter (s)':>10} {'efficiency':>11} "
          f"{'remote reads':>13}")
    for n, rep in sorted(reports.items()):
        print(
            f"   {n:>6} {rep.mean_iteration_seconds:>10.3f} "
            f"{rep.weak_scaling_efficiency(base):>10.1%} "
            f"{rep.remote_fraction:>12.0%}"
        )


def main() -> None:
    print("Figure 9 reproduction (discrete-event model, calibrated to")
    print("the paper's Table III/VI device constants)")

    panel(
        "9(a) SRGAN on GTX, lzsse8 via FanStore (paper: 97.9% @ 16 nodes)",
        weak_scaling_sweep(
            gtx(), srgan(), [1, 2, 4, 8, 16],
            compressor=get_profile("lzsse8"), iterations=8,
        ),
    )

    panel(
        "9(b) ResNet-50 on GTX via FanStore (paper: 90.4% @ 16 nodes)",
        weak_scaling_sweep(gtx(), resnet50(), [1, 2, 4, 8, 16],
                           iterations=8),
    )

    panel(
        "9(c) ResNet-50 on CPU via FanStore (paper: 92.2% @ 512 nodes)",
        weak_scaling_sweep(cpu(), resnet50(), [1, 8, 64, 256, 512],
                           iterations=4),
    )

    print("\n== the shared-file-system alternative ==")
    for nodes in (64, 512):
        rep = simulate_run(
            SimJob(
                machine=cpu(), app=resnet50(), nodes=nodes,
                io_path="lustre", iterations=2,
                dataset_files=1_000 * nodes,
            )
        )
        hours = rep.startup_seconds / 3600
        print(f"   Lustre @ {nodes:>3} nodes: startup metadata storm "
              f"{hours:>6.1f} h, then {rep.mean_iteration_seconds:.2f} "
              f"s/iter")
    print("\n   (the paper's 512-node Lustre run 'ran for one hour")
    print("   without starting training' — the storm above is why)")


if __name__ == "__main__":
    main()
