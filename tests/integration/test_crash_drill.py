"""The crash-consistency acceptance drill.

A writer rank is killed — deterministically, at *every* registered
crash point — and relaunched over the same local directories. The
restarted incarnation must recover with zero acknowledged-write loss
(every acked byte readable, byte-exact), no torn or quarantined bytes,
no orphaned tmp files, and a clean scrub. A second family of drills
crashes the *recovery pass itself* and restarts again (recovery must be
idempotent), and a multi-rank drill has the crashed rank rejoin the
cluster through the membership handshake, its journalled outputs
served to peers afterwards.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.comm.chaos import ChaosWorld, FaultPlan
from repro.comm.launcher import run_parallel
from repro.errors import FileNotFoundInStoreError
from repro.fanstore.crash import CRASH_POINTS, CrashPlan, SimulatedCrashError
from repro.fanstore.daemon import DaemonConfig
from repro.fanstore.journal import JournalConfig
from repro.fanstore.membership import MembershipConfig, RankState
from repro.fanstore.store import FanStore, FanStoreOptions

SEEDS = (8, 88, 888)
seeds = pytest.mark.parametrize("seed", SEEDS, ids=[f"seed{s}" for s in SEEDS])
points = pytest.mark.parametrize("point", CRASH_POINTS)

#: crash points that fire during restart recovery, not during writes
RECOVERY_POINTS = tuple(p for p in CRASH_POINTS if p.startswith("recovery."))

#: tiny segments so a modest write burst exercises rotation and
#: checkpoint compaction (the maintenance crash points)
JCFG = JournalConfig(
    segment_max_bytes=4096,
    segment_max_records=6,
    max_segments=2,
    embed_payload_max=1024,
    low_watermark_bytes=0,  # CI filesystems are small; the watermark
)                           # path has its own unit tests

NUM_WRITES = 18


def _payloads(seed: int) -> dict[str, bytes]:
    """Seeded output files straddling the embed-payload boundary."""
    rng = random.Random(seed * 7919)
    return {
        f"out/f{i:02d}.bin": rng.randbytes(rng.choice((64, 700, 3000)))
        for i in range(NUM_WRITES)
    }


def _options(tmp_path, **extra) -> FanStoreOptions:
    return FanStoreOptions(
        local_dir=tmp_path / "local", journal_config=JCFG, **extra
    )


def _no_tmp_orphans(tmp_path) -> bool:
    local = tmp_path / "local"
    return not list(local.glob("*.tmp")) and not list(
        (local / "journal").glob("*.tmp")
    )


class TestCrashPointSweep:
    """Every registered crash point × three seeds, single rank."""

    @seeds
    @points
    def test_restart_recovers_every_acked_write(
        self, point, seed, prepared_dataset, tmp_path
    ):
        rng = random.Random(seed)
        payloads = _payloads(seed)
        plan = CrashPlan(seed).crash_at(
            point, skip=rng.randrange(3) if point.startswith(
                ("journal.intent", "apply.", "journal.commit")
            ) else 0,
        )

        # -- incarnation 1: write until the plan kills the process ------
        fs = FanStore(prepared_dataset, _options(tmp_path))
        acked: list[str] = []
        attempted: list[str] = []
        crashed = False
        with plan:
            for path, data in payloads.items():
                attempted.append(path)
                try:
                    fs.client.write_file(path, data)
                    acked.append(path)
                except SimulatedCrashError:
                    crashed = True
                    break
        assert crashed == (point not in RECOVERY_POINTS)
        # simulated kill -9: the incarnation is abandoned, not shut down

        # -- recovery points: the crash lands mid-recovery instead ------
        if not crashed:
            with plan:
                with pytest.raises(SimulatedCrashError):
                    FanStore(prepared_dataset, _options(tmp_path))
        assert plan.crashes_delivered == 1

        # -- final restart over the same directories --------------------
        fs2 = FanStore(prepared_dataset, _options(tmp_path))
        stats = fs2.daemon.jstats

        # zero acknowledged-write loss, byte-exact
        for path in acked:
            assert fs2.client.read_file(path) == payloads[path], (
                f"acked write {path} lost or torn after crash at {point}"
            )
        # the in-flight write is all-or-nothing: absent or byte-exact
        for path in set(attempted) - set(acked):
            try:
                assert fs2.client.read_file(path) == payloads[path]
            except FileNotFoundInStoreError:
                pass

        assert stats.recovery_quarantined == 0
        assert _no_tmp_orphans(tmp_path)
        assert fs2.scrub(repair=False).clean
        assert fs2.verify_integrity() > 0

        # the recovered store is fully writable again
        fs2.client.write_file("out/after.bin", b"post-recovery")
        assert fs2.client.read_file("out/after.bin") == b"post-recovery"
        fs2.shutdown()


class TestRecoveryIdempotence:
    """Crashing recovery N times in a row never loses acked writes."""

    @seeds
    def test_double_crash_during_recovery(
        self, seed, prepared_dataset, tmp_path
    ):
        payloads = _payloads(seed)
        fs = FanStore(prepared_dataset, _options(tmp_path))
        for path, data in payloads.items():
            fs.client.write_file(path, data)
        # abandoned un-shut-down: the journal tail is never checkpointed

        for point in ("recovery.scanned", "recovery.replayed"):
            with CrashPlan(seed).crash_at(point):
                with pytest.raises(SimulatedCrashError):
                    FanStore(prepared_dataset, _options(tmp_path))

        fs2 = FanStore(prepared_dataset, _options(tmp_path))
        for path, data in payloads.items():
            assert fs2.client.read_file(path) == data
        assert fs2.daemon.jstats.recovery_quarantined == 0
        assert _no_tmp_orphans(tmp_path)
        fs2.shutdown()


NODES = 3
DEAD = 2
_TAG_DONE = 0x0D11

MCFG = MembershipConfig(
    heartbeat_interval=0.05, suspect_after=0.3, dead_after=1.5
)
FAST = dict(
    request_timeout=0.4,
    max_retries=1,
    retry_backoff_base=0.01,
    retry_backoff_max=0.05,
)
POLL = 0.01


def _await(predicate, deadline_s, what):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(POLL)
    raise AssertionError(f"timed out waiting for {what}")


def _drain(comm):
    others = [r for r in range(NODES) if r != comm.rank]
    for other in others:
        comm.send("done", other, _TAG_DONE)
    for other in others:
        comm.recv(other, _TAG_DONE, timeout=120)


class TestCrashThenRejoin:
    """A rank crashes mid-write, restarts over its local state, and
    rejoins the cluster: journalled outputs survive and are served to
    peers, and every rank converges on the same ClusterView."""

    @seeds
    def test_crashed_writer_rejoins_with_outputs(
        self, seed, prepared_dataset, tmp_path
    ):
        world = ChaosWorld(NODES, FaultPlan(seed))
        config = DaemonConfig(**FAST)
        outputs = {
            f"out/rank{DEAD}-{i}.bin": bytes([i]) * (256 + 64 * i)
            for i in range(4)
        }

        def body(comm):
            opts = FanStoreOptions(
                comm=comm,
                config=config,
                membership=MCFG,
                local_dir=tmp_path / f"rank{comm.rank}",
                journal_config=JCFG,
            )
            fs = FanStore(prepared_dataset, opts)
            det = fs.membership
            comm.barrier()

            if comm.rank == DEAD:
                acked = []
                # the last write is killed between tmp-write and rename
                plan = CrashPlan(seed).crash_at(
                    "apply.tmp_written", rank=DEAD, skip=len(outputs) - 1
                )
                with plan:
                    try:
                        for path, data in outputs.items():
                            fs.client.write_file(path, data)
                            acked.append(path)
                    except SimulatedCrashError:
                        pass
                assert plan.crashes_delivered == 1
                world.kill(DEAD)  # the crashed process goes silent
                fs.membership.stop()
                serve = fs.daemon._service_thread
                if serve is not None:
                    serve.join(timeout=30)
                _await(
                    lambda: not world.plan.is_dead(DEAD), 120,
                    "the operator relaunch",
                )
                # fresh incarnation over the SAME local dir: journal
                # recovery first, then the PR 7 rejoin handshake
                fs2 = FanStore.rejoined(
                    prepared_dataset, comm, 0, options=opts
                )
                assert fs2.daemon.jstats.recovery_quarantined == 0
                recovered = {
                    p: fs2.client.read_file(p) for p in acked
                }
                _drain(comm)
                result = {
                    "role": "rejoined",
                    "acked": acked,
                    "ok": recovered == {p: outputs[p] for p in acked},
                    "epoch": fs2.membership.view.epoch,
                }
                fs2.shutdown()
                return result

            # -- survivors ----------------------------------------------
            _await(
                lambda: det.view.state(DEAD) == RankState.DEAD,
                30, "conviction of the crashed rank",
            )
            if comm.rank == 0:
                world.revive(DEAD)
            _await(
                lambda: det.view.state(DEAD) == RankState.ALIVE
                and det.view.epoch == 2,
                60, "the crashed rank to rejoin",
            )
            # the rejoined rank serves digest-verified reads again
            path = min(
                r.path for r in fs.daemon.metadata.records()
                if not r.is_broadcast and r.partition_id % NODES == DEAD
            )
            ok, data = fs.daemon._request("fetch", path, DEAD, attempts=2)
            served_ok = bool(ok) and fs.daemon._blob_ok(
                fs.daemon.metadata.get(path), data
            )
            _drain(comm)
            result = {
                "role": "survivor",
                "served_ok": served_ok,
                "epoch": det.view.epoch,
            }
            fs.shutdown()
            return result

        results = run_parallel(body, NODES, world=world, timeout=300)
        rejoined = [r for r in results if r["role"] == "rejoined"]
        survivors = [r for r in results if r["role"] == "survivor"]
        assert len(rejoined) == 1 and len(survivors) == 2
        assert rejoined[0]["ok"]
        assert len(rejoined[0]["acked"]) == len(outputs) - 1
        assert all(r["served_ok"] for r in survivors)
        # consistent ClusterView: one epoch bump for the conviction,
        # one for the verified rejoin, agreed by every rank
        assert {r["epoch"] for r in results} == {2}
