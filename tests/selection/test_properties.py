"""Hypothesis properties of the selection algorithm."""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.selection.model import (
    CompressorCandidate,
    CompressorSelector,
    IoPerformance,
    SelectionInputs,
    t_read,
)

perfs = st.builds(
    IoPerformance,
    tpt_read=st.floats(min_value=1.0, max_value=1e6),
    bdw_read=st.floats(min_value=1e3, max_value=1e12),
)

inputs_strategy = st.builds(
    SelectionInputs,
    io_mode=st.sampled_from(["sync", "async"]),
    c_batch=st.integers(min_value=1, max_value=4096),
    s_batch_uncompressed=st.floats(min_value=1e3, max_value=1e10),
    perf_uncompressed=perfs,
    perf_compressed=perfs,
    t_iter=st.floats(min_value=0.01, max_value=100.0),
    parallelism=st.integers(min_value=1, max_value=16),
    required_ratio=st.floats(min_value=1.0, max_value=4.0),
)

candidates_strategy = st.lists(
    st.builds(
        CompressorCandidate,
        name=st.text(min_size=1, max_size=8),
        ratio=st.floats(min_value=1.0, max_value=20.0),
        decompress_cost=st.floats(min_value=0.0, max_value=1.0),
    ),
    min_size=1,
    max_size=10,
)


@settings(max_examples=80, deadline=None)
@given(
    c=st.integers(min_value=1, max_value=10_000),
    s=st.floats(min_value=0.0, max_value=1e12),
    perf=perfs,
)
def test_t_read_is_max_of_bounds(c, s, perf):
    t = t_read(c, s, perf)
    assert t >= c / perf.tpt_read - 1e-12
    assert t >= s / perf.bdw_read - 1e-12
    assert t <= c / perf.tpt_read + s / perf.bdw_read + 1e-12


@settings(max_examples=60, deadline=None)
@given(inputs=inputs_strategy)
def test_budget_monotone_in_parallelism(inputs):
    import dataclasses

    sel1 = CompressorSelector(inputs)
    doubled = dataclasses.replace(inputs, parallelism=inputs.parallelism * 2)
    sel2 = CompressorSelector(doubled)
    b1 = sel1.budget_per_file(2.0)
    b2 = sel2.budget_per_file(2.0)
    if b1 >= 0:
        assert b2 >= b1 - 1e-15
    else:
        assert b2 <= b1 + 1e-15  # negative budgets scale the other way


@settings(max_examples=60, deadline=None)
@given(inputs=inputs_strategy)
def test_budget_monotone_in_ratio(inputs):
    """A higher compression ratio never shrinks the budget: fewer bytes
    to read can only free more time."""
    sel = CompressorSelector(inputs)
    assert sel.budget_per_file(4.0) >= sel.budget_per_file(1.5) - 1e-12


@settings(max_examples=60, deadline=None)
@given(inputs=inputs_strategy, cands=candidates_strategy)
def test_selection_invariant_under_candidate_order(inputs, cands):
    sel = CompressorSelector(inputs)
    forward = sel.select(cands)
    backward = sel.select(list(reversed(cands)))
    f = forward.choice
    b = backward.choice
    if f is None:
        assert b is None
    else:
        assert b is not None
        assert (f.ratio, f.decompress_cost) == (b.ratio, b.decompress_cost)


@settings(max_examples=60, deadline=None)
@given(inputs=inputs_strategy, cands=candidates_strategy)
def test_selected_dominates_all_accepted(inputs, cands):
    sel = CompressorSelector(inputs)
    result = sel.select(cands)
    if result.selected is None:
        return
    for other in result.accepted:
        assert result.selected.ratio >= other.ratio


@settings(max_examples=60, deadline=None)
@given(inputs=inputs_strategy, cands=candidates_strategy)
def test_accepted_candidates_really_meet_both_constraints(inputs, cands):
    sel = CompressorSelector(inputs)
    result = sel.select(cands)
    for verdict in result.verdicts:
        c = verdict.candidate
        budget = sel.budget_per_file(c.ratio)
        assert verdict.meets_performance == (c.decompress_cost < budget)
        assert verdict.meets_capacity == (c.ratio >= inputs.required_ratio)


@settings(max_examples=40, deadline=None)
@given(inputs=inputs_strategy)
def test_performance_fraction_at_most_one_for_sync(inputs):
    """Sync I/O: compression can only *help* up to eliminating the read
    gap — the fraction never exceeds ~1 by more than the read savings."""
    assume(inputs.io_mode == "sync")
    sel = CompressorSelector(inputs)
    free = CompressorCandidate("free", ratio=20.0, decompress_cost=0.0)
    frac = sel.performance_fraction(free)
    assert frac > 0
