"""The shared lifecycle contract for background services.

``FanStore`` (daemon service loop), ``Scrubber`` (background digest
sweep) and ``FailureDetector`` (heartbeat loop) each grew their own
start/stop conventions across PRs 1–3; this module is the one place
the contract — and the *shutdown ordering* — now lives.

The contract (:class:`Service`): ``start()`` is idempotent, ``stop()``
is idempotent and safe before ``start()``, ``running`` reflects whether
the background work is live, and every service is a context manager
(``with svc: ...`` starts on entry, stops on exit — provided by
:class:`ServiceMixin`).

**Shutdown ordering.** Services stop in reverse dependency order,
because each one issues work through the layer below it:

1. **Scrubbers first** — a sweep issues daemon reads/repairs; stopping
   the daemon under it turns in-flight repairs into spurious failures.
2. **Membership second** — the detector's verification reads and
   re-replication callbacks also go through the daemon, and a detector
   outliving its daemon would convict every peer that stops answering
   heartbeats during teardown.
3. **The daemon last**, and only after no peer still needs this rank's
   data — ``FanStore.shutdown`` interposes a collective barrier here
   when the original cohort is still intact (membership history makes
   collectives unsafe; see that docstring for the degraded regime).

:func:`stop_all` applies that order mechanically: pass services in
*start* order and it stops them in reverse, continuing past individual
failures so one wedged service cannot leak the rest.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class Service(Protocol):
    """Structural interface every background service conforms to."""

    def start(self) -> None:
        """Begin background work; calling again while running is a no-op."""

    def stop(self) -> None:
        """End background work; idempotent, safe before ``start()``."""

    @property
    def running(self) -> bool:
        """Whether background work is currently live."""


class ServiceMixin:
    """Context-manager support over ``start()``/``stop()``.

    ``with svc:`` starts the service on entry (idempotent, so objects
    that already started in their constructor — ``FanStore`` — compose
    fine) and stops it on exit.
    """

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def stop_all(*services: Service) -> list[Exception]:
    """Stop ``services`` in reverse of the given (start) order — the
    dependency-safe direction documented above. Exceptions are
    collected, not raised, so one wedged service cannot leak the rest;
    the caller decides what to do with them."""
    failures: list[Exception] = []
    for svc in reversed(services):
        try:
            svc.stop()
        except Exception as exc:  # noqa: BLE001 - teardown must not cascade
            failures.append(exc)
    return failures
