"""The POSIX-compliant client interface (§IV-A, Listing 1).

Implements the nine intercepted calls — ``open``, ``close``, ``read``,
``lseek``, ``write``, ``opendir``, ``readdir``, ``closedir``, ``stat`` —
over a :class:`~repro.fanstore.daemon.FanStoreDaemon`, entirely in user
space, with the paper's *multi-read single-write* consistency model:
any number of concurrent readers per file, at most one writer per path
ever, and a written file is sealed at ``close()`` (reopening it for
writing raises, reopening for reading is allowed).

File descriptors are small integers private to the client; each carries
its own offset, so ``lseek``/``read`` compose like the kernel's. A
Pythonic file-object facade (:meth:`FanStoreClient.open_file`) wraps the
descriptor API for the interception layer.
"""

from __future__ import annotations

import io
import os
import threading
import time
from dataclasses import dataclass

from repro.errors import (
    BadFileDescriptorError,
    FileNotFoundInStoreError,
    InvalidArgumentError,
    WriteViolationError,
)
from repro.fanstore.daemon import FanStoreDaemon
from repro.fanstore.layout import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_FILE_MODE,
    FLAG_HAS_DIGEST,
    FLAG_OUTPUT,
    FileStat,
    blob_crc32,
)
from repro.fanstore.metadata import FileRecord, normalize

O_RDONLY = os.O_RDONLY
O_WRONLY = os.O_WRONLY
O_RDWR = os.O_RDWR
O_CREAT = os.O_CREAT
O_TRUNC = os.O_TRUNC
O_APPEND = os.O_APPEND

_ACCMODE = os.O_RDONLY | os.O_WRONLY | os.O_RDWR


@dataclass
class _OpenFile:
    path: str
    offset: int
    writable: bool
    data: bytes | None  # reader: pinned cache bytes
    buffer: io.BytesIO | None  # writer: accumulation buffer


class _DirHandle:
    """An ``opendir`` stream: readdir() yields one name per call."""

    __slots__ = ("path", "_names", "_pos", "closed")

    def __init__(self, path: str, names: list[str]) -> None:
        self.path = path
        self._names = names
        self._pos = 0
        self.closed = False

    def readdir(self) -> str | None:
        """Next entry name, or None at end-of-directory."""
        if self.closed:
            raise BadFileDescriptorError(
                "readdir on closed directory stream", path=self.path
            )
        if self._pos >= len(self._names):
            return None
        name = self._names[self._pos]
        self._pos += 1
        return name

    def rewind(self) -> None:
        self._pos = 0

    def closedir(self) -> None:
        self.closed = True


class FanStoreClient:
    """POSIX-style file API bound to one daemon (one rank)."""

    def __init__(self, daemon: FanStoreDaemon) -> None:
        self.daemon = daemon
        self._lock = threading.Lock()
        self._fds: dict[int, _OpenFile] = {}
        self._next_fd = 3  # stdin/stdout/stderr reserved, like a kernel
        # Paths sealed by the single-write rule (written then closed),
        # and paths currently open for writing.
        self._sealed: set[str] = set()
        self._writing: set[str] = set()

    # -- open/close -------------------------------------------------------

    def open(self, path: str, flags: int = O_RDONLY, mode: int = 0o644) -> int:
        """``open(2)``: returns a descriptor. Readers hit the Figure 2
        path (decompress into the pinned cache); writers start an output
        buffer subject to the single-write rule."""
        norm = normalize(path)
        accmode = flags & _ACCMODE
        if accmode == O_RDWR:
            raise WriteViolationError(
                "FanStore's multi-read single-write model has no O_RDWR",
                path=norm,
            )
        if accmode == O_WRONLY:
            return self._open_writer(norm, flags, mode)
        return self._open_reader(norm)

    def _open_reader(self, path: str) -> int:
        with self._lock:
            if path in self._writing:
                raise WriteViolationError(
                    f"{path}: still open for writing", path=path
                )
        data = self.daemon.open_file(path)  # raises if absent
        with self._lock:
            fd = self._next_fd
            self._next_fd += 1
            self._fds[fd] = _OpenFile(
                path=path, offset=0, writable=False, data=data, buffer=None
            )
            return fd

    def _open_writer(self, path: str, flags: int, mode: int) -> int:
        if not flags & O_CREAT:
            raise WriteViolationError(
                f"{path}: output files must be created (O_CREAT)", path=path
            )
        with self._lock:
            if path in self._sealed:
                raise WriteViolationError(
                    f"{path}: already written and sealed (single-write model)",
                    path=path,
                )
            if path in self._writing:
                raise WriteViolationError(
                    f"{path}: another descriptor is writing it", path=path
                )
            if self.daemon.metadata.is_file(path):
                raise WriteViolationError(
                    f"{path}: exists in the packaged dataset (read-only)",
                    path=path,
                )
            self._writing.add(path)
            fd = self._next_fd
            self._next_fd += 1
            self._fds[fd] = _OpenFile(
                path=path,
                offset=0,
                writable=True,
                data=None,
                buffer=io.BytesIO(),
            )
            return fd

    def close(self, fd: int) -> None:
        """``close(2)``: readers unpin the cache entry; writers seal the
        file — the buffer is dumped to the backend and the metadata
        forwarded to its owner rank (§V-D site 4, Figure 4)."""
        with self._lock:
            state = self._fds.pop(fd, None)
        if state is None:
            raise BadFileDescriptorError(f"close of unknown fd {fd}")
        if not state.writable:
            self.daemon.close_file(state.path)
            return
        assert state.buffer is not None
        data = state.buffer.getvalue()
        # Optional write-path compression (checkpoints/logs are written
        # once; a dense codec costs nothing on the training fast path).
        stored = data
        compressor_id = 0
        comp_name = self.daemon.config.output_compressor
        if comp_name is not None:
            compressor = self.daemon.registry.get(comp_name)
            t0 = time.perf_counter()
            packed = compressor.compress(data)
            dt = time.perf_counter() - t0
            # write-path codec metrics mirror the read path's decode
            # metrics (codec.<name>.decode_*); writes are not hot, so
            # every encode is observed, not sampled
            metrics = self.daemon.metrics
            metrics.histogram(
                f"codec.{compressor.name}.encode_seconds"
            ).observe(dt)
            metrics.counter(
                f"codec.{compressor.name}.encode_bytes"
            ).inc(len(data))
            if len(packed) < len(data):
                stored = packed
                compressor_id = compressor.compressor_id
        now_ns = time.time_ns()
        stat = FileStat(
            st_mode=DEFAULT_FILE_MODE,
            st_size=len(data),
            st_blksize=DEFAULT_BLOCK_SIZE,
            st_blocks=(len(data) + 511) // 512,
            st_mtime_ns=now_ns,
            st_ctime_ns=now_ns,
            st_atime_ns=now_ns,
            home_rank=self.daemon.rank,
            flags=FLAG_OUTPUT | FLAG_HAS_DIGEST,
            crc32=blob_crc32(stored),
        )
        record = FileRecord(
            path=state.path,
            stat=stat,
            compressor_id=compressor_id,
            compressed_size=len(stored),
            home_rank=self.daemon.rank,
            partition_id=0,
        )
        self.daemon.store_output(state.path, stored, record)
        with self._lock:
            self._writing.discard(state.path)
            self._sealed.add(state.path)

    # -- read/seek/write ----------------------------------------------------

    def _state(self, fd: int) -> _OpenFile:
        with self._lock:
            try:
                return self._fds[fd]
            except KeyError:
                raise BadFileDescriptorError(f"unknown fd {fd}") from None

    def read(self, fd: int, size: int = -1) -> bytes:
        """``read(2)`` from the cache region (Figure 3); advances offset."""
        state = self._state(fd)
        if state.writable:
            raise BadFileDescriptorError(
                f"fd {fd} is write-only", path=state.path
            )
        assert state.data is not None
        if size < 0:
            size = len(state.data) - state.offset
        chunk = state.data[state.offset : state.offset + size]
        state.offset += len(chunk)
        return chunk

    def pread(self, fd: int, size: int, offset: int) -> bytes:
        """Positional read; does not move the descriptor offset."""
        state = self._state(fd)
        if state.writable:
            raise BadFileDescriptorError(
                f"fd {fd} is write-only", path=state.path
            )
        assert state.data is not None
        if offset < 0:
            raise InvalidArgumentError(
                f"negative pread offset {offset}", path=state.path
            )
        return state.data[offset : offset + size]

    def lseek(self, fd: int, offset: int, whence: int = os.SEEK_SET) -> int:
        """``lseek(2)``; returns the new offset."""
        state = self._state(fd)
        if state.writable:
            base_len = state.buffer.getbuffer().nbytes  # type: ignore[union-attr]
        else:
            base_len = len(state.data)  # type: ignore[arg-type]
        if whence == os.SEEK_SET:
            new = offset
        elif whence == os.SEEK_CUR:
            new = state.offset + offset
        elif whence == os.SEEK_END:
            new = base_len + offset
        else:
            raise InvalidArgumentError(
                f"bad whence {whence}", path=state.path
            )
        if new < 0:
            raise InvalidArgumentError(
                f"seek before start ({new})", path=state.path
            )
        state.offset = new
        if state.writable:
            state.buffer.seek(new)  # type: ignore[union-attr]
        return new

    def write(self, fd: int, data: bytes) -> int:
        """``write(2)`` into the output buffer; returns bytes written."""
        state = self._state(fd)
        if not state.writable:
            raise BadFileDescriptorError(
                f"fd {fd} is read-only", path=state.path
            )
        assert state.buffer is not None
        written = state.buffer.write(data)
        state.offset = state.buffer.tell()
        return written

    # -- metadata ----------------------------------------------------------

    def fstat(self, fd: int) -> FileStat:
        """``fstat(2)``: metadata through an open descriptor. For a
        writer the size reflects the bytes buffered so far."""
        state = self._state(fd)
        if state.writable:
            assert state.buffer is not None
            size = state.buffer.getbuffer().nbytes
            return FileStat(st_mode=DEFAULT_FILE_MODE, st_size=size)
        return self.stat(state.path)

    def stat(self, path: str) -> FileStat:
        """``stat(2)`` from the RAM table — no server round trip."""
        norm = normalize(path)
        try:
            return self.daemon.metadata.stat(norm)
        except FileNotFoundInStoreError:
            rec = self.daemon.stat_any(norm)
            if rec is None:
                raise
            return rec.stat

    def exists(self, path: str) -> bool:
        try:
            self.stat(path)
            return True
        except FileNotFoundInStoreError:
            return False

    def listdir(self, path: str = "") -> list[str]:
        return self.daemon.metadata.listdir(path)

    def opendir(self, path: str = "") -> _DirHandle:
        """``opendir(3)``: snapshot stream over the directory."""
        return _DirHandle(normalize(path), self.listdir(path))

    # -- conveniences --------------------------------------------------------

    def read_file(self, path: str) -> bytes:
        """Whole-file read with correct open/close pairing."""
        fd = self.open(path, O_RDONLY)
        try:
            return self.read(fd)
        finally:
            self.close(fd)

    def write_file(self, path: str, data: bytes) -> None:
        """Whole-file write through the single-write path."""
        fd = self.open(path, O_WRONLY | O_CREAT)
        try:
            self.write(fd, data)
        finally:
            self.close(fd)

    def open_file(self, path: str, mode: str = "rb") -> "FanStoreFile":
        """A Python file object over the descriptor API (used by the
        interception layer to stand in for ``builtins.open``)."""
        if mode in ("rb", "r"):
            fd = self.open(path, O_RDONLY)
        elif mode in ("wb", "w", "xb", "x"):
            fd = self.open(path, O_WRONLY | O_CREAT)
        else:
            raise InvalidArgumentError(
                f"unsupported mode {mode!r}", path=path
            )
        text = "b" not in mode
        return FanStoreFile(self, fd, path, text=text)

    @property
    def open_fd_count(self) -> int:
        with self._lock:
            return len(self._fds)


class FanStoreFile:
    """Minimal file-object adapter (context manager, read/write/seek)."""

    def __init__(
        self, client: FanStoreClient, fd: int, path: str, *, text: bool = False
    ) -> None:
        self._client = client
        self.fd = fd
        self.name = path
        self._text = text
        self._closed = False

    def read(self, size: int = -1):
        data = self._client.read(self.fd, size)
        return data.decode("utf-8") if self._text else data

    def write(self, data) -> int:
        if self._text and isinstance(data, str):
            data = data.encode("utf-8")
        return self._client.write(self.fd, data)

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        return self._client.lseek(self.fd, offset, whence)

    def tell(self) -> int:
        return self._client._state(self.fd).offset

    def close(self) -> None:
        if not self._closed:
            self._client.close(self.fd)
            self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "FanStoreFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __iter__(self):
        """Line iteration (log-file tailing in the examples)."""
        remainder = self.read()
        lines = remainder.splitlines(keepends=True)
        return iter(lines)
