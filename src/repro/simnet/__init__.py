"""Discrete-event simulation substrate.

Replaces the paper's physical testbeds: an event engine
(:mod:`~repro.simnet.events`), analytic storage-device models calibrated
to the paper's Table III/VI measurements (:mod:`~repro.simnet.devices`),
and α–β interconnect models for the FDR-IB and Omni-Path fabrics
(:mod:`~repro.simnet.network`).
"""

from repro.simnet.devices import (
    TABLE3_SIZES,
    StorageModel,
    fanstore_local,
    fuse_over_ssd,
    lustre,
    ram_disk,
    ram_disk_power9,
    ssd,
)
from repro.simnet.events import (
    AllOf,
    Barrier,
    Event,
    Process,
    Resource,
    Simulator,
    Timeout,
)
from repro.simnet.network import InterconnectModel, fdr_infiniband, omni_path
from repro.simnet.trace import IoTrace, TraceEvent, TraceRecorder, replay

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "AllOf",
    "Process",
    "Resource",
    "Barrier",
    "StorageModel",
    "ssd",
    "ram_disk",
    "ram_disk_power9",
    "fanstore_local",
    "fuse_over_ssd",
    "lustre",
    "TABLE3_SIZES",
    "InterconnectModel",
    "fdr_infiniband",
    "omni_path",
    "IoTrace",
    "TraceEvent",
    "TraceRecorder",
    "replay",
]
