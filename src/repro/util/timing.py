"""Wall-clock measurement helpers for the real (non-modeled) benchmarks."""

from __future__ import annotations

import time
from typing import Callable


class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed > 0
    True
    """

    __slots__ = ("start", "elapsed")

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self.start


def measure_throughput(
    fn: Callable[[], int],
    *,
    min_time: float = 0.2,
    min_calls: int = 3,
    max_calls: int = 10_000,
) -> tuple[float, float]:
    """Repeatedly call ``fn`` (which returns bytes processed per call) until
    ``min_time`` seconds have elapsed, and return
    ``(calls_per_second, bytes_per_second)``.

    Used to estimate ``Tpt_decom`` (files/s) and byte bandwidth of codecs
    on this host, the measured inputs to the selection algorithm.
    """
    calls = 0
    total_bytes = 0
    start = time.perf_counter()
    elapsed = 0.0
    while (elapsed < min_time or calls < min_calls) and calls < max_calls:
        total_bytes += fn()
        calls += 1
        elapsed = time.perf_counter() - start
    if elapsed <= 0.0:
        # Sub-resolution run: report a floor rather than infinity.
        elapsed = 1e-9
    return calls / elapsed, total_bytes / elapsed
