"""Fixture helpers for the lint/lockdep suite: write snippet trees and
lint them in isolation."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.core import LintReport, run_lint


@pytest.fixture
def lint_tree(tmp_path):
    """Write ``{relpath: source}`` files under a scratch root and lint
    them with the full pass registry rooted there."""

    def _run(files: dict[str, str], rules=None) -> LintReport:
        for rel, text in files.items():
            dest = tmp_path / rel
            dest.parent.mkdir(parents=True, exist_ok=True)
            dest.write_text(text, encoding="utf-8")
        return run_lint([tmp_path], root=tmp_path, rules=rules)

    return _run


def rules_of(report: LintReport, rule: str):
    return [f for f in report.findings if f.rule == rule]
