"""error-conventions, determinism, metric-catalogue, and
deprecated-facade passes on fixture trees."""

from __future__ import annotations

import textwrap

from tests.analysis.conftest import rules_of

GOOD_ERRORS = textwrap.dedent(
    """
    class StoreError(Exception):
        pass

    class MissingError(StoreError, OSError):
        def __init__(self, path):
            import errno
            super().__init__(f"not found: {path}")
            self.errno = errno.ENOENT
            self.filename = path

    class StaleError(MissingError):
        pass
    """
)


class TestErrorConventions:
    def test_os_family_without_errno_init_flagged(self, lint_tree):
        src = textwrap.dedent(
            """
            class BareError(OSError):
                pass
            """
        )
        report = lint_tree({"errors.py": src})
        findings = rules_of(report, "error-conventions")
        assert len(findings) == 1
        assert "BareError" in findings[0].message
        assert "errno" in findings[0].message

    def test_inherited_init_from_project_ancestor_is_clean(self, lint_tree):
        report = lint_tree({"errors.py": GOOD_ERRORS})
        assert not rules_of(report, "error-conventions"), report.summary()

    def test_timeout_error_counts_as_os_family(self, lint_tree):
        src = textwrap.dedent(
            """
            class RetryGone(Exception, TimeoutError):
                pass
            """
        )
        report = lint_tree({"errors.py": src})
        findings = rules_of(report, "error-conventions")
        assert len(findings) == 1 and "RetryGone" in findings[0].message

    def test_non_os_raise_at_boundary_flagged(self, lint_tree):
        src = GOOD_ERRORS + textwrap.dedent(
            """
            class Client:
                def pread(self, fd, n, off):
                    if off < 0:
                        raise ValueError("negative offset")
                    raise MissingError("/x")
            """
        )
        report = lint_tree({"fanstore/client.py": src})
        findings = rules_of(report, "error-conventions")
        assert len(findings) == 1
        assert "ValueError" in findings[0].message
        assert "VFS boundary" in findings[0].message

    def test_reraise_and_non_boundary_module_clean(self, lint_tree):
        boundary = GOOD_ERRORS + textwrap.dedent(
            """
            class Client:
                def read(self):
                    try:
                        return self._go()
                    except MissingError as exc:
                        raise exc
            """
        )
        elsewhere = "def f():\n    raise ValueError('fine outside the boundary')\n"
        report = lint_tree(
            {"fanstore/client.py": boundary, "fanstore/daemon.py": elsewhere}
        )
        assert not rules_of(report, "error-conventions"), report.summary()

    def test_waiver_applies(self, lint_tree):
        src = GOOD_ERRORS + textwrap.dedent(
            """
            class Client:
                def check(self, mode):
                    if mode not in ("r", "rb"):
                        # lint: allow[error-conventions] validated before any fd exists
                        raise ValueError(mode)
            """
        )
        report = lint_tree({"fanstore/client.py": src})
        findings = rules_of(report, "error-conventions")
        assert findings and findings[0].waived


class TestDeterminism:
    def test_unseeded_sources_flagged(self, lint_tree):
        src = textwrap.dedent(
            """
            import os
            import random
            import time
            from datetime import datetime

            def drill(paths):
                r = random.random()
                t = time.time()
                d = datetime.now()
                for p in os.listdir("/data"):
                    pass
                for q in {1, 2, 3}:
                    pass
            """
        )
        report = lint_tree({"fanstore/chaos.py": src})
        messages = [f.message for f in rules_of(report, "determinism")]
        assert len(messages) == 5, "\n".join(messages)
        joined = "\n".join(messages)
        assert "random.random()" in joined
        assert "time.time()" in joined
        assert "datetime.now()" in joined
        assert "os.listdir(...)" in joined
        assert "a set literal" in joined

    def test_seeded_and_sorted_forms_clean(self, lint_tree):
        src = textwrap.dedent(
            """
            import os
            import random

            def drill(seed):
                rng = random.Random(seed)
                x = rng.random()
                for p in sorted(os.listdir("/data")):
                    pass
            """
        )
        report = lint_tree({"fanstore/corruption.py": src})
        assert not rules_of(report, "determinism"), report.summary()

    def test_out_of_scope_module_clean(self, lint_tree):
        src = "import time\nt = time.time()\n"
        report = lint_tree({"fanstore/daemon.py": src})
        assert not rules_of(report, "determinism")

    def test_waiver_applies(self, lint_tree):
        src = (
            "import time\n"
            "t = time.time()  # lint: allow[determinism] drill wall-time is reported, not replayed\n"
        )
        report = lint_tree({"simnet.py": src})
        findings = rules_of(report, "determinism")
        assert findings and findings[0].waived


CATALOGUE_DOC = textwrap.dedent(
    """
    # Observability

    | metric | type | meaning |
    |---|---|---|
    | `loader.bytes_read` | counter | bytes served |
    | `codec.<name>.decode_seconds` | histogram | decode latency |
    """
)


class TestMetricCatalogue:
    def test_undocumented_literal_flagged(self, lint_tree):
        src = textwrap.dedent(
            """
            def setup(metrics):
                metrics.counter("loader.bytes_read")
                metrics.counter("loader.bytes_dropped")
            """
        )
        report = lint_tree(
            {"docs/observability.md": CATALOGUE_DOC, "obs.py": src}
        )
        findings = rules_of(report, "metric-catalogue")
        assert len(findings) == 1
        assert "loader.bytes_dropped" in findings[0].message

    def test_fstring_matches_placeholder_row(self, lint_tree):
        src = textwrap.dedent(
            """
            def setup(metrics, name):
                metrics.histogram(f"codec.{name}.decode_seconds")
            """
        )
        report = lint_tree(
            {"docs/observability.md": CATALOGUE_DOC, "obs.py": src}
        )
        assert not rules_of(report, "metric-catalogue"), report.summary()

    def test_segment_count_must_match(self, lint_tree):
        src = textwrap.dedent(
            """
            def setup(metrics, name):
                metrics.histogram(f"codec.{name}.extra.decode_seconds")
            """
        )
        report = lint_tree(
            {"docs/observability.md": CATALOGUE_DOC, "obs.py": src}
        )
        assert len(rules_of(report, "metric-catalogue")) == 1

    def test_no_catalogue_file_skips_pass(self, lint_tree):
        src = "def setup(metrics):\n    metrics.counter('ghost.metric')\n"
        report = lint_tree({"obs.py": src})
        assert not rules_of(report, "metric-catalogue")


class TestDeprecatedFacade:
    def test_stats_call_flagged_but_not_on_self(self, lint_tree):
        src = textwrap.dedent(
            """
            def report(fs):
                return fs.stats()

            class FanStore:
                def stats(self):
                    return self.metrics.snapshot()

                def _dump(self):
                    return self.stats()
            """
        )
        report = lint_tree({"tools.py": src})
        findings = rules_of(report, "deprecated-facade")
        assert len(findings) == 1
        assert "stats()" in findings[0].message

    def test_legacy_kwargs_flagged(self, lint_tree):
        src = textwrap.dedent(
            """
            def build(prepared, comm):
                return FanStore(prepared, comm=comm, mount_point="/fanstore")
            """
        )
        report = lint_tree({"bench.py": src})
        findings = rules_of(report, "deprecated-facade")
        assert len(findings) == 1
        assert "comm, mount_point" in findings[0].message
        assert "FanStoreOptions" in findings[0].message

    def test_options_construction_clean(self, lint_tree):
        src = textwrap.dedent(
            """
            def build(prepared, comm):
                opts = FanStoreOptions(comm=comm)
                return FanStore(prepared, opts)
            """
        )
        report = lint_tree({"bench.py": src})
        assert not rules_of(report, "deprecated-facade")

    def test_waiver_applies(self, lint_tree):
        src = textwrap.dedent(
            """
            def build(prepared, comm):
                # lint: allow[deprecated-facade] exercises the legacy path on purpose
                return FanStore(prepared, comm=comm)
            """
        )
        report = lint_tree({"bench.py": src})
        findings = rules_of(report, "deprecated-facade")
        assert findings and findings[0].waived


class TestDurableWrite:
    def test_write_mode_open_in_fanstore_flagged(self, lint_tree):
        src = textwrap.dedent(
            """
            def save(path, data):
                with open(path, "wb") as fh:
                    fh.write(data)
            """
        )
        report = lint_tree({"fanstore/writer.py": src})
        findings = rules_of(report, "durable-write")
        assert len(findings) == 1
        assert "'wb'" in findings[0].message
        assert "atomic-apply" in findings[0].message

    def test_read_mode_open_is_clean(self, lint_tree):
        src = textwrap.dedent(
            """
            def load(path):
                with open(path) as fh:
                    return fh.read()

            def load_binary(path):
                with open(path, "rb") as fh:
                    return fh.read()
            """
        )
        report = lint_tree({"fanstore/reader.py": src})
        assert not rules_of(report, "durable-write"), report.summary()

    def test_os_rename_and_write_bytes_flagged(self, lint_tree):
        src = textwrap.dedent(
            """
            import os
            from pathlib import Path

            def install(tmp, final):
                os.rename(tmp, final)

            def dump(path, data):
                Path(path).write_bytes(data)
            """
        )
        report = lint_tree({"fanstore/install.py": src})
        found = {f.message.split(" ")[0] for f in rules_of(report, "durable-write")}
        assert found == {"os.rename", ".write_bytes"}

    def test_str_replace_not_confused_with_os_replace(self, lint_tree):
        src = textwrap.dedent(
            """
            def canon(name):
                return name.replace("\\\\", "/")
            """
        )
        report = lint_tree({"fanstore/paths.py": src})
        assert not rules_of(report, "durable-write"), report.summary()

    def test_outside_fanstore_is_out_of_scope(self, lint_tree):
        src = textwrap.dedent(
            """
            def save(path, data):
                with open(path, "w") as fh:
                    fh.write(data)
            """
        )
        report = lint_tree({"training/logs.py": src})
        assert not rules_of(report, "durable-write"), report.summary()

    def test_waiver_with_reason_suppresses(self, lint_tree):
        src = textwrap.dedent(
            """
            def tear(path, data):
                with open(path, "wb") as fh:  # lint: allow[durable-write] fault injector tears bytes on purpose
                    fh.write(data[:3])
            """
        )
        report = lint_tree({"fanstore/injector.py": src})
        (finding,) = rules_of(report, "durable-write")
        assert finding.waived
        assert finding.reason == "fault injector tears bytes on purpose"
        assert not report.unwaived

    def test_dynamic_mode_out_of_scope(self, lint_tree):
        src = textwrap.dedent(
            """
            def open_as(path, mode):
                return open(path, mode)
            """
        )
        report = lint_tree({"fanstore/anymode.py": src})
        assert not rules_of(report, "durable-write"), report.summary()
