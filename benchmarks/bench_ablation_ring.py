"""Ablation — extra-partition transport (§V-D's design choice).

When a node hosts extra partitions, FanStore copies them from its ring
neighbor instead of re-reading the shared file system. Functional:
real ring replication through the communicator. Modeled: ring-copy vs
shared-FS re-read stage-in time across scales.
"""

from __future__ import annotations

import pytest

from repro.baselines.sharedfs import default_lustre
from repro.bench.report import PaperComparison
from repro.comm.launcher import run_parallel
from repro.comm.ring import ring_replicate
from repro.simnet.network import omni_path
from repro.util.units import GB, MB

PARTITION_BYTES = 4 * GB  # a 4 GB partition per node


def _modeled_stage_in(nodes: int, copies: int) -> tuple[float, float]:
    """(ring seconds, shared-FS re-read seconds) for every node to gain
    ``copies`` extra partitions."""
    net = omni_path()
    # ring: `copies` neighbor hops, all links busy simultaneously
    ring = copies * net.ring_shift_time(PARTITION_BYTES)
    # shared FS: nodes×copies partitions re-read against the aggregate
    shared = default_lustre()
    total_bytes = nodes * copies * PARTITION_BYTES
    refetch = total_bytes / shared.aggregate_bandwidth
    return ring, refetch


def test_ablation_ring_modeled(benchmark, emit_report):
    rows = benchmark.pedantic(
        lambda: {
            n: _modeled_stage_in(n, copies=1) for n in (4, 64, 512)
        },
        rounds=1, iterations=1,
    )
    report = PaperComparison(
        "Ablation (ring vs shared-FS re-read)",
        "stage-in time for one extra 4 GB partition per node",
        columns=["nodes", "ring copy", "shared FS re-read", "ratio"],
    )
    for n, (ring, refetch) in rows.items():
        report.add_row(
            n, f"{ring:.2f} s", f"{refetch:.2f} s", f"{refetch / ring:.1f}x"
        )
    report.add_note("the ring is contention-free by construction: its "
                    "cost is flat in node count; the shared FS re-read "
                    "grows linearly")
    emit_report(report)

    ring4, refetch4 = rows[4]
    ring512, refetch512 = rows[512]
    assert ring512 == pytest.approx(ring4)  # flat
    assert refetch512 == pytest.approx(refetch4 * 128, rel=0.01)  # linear
    assert refetch512 > 50 * ring512


def test_ablation_ring_functional(benchmark, emit_report):
    """Real neighbor copies: 4 ranks, 256 KiB blocks, 2 hops each."""
    block = bytes(256 * 1024)

    def replicate():
        return run_parallel(
            lambda c: len(ring_replicate(c, block, 2, timeout=30)),
            4,
            timeout=60,
        )

    counts = benchmark(replicate)
    assert counts == [2, 2, 2, 2]

    report = PaperComparison(
        "Ablation (ring, functional)",
        "in-process ring replication of 256 KiB blocks, 4 ranks × 2 hops",
        columns=["metric", "value"],
    )
    report.add_row("blocks moved per rank", 2)
    report.add_row("mean wall time", f"{benchmark.stats.stats.mean * 1e3:.2f} ms")
    emit_report(report)