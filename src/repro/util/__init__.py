"""Small shared utilities: units, statistics, deterministic RNG, timing,
and the shared background-:class:`~repro.util.service.Service` contract."""

from repro.util.service import Service, ServiceMixin, stop_all
from repro.util.units import (
    KB,
    MB,
    GB,
    TB,
    KIB,
    MIB,
    GIB,
    TIB,
    format_bytes,
    format_rate,
    format_seconds,
    parse_size,
)
from repro.util.stats import RunningStats, percentile, summarize
from repro.util.timing import Timer, measure_throughput

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "KIB",
    "MIB",
    "GIB",
    "TIB",
    "format_bytes",
    "format_rate",
    "format_seconds",
    "parse_size",
    "RunningStats",
    "percentile",
    "summarize",
    "Timer",
    "measure_throughput",
    "Service",
    "ServiceMixin",
    "stop_all",
]
