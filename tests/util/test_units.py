"""Unit parsing/formatting."""

from __future__ import annotations

import pytest

from repro.util.units import (
    GB,
    KIB,
    MB,
    MIB,
    format_bytes,
    format_rate,
    format_seconds,
    parse_size,
)


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("512 KiB", 512 * KIB),
            ("2MB", 2 * MB),
            ("1.5 GiB", int(1.5 * (1 << 30))),
            ("100", 100),
            ("3 k", 3000),
            ("7 MiB", 7 * MIB),
            ("0.5GB", int(0.5 * GB)),
            ("42B", 42),
        ],
    )
    def test_parses(self, text, expected):
        assert parse_size(text) == expected

    def test_numbers_pass_through(self):
        assert parse_size(12345) == 12345
        assert parse_size(1.9) == 1

    @pytest.mark.parametrize("bad", ["", "abc", "12 XB", "-5 MB"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)


class TestFormat:
    def test_format_bytes_binary(self):
        assert format_bytes(512 * KIB) == "512.0 KiB"
        assert format_bytes(100) == "100 B"

    def test_format_bytes_decimal(self):
        assert format_bytes(2 * MB, binary=False) == "2.0 MB"

    def test_format_rate(self):
        assert format_rate(5 * MB) == "5.0 MB/s"

    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (852e-6, "852.0 µs"),
            (0.054568, "54.6 ms"),
            (9.689, "9.69 s"),
            (600.0, "10.0 min"),
        ],
    )
    def test_format_seconds(self, seconds, expected):
        assert format_seconds(seconds) == expected

    def test_format_seconds_negative(self):
        assert format_seconds(-0.5).startswith("-")
