#!/usr/bin/env python3
"""Quickstart: package a dataset, mount it, read it three ways.

Walks the FanStore lifecycle end to end on a synthetic EM dataset:

1. generate raw data,
2. run the data-preparation tool (§V-B) with a chosen compressor,
3. open a FanStore over the packed partitions,
4. read through the POSIX client, through plain ``open()``/``os``
   calls via interception (§V-C), and through a training loader,
5. run the Figure 1 placement analysis showing what compression buys.

Run: ``python examples/quickstart.py``
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from repro.cluster import analyze_placement, gtx
from repro.datasets import generate_dataset
from repro.fanstore import FanStore, FanStoreOptions, intercept, prepare_dataset
from repro.training import SyncLoader, list_training_files
from repro.util import GB, format_bytes


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="fanstore-quickstart-"))
    raw = workdir / "raw"
    packed = workdir / "packed"

    print("== 1. generate a synthetic EM dataset (Table II's 'EM' row) ==")
    generate_dataset("em", raw, num_files=16, avg_file_size=32_768,
                     num_dirs=4, seed=1)
    total = sum(p.stat().st_size for p in raw.rglob("*") if p.is_file())
    print(f"   {len(list(raw.rglob('*.tif')))} tif files, "
          f"{format_bytes(total)}")

    print("\n== 2. package it (data-preparation tool, §V-B) ==")
    prepared = prepare_dataset(raw, packed, num_partitions=4,
                               compressor="zlib-6", threads=2)
    print(f"   {prepared.num_files} files -> "
          f"{len(prepared.partitions)} partitions, "
          f"compression ratio {prepared.ratio:.2f}x")

    print("\n== 3. mount and read through the POSIX client ==")
    with FanStore(prepared, FanStoreOptions(mount_point="/fanstore")) as fs:
        classes = fs.client.listdir("")
        print(f"   namespace: {classes}")
        first = f"cls0000/{fs.client.listdir('cls0000')[0]}"
        data = fs.client.read_file(first)
        stat = fs.client.stat(first)
        print(f"   read {first}: {len(data)} bytes "
              f"(stat says {stat.st_size}) — served from the compressed "
              f"store, decompressed on open")

        print("\n== 4. the same files through interception (§V-C) ==")
        with intercept(fs):
            names = os.listdir("/fanstore/cls0000")
            with open(f"/fanstore/cls0000/{names[0]}", "rb") as f:
                blob = f.read()
            print(f"   plain open()/os.listdir() worked: {len(blob)} bytes, "
                  f"{len(names)} entries — no code changes needed")

        print("\n== 5. a training loader over the store ==")
        files = list_training_files(fs.client)
        loader = SyncLoader(fs.client, files, batch_size=4, epochs=1)
        for batch in loader:
            print(f"   epoch {batch.epoch} iter {batch.iteration}: "
                  f"{len(batch)} files, {format_bytes(batch.bytes_read)}")

        print("\n== 6. what compression buys (Figure 1 analysis) ==")
        machine = gtx()
        for ratio, label in ((1.0, "raw"), (prepared.ratio, "compressed")):
            a = analyze_placement(
                machine, 140 * GB, max_batch=256,
                min_per_processor_batch=128, compression_ratio=ratio,
            )
            print(f"   {label:>10}: needs >= {a.min_nodes_capacity} node(s) "
                  f"to host ImageNet-sized data; utilization "
                  f"{a.utilization:.0%}")

    print("\ndone.")


if __name__ == "__main__":
    main()
