"""Unit tests for the membership layer: view merges, the failure
detector against an injectable clock (no sleeping), the rejoin
handshake, ring reassignment planning, and the daemon's negative route
cache. The full kill → convict → re-replicate → rejoin story runs in
``tests/integration/test_membership_drill.py``.
"""

from __future__ import annotations

import threading

import pytest

from repro.comm.communicator import World
from repro.errors import MembershipError
from repro.fanstore.daemon import FanStoreDaemon
from repro.fanstore.layout import FLAG_BROADCAST, FileStat
from repro.fanstore.membership import (
    ClusterView,
    FailureDetector,
    MembershipConfig,
    RankState,
    ring_successor,
)
from repro.fanstore.metadata import FileRecord, MetadataTable


class FakeClock:
    """A hand-advanced monotonic clock for threshold-edge tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


CFG = MembershipConfig(
    heartbeat_interval=1.0, suspect_after=3.0, dead_after=10.0
)

#: same thresholds with quorum awareness off — for tests that examine
#: conviction mechanics from a rank that cannot hear a majority.
NO_QUORUM = MembershipConfig(
    heartbeat_interval=1.0, suspect_after=3.0, dead_after=10.0, quorum=False
)


def _pair(world_size: int = 2, **kw):
    """A world plus one fake-clocked detector per rank."""
    world = World(world_size)
    clock = FakeClock()
    dets = [
        FailureDetector(world.comm(r), CFG, clock=clock, **kw)
        for r in range(world_size)
    ]
    return world, clock, dets


class TestClusterView:
    def test_initial_state(self):
        view = ClusterView(3)
        assert view.epoch == 0
        assert view.alive_ranks() == [0, 1, 2]
        assert view.dead_ranks() == []

    def test_set_state_bumps_version_and_optionally_epoch(self):
        view = ClusterView(3)
        view.set_state(1, RankState.SUSPECT)
        assert view.versions[1] == 1 and view.epoch == 0
        view.set_state(1, RankState.DEAD, bump_epoch=True)
        assert view.versions[1] == 2 and view.epoch == 1

    def test_merge_higher_version_wins(self):
        ours = ClusterView(2)
        theirs = ClusterView(2)
        theirs.set_state(1, RankState.DEAD, bump_epoch=True)
        changed = ours.merge(theirs)
        assert changed == [(1, RankState.ALIVE, RankState.DEAD)]
        assert ours.state(1) == RankState.DEAD and ours.epoch == 1
        # merging stale information back changes nothing
        assert ours.merge(ClusterView(2)) == []
        assert ours.state(1) == RankState.DEAD

    def test_merge_tie_resolves_to_more_severe(self):
        a = ClusterView(2)
        b = ClusterView(2)
        a.set_state(1, RankState.SUSPECT)  # version 1, SUSPECT
        b.set_state(1, RankState.DEAD)  # version 1, DEAD
        a.merge(b)
        assert a.state(1) == RankState.DEAD
        b2 = ClusterView(2)
        b2.set_state(1, RankState.DEAD)
        b2.merge(a)  # same version/severity: stays DEAD
        assert b2.state(1) == RankState.DEAD

    def test_merge_is_commutative(self):
        a = ClusterView(3)
        b = ClusterView(3)
        a.set_state(1, RankState.DEAD, bump_epoch=True)
        b.set_state(2, RankState.SUSPECT)
        a2, b2 = a.clone(), b.clone()
        a.merge(b)
        b2.merge(a2)
        assert a == b2

    def test_merge_size_mismatch_raises(self):
        with pytest.raises(MembershipError):
            ClusterView(2).merge(ClusterView(3))

    def test_clone_is_independent(self):
        view = ClusterView(2)
        copy = view.clone()
        copy.set_state(1, RankState.DEAD, bump_epoch=True)
        assert view.state(1) == RankState.ALIVE and view.epoch == 0


class TestMergeTotalOrder:
    """The documented merge total order: lexicographic
    ``(version, severity)`` per rank, max epochs — except an equal-epoch
    merge carrying an unseen conviction, which bumps past both."""

    def test_equal_epoch_dead_divergence_bumps_past_both(self):
        a = ClusterView(4)
        b = ClusterView(4)
        a.set_state(1, RankState.DEAD, bump_epoch=True)  # a: epoch 1
        b.set_state(2, RankState.DEAD, bump_epoch=True)  # b: epoch 1
        a2, b2 = a.clone(), b.clone()
        a.merge(b)
        b2.merge(a2)
        # two histories at epoch 1 with different corpses must not share
        # epoch 1 after merging — everything keyed by epoch would treat
        # stale state as current
        assert a.epoch == b2.epoch == 2
        assert a == b2  # and the bump is symmetric (commutative merge)
        assert a.dead_ranks() == [1, 2]

    def test_equal_epoch_readmission_does_not_bump(self):
        # the rejoin handshake propagating by gossip: the serving peer
        # re-admitted the corpse as SUSPECT at a higher version. That is
        # not a parallel history — the promotion completing the rejoin
        # bumps on its own, and bumping here too would leave a healed
        # cluster one epoch past the handshake's count.
        server = ClusterView(3)
        other = ClusterView(3)
        for v in (server, other):
            v.set_state(2, RankState.DEAD, bump_epoch=True)  # epoch 1
        server.set_state(2, RankState.SUSPECT)  # join served: higher version
        changed = other.merge(server)
        assert changed == [(2, RankState.DEAD, RankState.SUSPECT)]
        assert other.epoch == 1  # no divergence bump on the way back

    def test_equal_epoch_suspect_churn_never_bumps(self):
        a = ClusterView(3)
        b = ClusterView(3)
        a.set_state(1, RankState.SUSPECT)
        b.set_state(2, RankState.SUSPECT)
        a.merge(b)
        assert a.epoch == 0  # no DEAD involved: plain max()

    def test_unequal_epochs_take_the_max_without_extra_bump(self):
        a = ClusterView(3)
        b = ClusterView(3)
        b.set_state(1, RankState.DEAD, bump_epoch=True)  # b: epoch 1
        a.merge(b)
        assert a.epoch == 1  # a DEAD arrived, but the epochs differed
        assert a.state(1) == RankState.DEAD

    def test_merge_is_idempotent(self):
        a = ClusterView(3)
        b = ClusterView(3)
        a.set_state(1, RankState.DEAD, bump_epoch=True)
        b.set_state(2, RankState.DEAD, bump_epoch=True)
        a.merge(b)
        epoch = a.epoch
        assert a.merge(b) == []  # replaying the same gossip: no change
        assert a.epoch == epoch  # and no second divergence bump


class TestRingSuccessor:
    def test_walks_clockwise(self):
        assert ring_successor(0, {1, 2}, 3) == 1
        assert ring_successor(1, {0, 2}, 3) == 2
        assert ring_successor(2, {0, 1}, 3) == 0  # wraps

    def test_skips_missing_ranks(self):
        assert ring_successor(0, {2}, 4) == 2

    def test_empty_alive_set(self):
        assert ring_successor(0, set(), 3) is None


class TestConfigValidation:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(MembershipError):
            MembershipConfig(heartbeat_interval=0)

    def test_rejects_suspect_below_interval(self):
        with pytest.raises(MembershipError):
            MembershipConfig(heartbeat_interval=1.0, suspect_after=0.5)

    def test_rejects_dead_not_above_suspect(self):
        with pytest.raises(MembershipError):
            MembershipConfig(
                heartbeat_interval=1.0, suspect_after=3.0, dead_after=3.0
            )


class TestThresholdEdges:
    def test_silence_walks_alive_suspect_dead(self):
        convicted = []
        world, clock, dets = _pair(
            on_dead=lambda r, v: convicted.append(r)
        )
        det0 = dets[0]  # rank 1 never steps: pure silence
        clock.advance(CFG.suspect_after - 0.01)
        assert det0.step().state(1) == RankState.ALIVE
        clock.advance(0.01)  # exactly suspect_after of silence
        assert det0.step().state(1) == RankState.SUSPECT
        assert det0.stats.suspicions == 1
        clock.advance(CFG.dead_after - CFG.suspect_after - 0.01)
        assert det0.step().state(1) == RankState.SUSPECT
        clock.advance(0.01)  # exactly dead_after of silence
        view = det0.step()
        assert view.state(1) == RankState.DEAD
        assert view.epoch == 1
        assert convicted == [1]
        assert det0.stats.convictions == 1
        assert 1 in det0.detected_at

    def test_conviction_fires_once(self):
        convicted = []
        world, clock, dets = _pair(on_dead=lambda r, v: convicted.append(r))
        clock.advance(CFG.dead_after)
        dets[0].step()
        clock.advance(1.0)
        dets[0].step()  # corpse stays convicted, no second callback
        assert convicted == [1]
        assert dets[0].view.epoch == 1

    def test_heartbeats_keep_ranks_alive(self):
        world, clock, dets = _pair()
        for _ in range(30):  # 30 s total, far past dead_after
            clock.advance(1.0)
            for det in dets:
                det.step()
        for det in dets:
            assert det.view.alive_ranks() == [0, 1]
            assert det.view.epoch == 0
        assert dets[0].stats.heartbeats_received > 0


class TestFlappingRank:
    def test_suspect_recovers_without_conviction(self):
        convicted = []
        world, clock, dets = _pair(on_dead=lambda r, v: convicted.append(r))
        det0, det1 = dets
        clock.advance(CFG.suspect_after)  # rank 1 stalls
        assert det0.step().state(1) == RankState.SUSPECT
        det1.step()  # the stalled rank wakes up and heartbeats
        view = det0.step()
        assert view.state(1) == RankState.ALIVE
        assert view.epoch == 0  # no epoch churn: no repair was triggered
        assert det0.stats.recoveries == 1
        assert convicted == []  # flapping must never trigger re-replication

    def test_flap_then_real_death_still_convicts(self):
        world, clock, dets = _pair()
        det0, det1 = dets
        clock.advance(CFG.suspect_after)
        det0.step()
        det1.step()  # recover
        det0.step()
        clock.advance(CFG.dead_after)  # now actually die
        assert det0.step().state(1) == RankState.DEAD


class TestSimultaneousDeath:
    def test_two_corpses_convicted_ascending_in_one_pass(self):
        world = World(3)
        clock = FakeClock()
        convicted = []
        # quorum off: a rank that hears *nobody* is a minority of one
        # and would (correctly) freeze — this test is about conviction
        # ordering, not partition tolerance
        det0 = FailureDetector(
            world.comm(0), NO_QUORUM, clock=clock,
            on_dead=lambda r, v: convicted.append(r),
        )
        clock.advance(CFG.dead_after)
        view = det0.step()
        assert view.dead_ranks() == [1, 2]
        assert convicted == [1, 2]  # ascending, deterministic
        assert view.epoch == 2  # one bump per conviction

    def test_gossip_spreads_a_conviction(self):
        world = World(3)
        clock = FakeClock()
        fired = {0: [], 1: []}
        dets = [
            FailureDetector(
                world.comm(r), CFG, clock=clock,
                on_dead=lambda rank, v, me=r: fired[me].append(rank),
            )
            for r in range(2)
        ]
        det0, det1 = dets
        clock.advance(CFG.dead_after)
        det1._last_heard[2] = clock.now  # rank 1 heard rank 2 recently
        det1._last_heard[0] = clock.now
        det0._last_heard[1] = clock.now
        det0.step()  # convicts rank 2 locally
        assert fired[0] == [2]
        clock.advance(CFG.heartbeat_interval)
        det0.step()  # the next heartbeat gossips the convicted view
        det1.step()  # learns the conviction via gossip, not timeout
        assert fired[1] == [2]
        assert det1.view.state(2) == RankState.DEAD
        assert det1.view.epoch == det0.view.epoch == 1
        assert det0.view == det1.view  # converged


class TestQuorum:
    """Quorum awareness: a minority component freezes convictions,
    epoch bumps, and writer election instead of amputating the
    majority. (2-rank worlds keep fail-fast conviction — see
    TestThresholdEdges, which runs with quorum on.)"""

    def test_minority_freezes_convictions(self):
        world = World(3)
        clock = FakeClock()
        convicted = []
        det0 = FailureDetector(
            world.comm(0), CFG, clock=clock,
            on_dead=lambda r, v: convicted.append(r),
        )
        clock.advance(CFG.dead_after)  # rank 0 hears nobody: minority of 1
        view = det0.step()
        assert convicted == []
        assert view.dead_ranks() == []
        assert view.epoch == 0  # no conviction, no epoch churn
        # the overdue corpses are demoted to SUSPECT, not DEAD
        assert view.state(1) == RankState.SUSPECT
        assert view.state(2) == RankState.SUSPECT
        assert det0.stats.quorum_denied_convictions == 2
        assert not det0.has_quorum()
        assert det0.elect_writer() is None  # a minority never writes

    def test_denied_conviction_counted_once_per_episode(self):
        world = World(3)
        clock = FakeClock()
        det0 = FailureDetector(world.comm(0), CFG, clock=clock)
        clock.advance(CFG.dead_after)
        det0.step()
        clock.advance(1.0)
        det0.step()  # still overdue, still frozen: no double count
        assert det0.stats.quorum_denied_convictions == 2

    def test_suspect_peer_cannot_vouch_for_quorum(self):
        """Regression: with both peers long silent but *staggered*, the
        later one must not pad quorum for convicting the earlier one.
        Reachability (suspect_after) is stricter than conviction
        (dead_after): a suspect rank is not a quorum voucher."""
        world = World(3)
        clock = FakeClock()
        convicted = []
        det0 = FailureDetector(
            world.comm(0), CFG, clock=clock,
            on_dead=lambda r, v: convicted.append(r),
        )
        clock.advance(CFG.dead_after)
        # rank 2 was heard more recently than rank 1 — but still past
        # the suspicion threshold, so it cannot vouch for a majority
        det0._last_heard[2] = clock.now - CFG.suspect_after - 0.1
        view = det0.step()
        assert convicted == []
        assert view.dead_ranks() == []
        assert view.epoch == 0
        assert det0.stats.quorum_denied_convictions == 1  # rank 1 only
        assert not det0.has_quorum()

    def test_majority_component_still_convicts(self):
        """Hearing one of two peers is a majority (2 of 3): the silent
        third is convicted normally."""
        world = World(3)
        clock = FakeClock()
        convicted = []
        det1 = FailureDetector(
            world.comm(1), CFG, clock=clock,
            on_dead=lambda r, v: convicted.append(r),
        )
        clock.advance(CFG.dead_after)
        det1._last_heard[2] = clock.now  # rank 2 is reachable; rank 0 is not
        view = det1.step()
        assert det1.has_quorum()
        assert view.state(0) == RankState.DEAD
        assert convicted == [0]
        assert view.epoch == 1
        # and the writer moves past the corpse: lowest *non-DEAD* rank
        assert det1.elect_writer() == 1

    def test_healthy_cluster_elects_lowest_rank(self):
        world, clock, dets = _pair(3)
        assert [d.elect_writer() for d in dets] == [0, 0, 0]


class TestIsolation:
    """The ISOLATED mode edge: hysteresis both ways, liveness clocks
    reset on exit, and the join/promotion endpoints refuse while the
    mode is up."""

    def _isolate(self, det, clock):
        """Drive ``det`` (hearing nobody) into ISOLATED mode."""
        clock.advance(CFG.dead_after)
        det.step()  # minority observed: damper arming
        assert not det.isolated
        clock.advance(CFG.isolation_damper)
        det.step()  # minority persisted: mode entered
        assert det.isolated

    def test_entry_needs_the_damper_to_elapse(self):
        world = World(3)
        clock = FakeClock()
        events = []
        det0 = FailureDetector(
            world.comm(0), CFG, clock=clock,
            on_isolated=lambda: events.append("isolated"),
            on_reconnected=lambda v: events.append("reconnected"),
        )
        self._isolate(det0, clock)
        assert events == ["isolated"]
        assert det0.stats.isolated_entries == 1
        assert det0.elect_writer() is None

    def test_exit_needs_quorum_to_persist_and_resets_clocks(self):
        world = World(3)
        clock = FakeClock()
        events = []
        det0 = FailureDetector(
            world.comm(0), CFG, clock=clock,
            on_isolated=lambda: events.append("isolated"),
            on_reconnected=lambda v: events.append(v),
        )
        self._isolate(det0, clock)
        det0._last_heard[1] = clock.now  # quorum contact returns
        det0.step()
        assert det0.isolated  # hysteresis: not out yet
        clock.advance(CFG.isolation_damper)
        det0._last_heard[1] = clock.now
        det0.step()
        assert not det0.isolated
        assert det0.stats.isolated_exits == 1
        assert len(events) == 2 and isinstance(events[1], ClusterView)
        # nothing heard during the cut may count toward a conviction:
        # every liveness clock restarts at the exit instant
        assert det0._last_heard[2] == clock.now

    def test_short_minority_episode_is_damped(self):
        world = World(3)
        clock = FakeClock()
        det0 = FailureDetector(world.comm(0), CFG, clock=clock)
        clock.advance(CFG.dead_after)
        det0.step()  # minority observed, damper arming
        det0._last_heard[1] = clock.now  # link back before the damper fires
        det0._last_heard[2] = clock.now
        det0.step()
        assert det0.stats.damped_flaps == 1
        assert det0.stats.isolated_entries == 0
        assert not det0.isolated

    def test_isolated_peer_refuses_join_and_promotion(self):
        world = World(3)
        clock = FakeClock()
        det0 = FailureDetector(
            world.comm(0), CFG, clock=clock,
            join_snapshot=lambda: {"records": 1},
        )
        self._isolate(det0, clock)
        joiner = FailureDetector(world.comm(1), CFG, clock=clock)
        errors = []

        def _joiner():
            try:
                joiner.request_join(0)
            except MembershipError as exc:
                errors.append(exc)
            try:
                joiner.request_promotion(0)
            except MembershipError as exc:
                errors.append(exc)

        t = threading.Thread(target=_joiner)
        t.start()
        for _ in range(200):
            det0.step()
            t.join(timeout=0.01)
            if not t.is_alive():
                break
        assert not t.is_alive()
        assert len(errors) == 2
        assert "isolated" in str(errors[0]) and "isolated" in str(errors[1])
        assert det0.stats.joins_served == 0
        assert det0.stats.promotions == 0


class TestFlapDamper:
    CFG_DAMP = MembershipConfig(
        heartbeat_interval=1.0, suspect_after=3.0, dead_after=10.0,
        flap_damper=5.0, flap_window=100.0,
    )

    def test_flaps_raise_the_conviction_threshold(self):
        """One recorded flap buys dead_after + flap_damper of silence
        before conviction — distrust the flapping link's silences
        instead of re-replicating on each of them."""
        world = World(2)
        clock = FakeClock()
        convicted = []
        det0 = FailureDetector(
            world.comm(0), self.CFG_DAMP, clock=clock,
            on_dead=lambda r, v: convicted.append(r),
        )
        det1 = FailureDetector(world.comm(1), self.CFG_DAMP, clock=clock)
        clock.advance(self.CFG_DAMP.suspect_after)
        det0.step()  # rank 1 stalls into SUSPECT
        det1.step()  # …and wakes up: heartbeat
        det0.step()  # recovery — one flap on the books
        assert det0.stats.recoveries == 1
        clock.advance(self.CFG_DAMP.dead_after)  # base threshold reached
        assert det0.step().state(1) == RankState.SUSPECT  # damped: not yet
        assert convicted == []
        clock.advance(self.CFG_DAMP.flap_damper)  # raised threshold reached
        assert det0.step().state(1) == RankState.DEAD
        assert convicted == [1]

    def test_threshold_capped_at_four_dead_after(self):
        """A truly dead flapper is still convicted in bounded time."""
        world = World(2)
        clock = FakeClock()
        det0 = FailureDetector(world.comm(0), self.CFG_DAMP, clock=clock)
        det0._flaps[1] = [0.0] * 100
        assert (det0._conviction_threshold(1, 0.0)
                == 4 * self.CFG_DAMP.dead_after)

    def test_damper_off_keeps_base_threshold(self):
        world = World(2)
        clock = FakeClock()
        det0 = FailureDetector(world.comm(0), CFG, clock=clock)
        det0._flaps[1] = [0.0] * 100  # ignored: flap_damper == 0
        assert det0._conviction_threshold(1, 0.0) == CFG.dead_after


class TestRejoinHandshake:
    def _join(self, det_peer, det_joiner, *, promote=True):
        """Drive the blocking joiner calls against a stepping peer."""
        out = {}

        def _joiner():
            out["snapshot"] = det_joiner.request_join(0)
            if promote:
                out["view"] = det_joiner.request_promotion(0)

        t = threading.Thread(target=_joiner)
        t.start()
        for _ in range(200):
            det_peer.step()
            t.join(timeout=0.01)
            if not t.is_alive():
                break
        assert not t.is_alive()
        return out

    def test_join_serves_view_and_snapshot_as_suspect(self):
        world = World(2)
        clock = FakeClock()
        det0 = FailureDetector(
            world.comm(0), CFG, clock=clock,
            join_snapshot=lambda: {"records": 12},
        )
        clock.advance(CFG.dead_after)
        det0.step()  # rank 1 convicted
        joiner = FailureDetector(world.comm(1), CFG, clock=clock)

        out = {}

        def _joiner():
            out["snapshot"] = joiner.request_join(0)

        t = threading.Thread(target=_joiner)
        t.start()
        for _ in range(200):
            det0.step()
            t.join(timeout=0.01)
            if not t.is_alive():
                break
        assert not t.is_alive()
        assert out["snapshot"] == {"records": 12}
        assert det0.view.state(1) == RankState.SUSPECT
        assert det0.stats.joins_served == 1
        # settled history: the joiner never re-fires on_dead for corpses
        assert 1 in joiner._convicted or joiner.view.state(1) != RankState.DEAD

    def test_promotion_requires_verified_read(self):
        world = World(2)
        clock = FakeClock()
        reads = []

        def verify(rank):
            reads.append(rank)
            return True

        det0 = FailureDetector(
            world.comm(0), CFG, clock=clock, verify_read=verify,
            join_snapshot=lambda: None,
        )
        clock.advance(CFG.dead_after)
        det0.step()
        joiner = FailureDetector(world.comm(1), CFG, clock=clock)
        out = self._join(det0, joiner)
        assert reads == [1]
        assert det0.view.state(1) == RankState.ALIVE
        assert det0.stats.promotions == 1
        # promotion is a membership change: the epoch moved
        assert det0.view.epoch == 2
        assert out["view"].state(1) == RankState.ALIVE
        assert out["view"].epoch == 2

    def test_failed_verification_rejects_promotion(self):
        world = World(2)
        clock = FakeClock()
        det0 = FailureDetector(
            world.comm(0), CFG, clock=clock,
            verify_read=lambda rank: False, join_snapshot=lambda: None,
        )
        clock.advance(CFG.dead_after)
        det0.step()
        joiner = FailureDetector(world.comm(1), CFG, clock=clock)
        errors = []

        def _joiner():
            joiner.request_join(0)
            try:
                joiner.request_promotion(0)
            except MembershipError as exc:
                errors.append(exc)

        t = threading.Thread(target=_joiner)
        t.start()
        for _ in range(200):
            det0.step()
            t.join(timeout=0.01)
            if not t.is_alive():
                break
        assert not t.is_alive()
        assert len(errors) == 1
        assert det0.view.state(1) == RankState.SUSPECT  # not promoted


def _record(path, home, partition, *, broadcast=False, size=100):
    flags = FLAG_BROADCAST if broadcast else 0
    stat = FileStat(st_size=size, partition_id=partition, flags=flags)
    return FileRecord(
        path=path,
        stat=stat.with_locality(home),
        compressor_id=0,
        compressed_size=size,
        home_rank=home,
        partition_id=partition,
    )


class TestRereplicationPlanning:
    def _table(self):
        """3 ranks, one record per partition, replicas on the ring
        successor (partition p homed on p, replicated on p+1)."""
        table = MetadataTable()
        for p in range(3):
            table.insert(_record(f"f{p}", p, p))
            table.add_replica(f"f{p}", (p + 1) % 3)
        table.insert(_record("val/v0", 0, 3, broadcast=True))
        return table

    def test_plan_covers_home_and_replica_losses(self):
        table = self._table()
        steps = {s.path: s for s in table.plan_rereplication(2, [0, 1], 3)}
        # f2 was homed on 2 (replica on 0); f1's replica lived on 2
        assert set(steps) == {"f1", "f2"}
        s2 = steps["f2"]
        assert s2.new_home == 0  # lowest surviving copy holder
        assert s2.source_ranks == (0,)
        assert s2.stage_rank == 1  # first alive successor without a copy
        assert set(s2.new_replicas) == {1}
        s1 = steps["f1"]
        assert s1.new_home == 1  # home survived: unchanged
        assert s1.source_ranks == (1,)
        assert s1.stage_rank == 0
        assert set(s1.new_replicas) == {0}

    def test_plan_skips_broadcast_records(self):
        table = self._table()
        steps = table.plan_rereplication(0, [1, 2], 3)
        assert all(s.path != "val/v0" for s in steps)

    def test_plan_is_deterministic(self):
        a = self._table().plan_rereplication(2, [0, 1], 3)
        b = self._table().plan_rereplication(2, [1, 0], 3)
        assert a == b

    def test_plan_with_no_survivors_stages_from_shared_fs(self):
        table = MetadataTable()
        table.insert(_record("lonely", 2, 2))  # no replicas at all
        (step,) = table.plan_rereplication(2, [0, 1], 3)
        assert step.source_ranks == ()
        assert step.stage_rank == 0  # ring successor of 2
        assert step.new_home == 0  # adopts the record
        assert step.new_replicas == ()

    def test_apply_commits_new_owners(self):
        table = self._table()
        steps = table.plan_rereplication(2, [0, 1], 3)
        changed = table.apply_rereplication(steps, 2)
        assert changed == 1  # only f2 was re-homed
        assert table.get("f2").home_rank == 0
        assert table.get("f2").stat.home_rank == 0  # locality stamped
        assert table.replica_ranks("f2") == (1,)
        assert table.replica_ranks("f1") == (0,)  # dead replica replaced
        assert table.get("f1").home_rank == 1


class _StubDetector:
    """Just enough of FailureDetector for routing-cache tests."""

    def __init__(self, view: ClusterView) -> None:
        self._view = view

    @property
    def view(self) -> ClusterView:
        return self._view.clone()


class TestNegativeRouteCache:
    def test_cache_hits_until_epoch_bump(self):
        daemon = FanStoreDaemon()
        view = ClusterView(3)
        daemon._membership = _StubDetector(view)
        assert not daemon._route_dead(1)
        daemon._note_dead_route(1)
        assert daemon._route_dead(1)
        assert daemon.stats.dead_route_skips == 0  # counting is the caller's
        view.set_state(2, RankState.DEAD, bump_epoch=True)
        # the epoch moved: the cached outcome is stale and dropped
        assert not daemon._route_dead(1)
        assert not daemon._route_dead(1)

    def test_view_conviction_overrides_everything(self):
        daemon = FanStoreDaemon()
        view = ClusterView(3)
        view.set_state(2, RankState.DEAD, bump_epoch=True)
        daemon._membership = _StubDetector(view)
        assert daemon._route_dead(2)

    def test_cache_works_without_membership(self):
        daemon = FanStoreDaemon()
        assert not daemon._route_dead(1)
        daemon._note_dead_route(1)
        assert daemon._route_dead(1)
        daemon._clear_dead_route(1)
        assert not daemon._route_dead(1)

    def test_own_rank_never_dead_routed(self):
        daemon = FanStoreDaemon()
        daemon._note_dead_route(0)
        assert not daemon._route_dead(0)


class _SplitStub(_StubDetector):
    """A detector stub stuck on the minority side of a partition."""

    isolated = True

    def has_quorum(self) -> bool:
        return False


class TestSnapshotAdoption:
    """``apply_membership_snapshot`` treats the peer's replica map as
    authoritative: a partition survivor's own stale entries must not
    outlive the adoption, and only the deterministic round-robin rule
    is self-announced on top."""

    def test_stale_self_replica_is_replaced(self):
        # Split-era state: rank 2 still believes it replicates a
        # partition-1 file whose replica duty the majority re-homed.
        daemon = FanStoreDaemon(World(3).comm(2))
        daemon.metadata.insert(_record("train/a", home=1, partition=1))
        daemon.metadata.add_replica("train/a", 2)
        daemon.backend.put("train/a", b"x" * 4)
        merged = _record("train/a", home=0, partition=1)
        daemon.apply_membership_snapshot(([merged], {"train/a": (1,)}))
        assert daemon.metadata.get("train/a").home_rank == 0
        assert daemon.metadata.replica_ranks("train/a") == (1,)

    def test_own_partition_copies_are_self_announced(self):
        daemon = FanStoreDaemon(World(3).comm(2))
        mine = _record("train/b", home=0, partition=2)  # 2 % 3 == rank
        daemon.backend.put("train/b", b"y" * 4)
        daemon.apply_membership_snapshot(([mine], {"train/b": (1,)}))
        assert daemon.metadata.replica_ranks("train/b") == (1, 2)

    def test_copies_not_physically_held_are_not_announced(self):
        daemon = FanStoreDaemon(World(3).comm(2))
        mine = _record("train/c", home=0, partition=2)
        daemon.apply_membership_snapshot(([mine], {}))
        assert daemon.metadata.replica_ranks("train/c") == ()


class TestConvictionFreeze:
    def test_isolated_daemon_freezes_rereplication(self):
        daemon = FanStoreDaemon(World(3).comm(0))
        daemon._membership = _SplitStub(ClusterView(3))
        view = ClusterView(3)
        view.set_state(2, RankState.DEAD, bump_epoch=True)
        daemon.on_rank_dead(2, view)
        assert daemon.stats.rereplications_frozen == 1
        assert daemon.stats.rereplicated_records == 0
        assert 2 in daemon._frozen_corpses
