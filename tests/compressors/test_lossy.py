"""Lossy codecs (the §VIII future-work extension): error-bound
guarantees, rate guarantees, format robustness."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compressors.lossy import (
    SzLikeCodec,
    ZfpLikeCodec,
    max_abs_error,
    psnr,
)
from repro.errors import CompressionError

finite_floats = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False,
    width=64,
)

float_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=0, max_value=300),
    elements=finite_floats,
)


class TestSzErrorBound:
    """The defining property: L∞(original, reconstructed) ≤ bound."""

    @settings(max_examples=40, deadline=None)
    @given(arr=float_arrays, eb=st.sampled_from([1e-6, 1e-3, 0.1, 10.0]))
    def test_linf_bound_holds(self, arr, eb):
        codec = SzLikeCodec(eb)
        out = codec.decompress(codec.compress(arr))
        assert out.shape == arr.shape
        assert max_abs_error(arr, out) <= eb * (1 + 1e-12)

    @settings(max_examples=20, deadline=None)
    @given(arr=float_arrays)
    def test_linear_predictor_bound_holds(self, arr):
        codec = SzLikeCodec(0.01, predictor="linear")
        out = codec.decompress(codec.compress(arr))
        assert max_abs_error(arr, out) <= 0.01 * (1 + 1e-12)

    def test_smooth_data_compresses_hard(self):
        t = np.linspace(0.0, 10.0, 5000)
        smooth = np.sin(t) * 100.0
        codec = SzLikeCodec(0.01)
        assert codec.ratio(smooth) > 5.0

    def test_looser_bound_higher_ratio(self):
        rng = np.random.default_rng(0)
        walk = np.cumsum(rng.standard_normal(4000))
        tight = SzLikeCodec(1e-4).ratio(walk)
        loose = SzLikeCodec(1.0).ratio(walk)
        assert loose > 2 * tight

    def test_unpredictable_points_stored_exactly(self):
        """Huge jumps overflow the quantizer; those points must come
        back bit-close (within the bound) anyway."""
        arr = np.zeros(100)
        arr[50] = 1e15  # >> quant range × bound
        codec = SzLikeCodec(1e-6)
        out = codec.decompress(codec.compress(arr))
        assert max_abs_error(arr, out) <= 1e-6

    def test_float32_roundtrip_dtype(self):
        arr = np.linspace(0, 1, 100, dtype=np.float32)
        codec = SzLikeCodec(0.01)
        out = codec.decompress(codec.compress(arr))
        assert out.dtype == np.float32

    def test_multidimensional_shape_restored(self):
        rng = np.random.default_rng(1)
        arr = rng.standard_normal((10, 20, 3))
        codec = SzLikeCodec(0.05)
        out = codec.decompress(codec.compress(arr))
        assert out.shape == (10, 20, 3)
        assert max_abs_error(arr, out) <= 0.05 * (1 + 1e-12)

    def test_rejects_bad_inputs(self):
        with pytest.raises(CompressionError):
            SzLikeCodec(0.0)
        with pytest.raises(CompressionError):
            SzLikeCodec(0.1, predictor="magic")
        with pytest.raises(CompressionError):
            SzLikeCodec(0.1).compress(np.array([1, 2, 3]))  # int array
        with pytest.raises(CompressionError):
            SzLikeCodec(0.1).compress(np.array([np.nan]))
        with pytest.raises(CompressionError):
            SzLikeCodec(0.1).decompress(b"not a blob")


class TestZfpRate:
    @settings(max_examples=25, deadline=None)
    @given(
        arr=hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=1, max_value=500),
            elements=st.floats(min_value=-1e6, max_value=1e6,
                               allow_nan=False, allow_infinity=False),
        ),
        bits=st.sampled_from([8, 12, 16]),
    )
    def test_block_relative_error_bound(self, arr, bits):
        codec = ZfpLikeCodec(bits, block_size=64)
        out = codec.decompress(codec.compress(arr))
        bound = codec.block_relative_error_bound()
        bs = codec.block_size
        for b in range(0, arr.size, bs):
            chunk = arr[b : b + bs]
            peak = np.max(np.abs(chunk))
            if peak == 0:
                assert np.all(out[b : b + bs] == 0)
            else:
                # one extra half-step of slack for exponent rounding
                assert max_abs_error(chunk, out[b : b + bs]) <= (
                    2.0 * bound * peak + 1e-12
                )

    def test_more_bits_less_error(self):
        rng = np.random.default_rng(2)
        arr = np.cumsum(rng.standard_normal(2048))
        err8 = max_abs_error(
            arr, ZfpLikeCodec(8).decompress(ZfpLikeCodec(8).compress(arr))
        )
        err16 = max_abs_error(
            arr, ZfpLikeCodec(16).decompress(ZfpLikeCodec(16).compress(arr))
        )
        assert err16 < err8

    def test_zero_blocks_exact(self):
        arr = np.zeros(256)
        codec = ZfpLikeCodec(8)
        out = codec.decompress(codec.compress(arr))
        np.testing.assert_array_equal(out, arr)

    def test_parameter_validation(self):
        with pytest.raises(CompressionError):
            ZfpLikeCodec(1)
        with pytest.raises(CompressionError):
            ZfpLikeCodec(12, block_size=2)
        with pytest.raises(CompressionError):
            ZfpLikeCodec(12).decompress(b"garbage")


class TestMetrics:
    def test_max_abs_error_basic(self):
        a = np.array([1.0, 2.0])
        b = np.array([1.5, 2.0])
        assert max_abs_error(a, b) == 0.5
        with pytest.raises(CompressionError):
            max_abs_error(a, np.zeros(3))

    def test_psnr_infinite_for_identical(self):
        a = np.linspace(0, 1, 10)
        assert psnr(a, a) == float("inf")

    def test_psnr_decreases_with_noise(self):
        rng = np.random.default_rng(3)
        a = np.sin(np.linspace(0, 5, 500))
        small = psnr(a, a + 1e-6 * rng.standard_normal(500))
        large = psnr(a, a + 1e-2 * rng.standard_normal(500))
        assert small > large
