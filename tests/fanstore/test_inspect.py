"""The fanstore-inspect tool."""

from __future__ import annotations

import shutil

import pytest

from repro.fanstore.corruption import corrupt_record
from repro.fanstore.inspect import (
    list_partition,
    main,
    rebuild_manifest,
    repair_dataset,
    summarize_dataset,
    verify_dataset,
)
from repro.fanstore.prepare import MANIFEST_NAME, PreparedDataset


@pytest.fixture()
def dataset_copy(prepared_dataset, tmp_path):
    root = tmp_path / "copy"
    shutil.copytree(prepared_dataset.root, root)
    return PreparedDataset.load(root)


def read_first_record(prepared) -> str:
    from repro.fanstore.layout import read_partition

    return read_partition(prepared.partition_paths()[0], with_data=False)[0].path


class TestSummarize:
    def test_summary_fields(self, prepared_dataset):
        out = summarize_dataset(prepared_dataset.root)
        assert "files:       15" in out
        assert "partitions:  3 + broadcast" in out
        assert "ratio:" in out


class TestList:
    def test_lists_entries_with_compressor(self, prepared_dataset):
        path = prepared_dataset.partition_paths()[0]
        out = list_partition(path)
        assert "entries" in out
        assert "->" in out

    def test_limit_truncates(self, prepared_dataset):
        path = prepared_dataset.partition_paths()[0]
        out = list_partition(path, limit=1)
        assert "more" in out


class TestVerify:
    def test_clean_dataset_verifies(self, prepared_dataset):
        verified, problems = verify_dataset(prepared_dataset.root)
        assert verified == 15
        assert problems == []

    def test_corruption_detected(self, prepared_dataset, tmp_path):
        import shutil

        bad = tmp_path / "bad"
        shutil.copytree(prepared_dataset.root, bad)
        victim = bad / prepared_dataset.partitions[0]
        raw = bytearray(victim.read_bytes())
        raw[-10] ^= 0xFF  # corrupt the last entry's payload
        victim.write_bytes(bytes(raw))
        verified, problems = verify_dataset(bad)
        assert problems
        assert verified < 15


class TestVerifyDigests:
    def test_payload_digest_problem_reported(self, dataset_copy):
        victim = read_first_record(dataset_copy)
        corrupt_record(dataset_copy, victim, seed=3)
        verified, problems = verify_dataset(dataset_copy.root)
        assert f"{victim}: payload digest mismatch" in problems
        assert any("partition digest mismatch" in p for p in problems)

    def test_sample_bounds_work(self, prepared_dataset):
        verified, problems = verify_dataset(prepared_dataset.root, sample=4)
        assert verified == 4
        assert problems == []


class TestRepair:
    def test_rebuild_manifest_from_partitions(self, dataset_copy):
        (dataset_copy.root / MANIFEST_NAME).unlink()
        rebuilt = rebuild_manifest(dataset_copy.root)
        assert rebuilt.num_files == 15
        reloaded = PreparedDataset.load(dataset_copy.root)
        assert reloaded.partitions == dataset_copy.partitions
        assert verify_dataset(dataset_copy.root) == (15, [])

    def test_repair_rebuilds_corrupt_manifest(self, dataset_copy):
        (dataset_copy.root / MANIFEST_NAME).write_text("{ not json")
        repaired, problems = repair_dataset(dataset_copy.root)
        assert any("manifest.json: rebuilt" in r for r in repaired)
        assert problems == []
        assert verify_dataset(dataset_copy.root) == (15, [])

    def test_repair_recompresses_record_from_source(
        self, dataset_copy, raw_dataset_dir
    ):
        victim = read_first_record(dataset_copy)
        corrupt_record(dataset_copy, victim, seed=5)
        repaired, problems = repair_dataset(
            dataset_copy.root, source=raw_dataset_dir / "train"
        )
        assert f"{victim}: re-compressed from source" in repaired
        assert problems == []
        assert verify_dataset(dataset_copy.root) == (15, [])

    def test_repair_without_source_reports_unrepaired(self, dataset_copy):
        victim = read_first_record(dataset_copy)
        corrupt_record(dataset_copy, victim, seed=5)
        repaired, problems = repair_dataset(dataset_copy.root)
        assert f"{victim}: unrepaired (no good source)" in problems


class TestCli:
    def test_main_summary(self, prepared_dataset, capsys):
        assert main([str(prepared_dataset.root)]) == 0
        assert "ratio" in capsys.readouterr().out

    def test_main_verify_ok(self, prepared_dataset, capsys):
        assert main([str(prepared_dataset.root), "--verify"]) == 0
        assert "verified 15 entries" in capsys.readouterr().out

    def test_main_list(self, prepared_dataset, capsys):
        assert main([str(prepared_dataset.root), "--list", "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "part-00000.fst" in out

    def test_main_verify_corrupt_exits_nonzero(self, prepared_dataset,
                                               tmp_path, capsys):
        import shutil

        bad = tmp_path / "bad"
        shutil.copytree(prepared_dataset.root, bad)
        victim = bad / prepared_dataset.partitions[1]
        raw = bytearray(victim.read_bytes())
        raw[-5] ^= 0x55
        victim.write_bytes(bytes(raw))
        assert main([str(bad), "--verify"]) == 1
        assert "PROBLEM" in capsys.readouterr().out

    def test_main_verify_sample(self, prepared_dataset, capsys):
        assert main([str(prepared_dataset.root), "--verify",
                     "--sample", "4"]) == 0
        assert "verified 4 entries" in capsys.readouterr().out

    def test_main_repair_with_source_exits_zero(
        self, dataset_copy, raw_dataset_dir, capsys
    ):
        victim = read_first_record(dataset_copy)
        corrupt_record(dataset_copy, victim, seed=9)
        argv = [str(dataset_copy.root), "--verify", "--repair",
                "--source", str(raw_dataset_dir / "train")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert f"REPAIRED: {victim}: re-compressed from source" in out
        assert "verified 15 entries" in out

    def test_main_repair_without_source_exits_nonzero(
        self, dataset_copy, capsys
    ):
        victim = read_first_record(dataset_copy)
        corrupt_record(dataset_copy, victim, seed=9)
        assert main([str(dataset_copy.root), "--verify", "--repair"]) == 1
        assert "unrepaired" in capsys.readouterr().out

    def test_main_corrupt_manifest_summary_is_loud(self, dataset_copy,
                                                   capsys):
        (dataset_copy.root / MANIFEST_NAME).write_text("{ not json")
        assert main([str(dataset_copy.root)]) == 1
        out = capsys.readouterr().out
        assert "PROBLEM" in out
        assert "--repair" in out  # the hint
