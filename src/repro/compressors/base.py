"""Core abstractions of the compressor suite.

The suite is organized the way lzbench (the tool the paper uses)
organizes its candidates: a *codec* is an entropy/dictionary coder
operating on raw bytes; a *filter* is a reversible byte transform
applied before the codec to expose structure (delta, bitshuffle, ...).
A :class:`Compressor` is a named filter-chain + codec pipeline and is
the unit the registry, the data-preparation tool, and the selection
algorithm all operate on. The registry assigns each compressor the
2-byte integer identifier stored in the partition layout (Table I of
the paper).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import CompressionError


class Codec(abc.ABC):
    """A lossless byte-stream coder.

    Implementations must satisfy ``decompress(compress(x)) == x`` for all
    byte strings ``x`` (the round-trip property; enforced by the
    hypothesis suite in ``tests/compressors``).
    """

    #: short machine name, unique among codecs ("zlib-6", "fastlz-3", ...)
    name: str = "codec"

    @abc.abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Compress ``data``; never raises for valid byte input."""

    @abc.abstractmethod
    def decompress(self, data: bytes) -> bytes:
        """Invert :meth:`compress`; raises CompressionError on corrupt input."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class Filter(abc.ABC):
    """A reversible byte transform applied ahead of a codec.

    Filters never change semantics, only byte layout; they must satisfy
    ``backward(forward(x)) == x``.
    """

    name: str = "filter"

    @abc.abstractmethod
    def forward(self, data: bytes) -> bytes:
        """Apply the transform."""

    @abc.abstractmethod
    def backward(self, data: bytes) -> bytes:
        """Invert :meth:`forward`."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


@dataclass(frozen=True)
class Compressor:
    """A named, registry-addressable (filters → codec) pipeline.

    ``compressor_id`` is the 2-byte integer recorded per file in the
    FanStore partition format; ids are assigned by the registry and are
    stable for a given registry build order.
    """

    name: str
    codec: Codec
    filters: tuple[Filter, ...] = ()
    compressor_id: int = -1

    def compress(self, data: bytes) -> bytes:
        """Run the filter chain forward, then the codec."""
        for f in self.filters:
            data = f.forward(data)
        return self.codec.compress(data)

    def decompress(self, data: bytes) -> bytes:
        """Run the codec, then the filter chain backward."""
        data = self.codec.decompress(data)
        for f in reversed(self.filters):
            data = f.backward(data)
        return data

    def ratio(self, data: bytes) -> float:
        """Compression ratio original/compressed on a sample (>= 0).

        Matches the paper's convention: larger is better, 1.0 means
        incompressible. Empty inputs report 1.0.
        """
        if not data:
            return 1.0
        compressed = self.compress(data)
        if not compressed:
            raise CompressionError(
                f"{self.name} produced empty output for non-empty input"
            )
        return len(data) / len(compressed)

    def __str__(self) -> str:
        return self.name


def write_uvarint(value: int) -> bytes:
    """LEB128-encode a non-negative integer (codec payload headers)."""
    if value < 0:
        raise ValueError("uvarint must be non-negative")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def read_uvarint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a LEB128 integer; returns ``(value, next_offset)``."""
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise CompressionError("truncated uvarint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise CompressionError("uvarint too long")
