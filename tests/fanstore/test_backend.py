"""Compressed-object backends: RAM and local-disk."""

from __future__ import annotations

import pytest

from repro.errors import FileNotFoundInStoreError
from repro.fanstore.backend import DiskBackend, RamBackend


@pytest.fixture(params=["ram", "disk"])
def backend(request, tmp_path):
    if request.param == "ram":
        return RamBackend()
    return DiskBackend(tmp_path / "blobs")


class TestBackendContract:
    def test_put_get(self, backend):
        backend.put("a/b.bin", b"payload")
        assert backend.get("a/b.bin") == b"payload"

    def test_contains_and_len(self, backend):
        assert "x" not in backend
        backend.put("x", b"1")
        backend.put("y", b"22")
        assert "x" in backend
        assert len(backend) == 2

    def test_missing_raises(self, backend):
        with pytest.raises(FileNotFoundInStoreError):
            backend.get("ghost")

    def test_overwrite(self, backend):
        backend.put("k", b"v1")
        backend.put("k", b"v2")
        assert backend.get("k") == b"v2"
        assert len(backend) == 1

    def test_resident_bytes(self, backend):
        backend.put("a", bytes(100))
        backend.put("b", bytes(50))
        assert backend.resident_bytes == 150

    def test_weird_paths_are_safe(self, backend):
        """Paths with separators, dots, unicode must not collide or
        escape (DiskBackend content-addresses blob names)."""
        paths = ["a/b", "a_b", "../escape", "ünïcode/файл", "x" * 200]
        for i, p in enumerate(paths):
            backend.put(p, f"v{i}".encode())
        for i, p in enumerate(paths):
            assert backend.get(p) == f"v{i}".encode()


class TestDiskBackendSpecifics:
    def test_blobs_live_under_root(self, tmp_path):
        root = tmp_path / "store"
        backend = DiskBackend(root)
        backend.put("../../../etc/passwd", b"not really")
        blobs = list(root.iterdir())
        assert len(blobs) == 1
        assert blobs[0].suffix == ".blob"

    def test_persists_bytes_on_disk(self, tmp_path):
        backend = DiskBackend(tmp_path / "store")
        backend.put("k", b"durable")
        blob = next((tmp_path / "store").iterdir())
        assert blob.read_bytes() == b"durable"


class TestDiskBackendDurability:
    def test_put_leaves_no_tmp(self, tmp_path):
        backend = DiskBackend(tmp_path / "store")
        backend.put("k", b"x" * 1000)
        assert not list((tmp_path / "store").glob("*.tmp"))

    def test_crash_mid_put_preserves_old_blob(self, tmp_path):
        from repro.fanstore.crash import CrashPlan, SimulatedCrashError

        backend = DiskBackend(tmp_path / "store")
        backend.put("k", b"old")
        with CrashPlan().crash_at("apply.tmp_written"):
            with pytest.raises(SimulatedCrashError):
                backend.put("k", b"new")
        # a reader never sees torn bytes: the old blob survives whole
        assert backend.get("k") == b"old"

    def test_adopt_reindexes_surviving_blob(self, tmp_path):
        first = DiskBackend(tmp_path / "store")
        first.put("k", b"survivor")
        # a fresh incarnation: the index died with the process
        second = DiskBackend(tmp_path / "store")
        assert "k" not in second
        assert second.adopt("k")
        assert second.get("k") == b"survivor"
        assert not second.adopt("ghost")

    def test_blob_path_is_stable(self, tmp_path):
        backend = DiskBackend(tmp_path / "store")
        backend.put("k", b"v")
        assert backend.blob_path("k").read_bytes() == b"v"

    def test_injected_enospc_surfaces_as_storage_full(self, tmp_path):
        from repro.errors import StorageFullError
        from repro.fanstore.crash import DiskFaultInjector

        backend = DiskBackend(tmp_path / "store")
        backend.injector = DiskFaultInjector().fail_puts("k")
        with pytest.raises(StorageFullError) as exc_info:
            backend.put("k", b"refused")
        import errno
        assert exc_info.value.errno == errno.ENOSPC
        assert exc_info.value.filename == "k"
        backend.put("k", b"ok now")  # budget spent: writes resume
        assert backend.get("k") == b"ok now"
