"""Pytest plugin that runs the whole suite under the lockdep witness.

Loaded from the repo-root ``conftest.py`` (``pytest_plugins``), so every
tier-1 run — including the 3-rank chaos/membership seed matrices —
doubles as a lock-order drill. Default-on; set ``FANSTORE_LOCKDEP=0``
to opt out (e.g. when bisecting an unrelated failure).

Any cycle observed by the witness fails the run: the report (with both
directions' witness stacks) is printed in the terminal summary and the
session exit status is forced non-zero, mirroring how the kernel's
lockdep turns a latent inversion into a hard failure long before the
deadlock fires.
"""

from __future__ import annotations

import os

from repro.analysis.lockdep import LockdepWitness

_witness: LockdepWitness | None = None


def _enabled() -> bool:
    return os.environ.get("FANSTORE_LOCKDEP", "1") not in ("0", "off", "no")


def pytest_configure(config) -> None:
    global _witness
    if not _enabled():
        return
    _witness = LockdepWitness()
    _witness.install()
    config._fanstore_lockdep = _witness


def pytest_sessionfinish(session, exitstatus) -> None:
    if _witness is not None and _witness.cycles and exitstatus == 0:
        # wrap_session returns session.exitstatus, so this fails the run
        session.exitstatus = 1


def pytest_terminal_summary(terminalreporter, exitstatus, config) -> None:
    if _witness is None:
        return
    if _witness.cycles:
        terminalreporter.section("lockdep", sep="=", red=True)
        terminalreporter.write_line(_witness.report())
    else:
        terminalreporter.write_line(_witness.report())


def pytest_unconfigure(config) -> None:
    global _witness
    if _witness is not None:
        _witness.uninstall()
        _witness = None
