"""Extension — the selection operating envelope (§VI-B as a map).

Sweeps Equation 2 across iteration times for the FRNN candidate set and
locates the qualification crossover by bisection: below the boundary
only fast codecs survive, above it the dense codec wins — the paper's
three operating points generalized to the full curve.
"""

from __future__ import annotations

import pytest

from repro.bench.report import PaperComparison
from repro.selection.cases import frnn_cpu
from repro.selection.sweep import crossover_t_iter, sweep_t_iter

T_ITERS = (0.0005, 0.002, 0.01, 0.05, 0.25, 1.0)


def test_selection_envelope(benchmark, emit_report):
    case = frnn_cpu()
    candidates = case.candidates()

    def run():
        points = sweep_t_iter(case.inputs, candidates, T_ITERS)
        boundary = crossover_t_iter(
            case.inputs, candidates, lo=1e-5, hi=2.0
        )
        return points, boundary

    points, boundary = benchmark(run)

    report = PaperComparison(
        "Selection envelope (FRNN candidates)",
        "winner vs iteration time under Eq. 2 (async)",
        columns=["T_iter", "winner", "strict", "budget µs/file"],
    )
    for p in points:
        report.add_row(
            f"{p.t_iter * 1e3:g} ms",
            p.winner or "(raw)",
            "yes" if p.strict else "fallback",
            round(max(p.budget_per_file, 0) * 1e6, 1),
        )
    report.add_note(
        f"strict-qualification boundary at T_iter ≈ "
        f"{boundary * 1e3:.2f} ms; the paper's 655 ms operating point "
        f"sits far inside the envelope (everything qualifies, §VII-E2)"
    )
    emit_report(report)

    assert boundary is not None
    assert boundary < case.inputs.t_iter
    budgets = [p.budget_per_file for p in points]
    assert budgets == sorted(budgets)  # Eq. 2 monotone in T_iter
    # at the slow end the dense candidate (brotli) wins
    assert points[-1].winner == "brotli"