"""*deprecated-facade*: internal code must not use what we've deprecated.

Two facades survive for external callers but are off-limits inside the
repo (the DeprecationWarning they emit would otherwise never become a
removal):

- ``FanStore.stats()`` — superseded by ``FanStore.metrics``;
- legacy keyword construction ``FanStore(prepared, comm=…, config=…)``
  — superseded by ``FanStoreOptions``.

The pass flags any zero-argument ``.stats()`` call (except on ``self``,
so the shim's own definition chain stays clean) and any ``FanStore(…)``
call carrying a legacy construction keyword. The legacy keyword set is
kept in sync with ``FanStoreOptions`` dynamically when the class is
importable, falling back to a pinned copy for standalone lint runs.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, LintPass, Project

_FALLBACK_LEGACY_KWARGS = frozenset(
    {
        "comm",
        "config",
        "local_dir",
        "backend",
        "registry",
        "mount_point",
        "membership",
        "rejoin_peer",
    }
)


def _legacy_kwargs() -> frozenset[str]:
    try:
        from repro.fanstore.store import _LEGACY_KWARGS

        return frozenset(_LEGACY_KWARGS)
    except Exception:
        return _FALLBACK_LEGACY_KWARGS


class DeprecatedFacadePass(LintPass):
    rule = "deprecated-facade"
    title = "no internal use of FanStore.stats() or legacy FanStore(**kwargs)"

    def run(self, project: Project) -> Iterable[Finding]:
        legacy = _legacy_kwargs()
        findings: list[Finding] = []
        for src in project:
            for node in ast.walk(src.tree):
                if not isinstance(node, ast.Call):
                    continue
                fn = node.func
                if (
                    isinstance(fn, ast.Attribute)
                    and fn.attr == "stats"
                    and not node.args
                    and not node.keywords
                    and not (
                        isinstance(fn.value, ast.Name) and fn.value.id == "self"
                    )
                ):
                    findings.append(
                        self.finding(
                            src,
                            node,
                            "FanStore.stats() is deprecated internally; read "
                            "FanStore.metrics / the counters it binds",
                        )
                    )
                    continue
                name = (
                    fn.id
                    if isinstance(fn, ast.Name)
                    else fn.attr if isinstance(fn, ast.Attribute) else None
                )
                if name != "FanStore":
                    continue
                bad = sorted(
                    kw.arg
                    for kw in node.keywords
                    if kw.arg is not None and kw.arg in legacy
                )
                if bad:
                    findings.append(
                        self.finding(
                            src,
                            node,
                            "legacy FanStore keyword construction "
                            f"({', '.join(bad)}) is deprecated; build a "
                            "FanStoreOptions and pass it as the second "
                            "argument",
                        )
                    )
        return findings
