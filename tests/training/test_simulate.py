"""The cluster-scale simulation: weak scaling bands, Lustre collapse,
app profiles."""

from __future__ import annotations

import pytest

from repro.cluster.machines import cpu, gtx, v100
from repro.compressors.profiles import get_profile
from repro.errors import ReproError, SimulationError
from repro.training.apps import APPLICATIONS, frnn, get_app, resnet50, srgan
from repro.training.simulate import (
    PROFILE_NODES,
    SimJob,
    simulate_run,
    weak_scaling_sweep,
)


class TestAppProfiles:
    def test_table5_values(self):
        s = srgan()
        assert s.c_batch == 256
        assert s.t_iter("GTX") == pytest.approx(9.689)
        assert s.t_iter("V100") == pytest.approx(2.416)
        f = frnn()
        assert f.c_batch == 512
        assert f.io_mode == "async"
        assert f.t_iter("CPU") == pytest.approx(0.655)

    def test_avg_file_size_em(self):
        # 410 MB / 256 files ≈ 1.6 MB — Table II's EM average
        assert srgan().avg_file_bytes == pytest.approx(1.6e6, rel=0.01)

    def test_unknown_cluster_raises(self):
        with pytest.raises(ReproError):
            srgan().t_iter("Fugaku")

    def test_registry(self):
        assert set(APPLICATIONS) == {"SRGAN", "FRNN", "ResNet-50"}
        assert get_app("ResNet-50").gradient_bytes > get_app("SRGAN").gradient_bytes
        with pytest.raises(KeyError):
            get_app("BERT")


class TestSimJob:
    def test_validation(self):
        with pytest.raises(SimulationError):
            SimJob(machine=gtx(), app=srgan(), nodes=0)
        with pytest.raises(SimulationError):
            SimJob(machine=gtx(), app=srgan(), nodes=1, io_path="nfs")
        with pytest.raises(SimulationError):
            SimJob(machine=gtx(), app=srgan(), nodes=1, iterations=0)

    def test_files_per_node_from_4node_profile(self):
        job = SimJob(machine=gtx(), app=srgan(), nodes=8)
        assert job.files_per_node == srgan().c_batch // PROFILE_NODES

    def test_compression_shrinks_transfer_size(self):
        plain = SimJob(machine=gtx(), app=srgan(), nodes=4)
        packed = SimJob(
            machine=gtx(), app=srgan(), nodes=4,
            compressor=get_profile("lzsse8"),
        )
        assert packed.compressed_file_bytes < plain.compressed_file_bytes
        assert packed.decompress_seconds_per_file() > 0
        assert plain.decompress_seconds_per_file() == 0


class TestFanStoreScaling:
    def test_srgan_gtx_band(self):
        """Figure 9(a): ≥ 95 % at 16 nodes (paper: 97.9 %)."""
        reports = weak_scaling_sweep(
            gtx(), srgan(), [1, 16], compressor=get_profile("lzsse8"),
            iterations=8,
        )
        eff = reports[16].weak_scaling_efficiency(reports[1])
        assert 0.95 <= eff <= 1.0

    def test_resnet_gtx_band(self):
        """Figure 9(b): 85–97 % at 16 nodes (paper: 90.4 %)."""
        reports = weak_scaling_sweep(gtx(), resnet50(), [1, 16], iterations=8)
        eff = reports[16].weak_scaling_efficiency(reports[1])
        assert 0.85 <= eff <= 0.97

    def test_resnet_cpu_512_band(self):
        """Figure 9(c): ≥ 90 % at 512 nodes (paper: 92.2 %)."""
        reports = weak_scaling_sweep(cpu(), resnet50(), [1, 512], iterations=4)
        eff = reports[512].weak_scaling_efficiency(reports[1])
        assert 0.90 <= eff <= 1.0

    def test_efficiency_monotonically_decays(self):
        reports = weak_scaling_sweep(gtx(), resnet50(), [1, 4, 16],
                                     iterations=8)
        base = reports[1]
        effs = [reports[n].weak_scaling_efficiency(base) for n in (1, 4, 16)]
        assert effs[0] >= effs[1] >= effs[2] - 0.02  # allow jitter wiggle

    def test_remote_fraction_grows_with_scale(self):
        reports = weak_scaling_sweep(gtx(), srgan(), [2, 16], iterations=4)
        assert reports[16].remote_fraction > reports[2].remote_fraction

    def test_sweep_rejects_oversubscription(self):
        with pytest.raises(SimulationError):
            weak_scaling_sweep(v100(), srgan(), [8])


class TestLustreCollapse:
    def test_iteration_time_explodes_with_scale(self):
        small = simulate_run(
            SimJob(machine=cpu(), app=resnet50(), nodes=4, io_path="lustre",
                   iterations=3, dataset_files=4_000)
        )
        large = simulate_run(
            SimJob(machine=cpu(), app=resnet50(), nodes=256,
                   io_path="lustre", iterations=3, dataset_files=256_000)
        )
        assert large.mean_iteration_seconds > 2 * small.mean_iteration_seconds

    def test_512_node_startup_exceeds_one_hour(self):
        """§VII-F: the paper's 512-node Lustre run 'ran for one hour
        without starting training'."""
        rep = simulate_run(
            SimJob(machine=cpu(), app=resnet50(), nodes=512,
                   io_path="lustre", iterations=1, dataset_files=512_000)
        )
        assert rep.startup_seconds > 3600

    def test_fanstore_startup_stays_small_at_512(self):
        rep = simulate_run(
            SimJob(machine=cpu(), app=resnet50(), nodes=512,
                   io_path="fanstore", iterations=1, dataset_files=512_000)
        )
        assert rep.startup_seconds < 600

    def test_fanstore_beats_lustre_at_every_scale(self):
        for nodes in (4, 64):
            fan = simulate_run(
                SimJob(machine=cpu(), app=resnet50(), nodes=nodes,
                       io_path="fanstore", iterations=3,
                       dataset_files=1_000 * nodes)
            )
            lus = simulate_run(
                SimJob(machine=cpu(), app=resnet50(), nodes=nodes,
                       io_path="lustre", iterations=3,
                       dataset_files=1_000 * nodes)
            )
            assert fan.mean_iteration_seconds < lus.mean_iteration_seconds


class TestReportArithmetic:
    def test_mean_requires_iterations(self):
        from repro.training.simulate import SimReport

        with pytest.raises(SimulationError):
            SimReport(nodes=1, io_path="fanstore", compressor=None,
                      startup_seconds=0.0).mean_iteration_seconds
