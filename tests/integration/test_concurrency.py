"""Concurrency stress: many I/O threads per rank (the paper's 4×24
Keras-thread scenario, §II-B1) against one daemon, plus mixed
read/write storms."""

from __future__ import annotations

import threading

import pytest

from repro.comm.launcher import run_parallel
from repro.fanstore.store import FanStore
from repro.training.loader import list_training_files

THREADS = 6
ROUNDS = 30


def _hammer(client, files, results, tid):
    try:
        for i in range(ROUNDS):
            path = files[(tid + i) % len(files)]
            data = client.read_file(path)
            expected = client.stat(path).st_size
            if len(data) != expected:
                raise AssertionError(f"{path}: {len(data)} != {expected}")
        results[tid] = True
    except BaseException as exc:  # pragma: no cover - surfaced below
        results[tid] = exc


class TestManyIoThreadsPerNode:
    def test_single_node_thread_storm(self, single_store):
        files = list_training_files(single_store.client)
        results: dict[int, object] = {}
        threads = [
            threading.Thread(
                target=_hammer,
                args=(single_store.client, files, results, t),
            )
            for t in range(THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        failures = [r for r in results.values() if r is not True]
        assert not failures, failures
        # all cache pins were released
        assert single_store.daemon.cache.resident_bytes == 0
        assert single_store.client.open_fd_count == 0

    def test_multinode_thread_storm(self, prepared_dataset):
        """THREADS per rank × 3 ranks, all reading everything —
        concurrent remote fetches against every daemon."""

        def body(comm):
            with FanStore(prepared_dataset, comm=comm) as fs:
                files = list_training_files(fs.client)
                results: dict[int, object] = {}
                threads = [
                    threading.Thread(
                        target=_hammer, args=(fs.client, files, results, t)
                    )
                    for t in range(THREADS)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(60)
                failures = [r for r in results.values() if r is not True]
                assert not failures, failures
                return fs.daemon.stats.remote_fetches

        remote = run_parallel(body, 3, timeout=180)
        assert all(r > 0 for r in remote)

    def test_concurrent_readers_share_cache_entry(self, single_store):
        """N threads holding the same file open simultaneously must
        share one pinned entry, not N copies."""
        files = list_training_files(single_store.client)
        path = files[0]
        client = single_store.client
        barrier = threading.Barrier(THREADS)
        peak_refcounts = []

        def open_hold_close():
            fd = client.open(path)
            barrier.wait(timeout=30)
            peak_refcounts.append(
                single_store.daemon.cache.refcount(path)
            )
            client.close(fd)

        threads = [
            threading.Thread(target=open_hold_close) for _ in range(THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert max(peak_refcounts) == THREADS
        assert single_store.daemon.cache.refcount(path) == 0

    def test_mixed_read_write_storm(self, single_store):
        files = list_training_files(single_store.client)
        client = single_store.client
        errors = []

        def reader(tid):
            try:
                for i in range(ROUNDS):
                    client.read_file(files[(tid + i) % len(files)])
            except BaseException as exc:
                errors.append(exc)

        def writer(tid):
            try:
                for i in range(10):
                    client.write_file(
                        f"storm/w{tid}-{i}.bin", bytes([tid]) * 128
                    )
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=reader, args=(t,)) for t in range(3)
        ] + [threading.Thread(target=writer, args=(t,)) for t in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert not errors
        for tid in range(3):
            for i in range(10):
                assert (
                    client.read_file(f"storm/w{tid}-{i}.bin")
                    == bytes([tid]) * 128
                )
