"""Write-ahead journal and atomic store mutation.

FanStore (the paper) treats node-local writes as fire-and-forget: the
daemon lives exactly as long as the training job, so a rank dying
mid-mutation is answered by relaunching the whole job from a checkpoint
(§V-E). Our ROADMAP north-star — a store serving many jobs — cannot
afford that: a torn blob or a metadata/bytes disagreement must be
repairable from local evidence alone. This module supplies that
evidence.

Protocol (commit-after-durable-apply)::

    intent record appended + group-commit fsync     crash: rolled back
    atomic apply (tmp + fsync + rename + dir fsync) crash: rolled forward
    commit record appended, synced lazily           crash: rolled forward
    caller acks the client                          -- durable forever

The **rename + parent-dir fsync at the end of the atomic apply is the
durable commit point**: once the final name holds the new bytes, the
write is complete and recovery must keep it. The commit record is
therefore bookkeeping, not a barrier — it is appended and flushed but
carries no fsync of its own, reaching stable storage with the next
group fsync (a later intent, a rotation, a checkpoint, or close).
Recovery adopts an applied-but-uncommitted intent whenever the
on-disk bytes digest-match it; because applies replace whole files
atomically, disk-matching an intent proves that intent's apply was
the last one to complete for that path, so no sequence comparison is
needed. An acknowledged write never depends on replay: the
roll-forward is a verification pass (digest-check the bytes, re-adopt
them into the backend index), and the rollback pass deletes only what
an intent whose apply never completed left behind — bytes the client
was never told about. Whole-blob payloads therefore do not ride in
the journal; small payloads (``embed_payload_max``) are embedded
anyway so torn applies of in-place patches can be re-applied rather
than merely detected.

Segments rotate at a size/record bound and are deleted once a
checkpoint (a digest-verified snapshot of the committed live state)
supersedes them. A journal that cannot compact below its segment
budget — uncommitted intents pin their segments — browns out to
read-only instead of growing without bound.

Every record line is self-validating (``crc32 <space> json``), so a
torn tail is recognised and discarded rather than mistaken for
corruption of the store itself.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
import uuid
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.errors import FanStoreError, StorageFullError
from repro.fanstore.crash import DiskFaultInjector, crash_point
from repro.fanstore.layout import FileStat
from repro.fanstore.metadata import FileRecord
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "Journal",
    "JournalConfig",
    "JournalStats",
    "RecoveredLog",
    "atomic_open",
    "atomic_replace",
    "fsync_dir",
    "live_entry",
    "record_from_wire",
    "record_to_wire",
    "scan_journal",
]

_SEGMENT_RE = re.compile(r"^segment-(\d{6})\.waj$")
CHECKPOINT_NAME = "checkpoint.json"


# ---------------------------------------------------------------------------
# Atomic-apply helpers (the single blessed way to mutate store files)
# ---------------------------------------------------------------------------


def fsync_dir(directory: Path | str) -> None:
    """Persist directory entries (renames, unlinks) themselves, where
    the platform allows opening a directory read-only."""
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def _tmp_for(path: Path) -> Path:
    """Unique sibling tmp name: pid+uuid so two writers racing on the
    same final name never clobber each other's half-written file."""
    return path.with_name(f"{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp")


def atomic_replace(
    path: Path | str, data: bytes | str, *, rank: int | None = None
) -> None:
    """Atomically install ``data`` behind ``path``: tmp + fsync +
    rename + parent-dir fsync. A reader never sees a torn file; a crash
    at any instruction leaves either the old bytes or the new bytes
    behind the final name (plus, at worst, an orphaned ``*.tmp`` that
    recovery GCs).

    Cleanup on failure deliberately catches :class:`Exception`, not
    ``BaseException``: a :class:`~repro.fanstore.crash.SimulatedCrashError`
    must behave like ``kill -9`` and leave the tmp file on disk for the
    recovery drill to find.
    """
    path = Path(path)
    payload = data.encode("utf-8") if isinstance(data, str) else data
    tmp = _tmp_for(path)
    try:
        with open(tmp, "wb") as fh:  # lint: allow[durable-write] this IS the atomic-apply helper
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        crash_point("apply.tmp_written", rank)
        os.replace(tmp, path)  # lint: allow[durable-write] this IS the atomic-apply helper
    except Exception:
        tmp.unlink(missing_ok=True)
        raise
    crash_point("apply.renamed", rank)
    fsync_dir(path.parent)
    crash_point("apply.done", rank)


@contextmanager
def atomic_open(path: Path | str) -> Iterator[Any]:
    """Streaming variant of :func:`atomic_replace` for writers that
    build a file incrementally (partition packing): yields a binary
    handle onto a tmp sibling; on clean exit the bytes are fsynced and
    renamed into place, on error the tmp is removed and nothing of the
    final name changes."""
    path = Path(path)
    tmp = _tmp_for(path)
    fh = open(tmp, "wb")  # lint: allow[durable-write] this IS the atomic-apply helper
    try:
        yield fh
        fh.flush()
        os.fsync(fh.fileno())
    except Exception:
        fh.close()
        tmp.unlink(missing_ok=True)
        raise
    fh.close()
    os.replace(tmp, path)  # lint: allow[durable-write] this IS the atomic-apply helper
    fsync_dir(path.parent)


# ---------------------------------------------------------------------------
# Wire forms
# ---------------------------------------------------------------------------


def record_to_wire(record: FileRecord) -> dict[str, Any]:
    """JSON-safe form of a :class:`FileRecord` (the metadata a client
    write must get back after a restart — outputs live in no partition,
    so the journal is their only metadata source)."""
    return {
        "path": record.path,
        "stat": record.stat.pack().hex(),
        "compressor_id": record.compressor_id,
        "compressed_size": record.compressed_size,
        "home_rank": record.home_rank,
        "partition_id": record.partition_id,
        "data_offset": record.data_offset,
    }


def record_from_wire(wire: dict[str, Any]) -> FileRecord:
    return FileRecord(
        path=wire["path"],
        stat=FileStat.unpack(bytes.fromhex(wire["stat"])),
        compressor_id=wire["compressor_id"],
        compressed_size=wire["compressed_size"],
        home_rank=wire["home_rank"],
        partition_id=wire["partition_id"],
        data_offset=wire["data_offset"],
    )


def _encode_line(body: dict[str, Any]) -> bytes:
    """One self-validating journal line: crc32-of-json, space, json."""
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    raw = blob.encode("utf-8")
    return b"%08x %s\n" % (zlib.crc32(raw), raw)


def _decode_line(line: bytes) -> dict[str, Any] | None:
    """Parse one line; None for a torn/corrupt line (bad crc, bad
    json, truncated tail)."""
    if not line.endswith(b"\n"):
        return None
    try:
        crc_hex, raw = line[:-1].split(b" ", 1)
        if int(crc_hex, 16) != zlib.crc32(raw):
            return None
        body = json.loads(raw)
    except (ValueError, json.JSONDecodeError):
        return None
    return body if isinstance(body, dict) else None


def _checkpoint_digest(seq: int, live: dict[str, Any]) -> str:
    canon = json.dumps(
        {"seq": seq, "live": live}, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Configuration and stats
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JournalConfig:
    """Tunables of one rank's write-ahead journal."""

    #: rotate the active segment past either bound
    segment_max_bytes: int = 1 << 20
    segment_max_records: int = 4096
    #: forced-compaction threshold; if compaction cannot get the
    #: segment count back under this (pinned by uncommitted intents),
    #: the journal browns out to read-only
    max_segments: int = 4
    #: payloads at or under this size ride inside the intent record so
    #: recovery can re-apply them outright (larger payloads rely on the
    #: commit-after-durable-apply protocol instead)
    embed_payload_max: int = 4096
    #: refuse new intents when the filesystem under the journal reports
    #: less free space than this — fail early with StorageFullError
    #: instead of tearing the journal mid-append; 0 disables the probe
    low_watermark_bytes: int = 4 << 20


@dataclass
class JournalStats:
    """Durability counters, bound into the registry as ``durability.*``
    (same zero-overhead bound-field pattern as ``DaemonStats``)."""

    journal_appends: int = 0  # records written (intents + commits)
    journal_commits: int = 0  # commit records written
    journal_aborts: int = 0  # intents dropped before commit (apply failed)
    journal_fsyncs: int = 0  # fsync(2) barriers actually issued
    journal_coalesced_syncs: int = 0  # syncs satisfied by another thread's barrier
    journal_bytes: int = 0  # bytes appended across all segments
    journal_rotations: int = 0  # segment rollovers
    journal_compactions: int = 0  # checkpoint-supersedes-segments events
    journal_segments: int = 1  # gauge: live segment files
    read_only: int = 0  # gauge: 1 while browned out
    storage_full_errors: int = 0  # writes refused (watermark/brownout/ENOSPC)
    recovery_replayed: int = 0  # committed intents verified present+clean
    recovery_reapplied: int = 0  # committed intents re-applied from payload
    recovery_rolled_back: int = 0  # uncommitted intents undone
    recovery_quarantined: int = 0  # committed intents whose bytes are gone
    recovery_tmp_gc: int = 0  # orphaned *.tmp files removed
    recovery_torn_records: int = 0  # journal lines discarded as torn
    recovery_seconds: float = 0.0  # gauge: wall time of the last recovery

    _GAUGES = ("journal_segments", "read_only", "recovery_seconds")

    def bind(self, metrics: MetricsRegistry) -> None:
        """Register every field as ``durability.journal.<x>`` /
        ``durability.recovery.<x>`` / ``durability.<x>``, backed by
        this object's attributes."""
        for name in self.__dataclass_fields__:
            if name.startswith(("journal_", "recovery_")):
                dotted = name.replace("_", ".", 1)
            else:
                dotted = name
            if name in self._GAUGES:
                metrics.bind_gauge(f"durability.{dotted}", self, name)
            else:
                metrics.bind_counter(f"durability.{dotted}", self, name)


# ---------------------------------------------------------------------------
# Scan (the read side of recovery)
# ---------------------------------------------------------------------------


@dataclass
class RecoveredLog:
    """What a journal directory says happened before the crash."""

    checkpoint_live: dict[str, dict[str, Any]] = field(default_factory=dict)
    checkpoint_seq: int = 0
    committed: list[dict[str, Any]] = field(default_factory=list)
    uncommitted: list[dict[str, Any]] = field(default_factory=list)
    torn_records: int = 0
    segments: int = 0
    max_seq: int = 0

    @property
    def empty(self) -> bool:
        return not (
            self.checkpoint_live or self.committed or self.uncommitted
        )


def _segment_files(directory: Path) -> list[tuple[int, Path]]:
    found = []
    if not directory.is_dir():
        return found
    for entry in directory.iterdir():
        m = _SEGMENT_RE.match(entry.name)
        if m:
            found.append((int(m.group(1)), entry))
    return sorted(found)


def scan_journal(directory: Path | str) -> RecoveredLog:
    """Parse a journal directory into its pre-crash truth.

    Torn lines (a crash mid-append) fail their per-line crc and are
    counted, and everything after a torn line *within that segment* is
    distrusted — append-only segments cannot have valid bytes past a
    torn write. Records at or below the checkpoint's sequence number
    are superseded (their effects are part of the checkpointed state)
    and skipped, which is what makes a crash between "checkpoint
    written" and "old segments deleted" harmless.
    """
    directory = Path(directory)
    log = RecoveredLog()
    ckpt_path = directory / CHECKPOINT_NAME
    if ckpt_path.exists():
        try:
            blob = json.loads(ckpt_path.read_text())
            if blob["sha256"] == _checkpoint_digest(blob["seq"], blob["live"]):
                log.checkpoint_seq = int(blob["seq"])
                log.checkpoint_live = dict(blob["live"])
            else:
                log.torn_records += 1
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError,
                TypeError, ValueError):
            log.torn_records += 1

    intents: dict[int, dict[str, Any]] = {}
    committed_seqs: set[int] = set()
    for index, path in _segment_files(directory):
        log.segments += 1
        try:
            raw = path.read_bytes()
        except OSError:
            continue
        for line in raw.splitlines(keepends=True):
            body = _decode_line(line)
            if body is None:
                if line.strip():
                    log.torn_records += 1
                break  # distrust the rest of this segment
            seq = int(body.get("seq", 0))
            log.max_seq = max(log.max_seq, seq)
            if seq <= log.checkpoint_seq:
                continue  # superseded by the checkpoint
            if body.get("t") == "intent":
                intents[seq] = body
            elif body.get("t") == "commit":
                committed_seqs.add(int(body.get("ref", -1)))

    for seq in sorted(intents):
        if seq in committed_seqs:
            log.committed.append(intents[seq])
        else:
            log.uncommitted.append(intents[seq])
    return log


# ---------------------------------------------------------------------------
# The journal proper
# ---------------------------------------------------------------------------


class Journal:
    """One rank's append-only intent/commit log with group-commit
    fsync, segment rotation, checkpoint compaction, and read-only
    brownout.

    Thread-safe: appends serialise on one mutex; the fsync barrier is a
    second mutex so concurrent writers coalesce into one fsync(2) (the
    group commit) instead of queueing N of them.
    """

    def __init__(
        self,
        directory: Path | str,
        *,
        rank: int = 0,
        config: JournalConfig | None = None,
        stats: JournalStats | None = None,
        injector: DiskFaultInjector | None = None,
        live: dict[str, dict[str, Any]] | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.rank = rank
        self.config = config or JournalConfig()
        self.stats = stats or JournalStats()
        self.injector = injector
        # lock order: _sync_lock before _lock, never the reverse
        self._lock = threading.Lock()
        self._sync_lock = threading.Lock()
        self._pending: dict[int, dict[str, Any]] = {}  # seq -> intent
        self._pending_segment: dict[int, int] = {}  # seq -> segment index
        self._retired: list[Any] = []  # rotated-away handles, closed at next sync
        self._needs_compaction = False
        self._closed = False

        # Adopt the pre-existing state: either the caller's recovered
        # live map (the daemon just verified it against the disk) or a
        # best-effort self-scan (standalone / test use).
        prior = scan_journal(self.directory)
        if live is None:
            live = dict(prior.checkpoint_live)
            for entry in prior.committed:
                live[entry["path"]] = live_entry(entry)
        self._live: dict[str, dict[str, Any]] = dict(live)
        self._seq = max(prior.max_seq, prior.checkpoint_seq)

        # Open-time compaction: checkpoint the adopted state, then
        # drop every superseded segment — the journal starts each
        # incarnation one checkpoint + one empty segment long.
        self._segment_index = max(
            (i for i, _ in _segment_files(self.directory)), default=0
        )
        self._write_checkpoint()
        for _, path in _segment_files(self.directory):
            path.unlink(missing_ok=True)
        fsync_dir(self.directory)
        self._segment_index += 1
        self._fh = self._open_segment(self._segment_index)
        self._segment_bytes = 0
        self._segment_records = 0
        self._synced_seq = self._seq
        self._read_only = False
        self.stats.journal_segments = 1

    # -- plumbing ----------------------------------------------------------

    def _segment_path(self, index: int) -> Path:
        return self.directory / f"segment-{index:06d}.waj"

    def _open_segment(self, index: int):
        return open(self._segment_path(index), "ab")  # lint: allow[durable-write,blocking-under-lock] append-only journal segment (torn tails caught by per-line crc); the open under _lock is one syscall at rotation, off the per-record path

    def _write_checkpoint(self) -> None:
        # The checkpoint supersedes every record at or below its seq,
        # so it must stop *short of the oldest pending intent*: that
        # intent's effect is not in the live map yet, and a scan that
        # skipped its record would also orphan its eventual commit.
        seq = min(self._pending) - 1 if self._pending else self._seq
        blob = {
            "seq": seq,
            "live": self._live,
            "sha256": _checkpoint_digest(seq, self._live),
        }
        atomic_replace(
            self.directory / CHECKPOINT_NAME,
            json.dumps(blob),
            rank=self.rank,
        )

    @property
    def read_only(self) -> bool:
        return self._read_only

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def pending_intents(self) -> int:
        with self._lock:
            return len(self._pending)

    def live_state(self) -> dict[str, dict[str, Any]]:
        """Snapshot of the committed live map (path → entry)."""
        with self._lock:
            return {k: dict(v) for k, v in self._live.items()}

    # -- the write-side protocol ------------------------------------------

    def begin(
        self,
        op: str,
        path: str,
        data: bytes,
        *,
        epoch: int = 0,
        offset: int | None = None,
        record: FileRecord | None = None,
    ) -> int:
        """Append + fsync an intent record; returns its sequence number
        (the handle :meth:`commit` takes). Raises
        :class:`~repro.errors.StorageFullError` — before touching the
        journal — when browned out or under the free-space watermark.
        """
        if self._closed:
            raise FanStoreError("journal is closed")
        if self._read_only:
            self.stats.storage_full_errors += 1
            raise StorageFullError(
                path, "journal browned out to read-only (cannot compact)"
            )
        self._check_watermark(path)
        if (
            record is not None
            and record.stat.has_digest
            and record.compressed_size == len(data)
        ):
            crc = record.stat.crc32  # the writer already hashed these bytes
        else:
            crc = zlib.crc32(data) & 0xFFFFFFFF
        body: dict[str, Any] = {
            "t": "intent",
            "op": op,
            "path": path,
            "crc": crc,
            "size": len(data),
            "epoch": epoch,
        }
        if offset is not None:
            body["offset"] = offset
        if record is not None:
            body["record"] = record_to_wire(record)
        if len(data) <= self.config.embed_payload_max:
            body["payload"] = data.hex()
        seq = self._append(body, pending=True)
        self._sync(seq)
        crash_point("journal.intent", self.rank)
        return seq

    def commit(self, seq: int) -> None:
        """Append the commit record for intent ``seq``. Only after
        this returns may the caller acknowledge the write.

        No fsync here: the atomic apply preceding this call ended in
        rename + parent-dir fsync, and *that* is the durable commit
        point — recovery adopts an applied-but-uncommitted intent
        whose on-disk bytes digest-match it. The record is flushed to
        the OS (so it survives a process crash immediately) and rides
        to stable storage with the next group fsync: a later intent,
        a rotation, a checkpoint, or close. This halves the mandatory
        fsyncs on the acked-write path.

        The live-map update rides inside the append's critical section
        (``commit_ref``): a concurrent :meth:`compact` snapshots
        ``_live`` at a checkpoint ``seq`` past this commit record, so
        the entry must already be live by the time the record exists —
        otherwise the checkpoint supersedes the record while omitting
        its effect, and the path silently drops from recovery. The
        apply preceding this call is already durable, so checkpointing
        the entry before its commit record reaches disk only rolls an
        unacked-but-complete write forward — never a torn one.
        """
        with self._lock:
            if seq not in self._pending:
                raise FanStoreError(f"commit of unknown intent seq {seq}")
        self._append({"t": "commit", "ref": seq}, commit_ref=seq, flush=True)
        self.stats.journal_commits += 1
        crash_point("journal.commit", self.rank)
        if self._read_only:
            # a drained intent may have unpinned enough segments
            self.compact()

    def abort(self, seq: int) -> None:
        """Forget an intent whose apply failed cleanly (the caller is
        about to propagate an error instead of acking): recovery would
        roll it back anyway, this just unpins its segment early."""
        with self._lock:
            if self._pending.pop(seq, None) is not None:
                self.stats.journal_aborts += 1
            self._pending_segment.pop(seq, None)

    def _append(
        self,
        body: dict[str, Any],
        *,
        pending: bool = False,
        commit_ref: int | None = None,
        flush: bool = False,
    ) -> int:
        line_bytes = None
        with self._lock:
            if self._closed:
                raise FanStoreError("journal is closed")
            self._seq += 1
            seq = body["seq"] = self._seq
            line = _encode_line(body)
            # rotation check first so a record never straddles segments
            if self._segment_records >= self.config.segment_max_records or (
                self._segment_bytes + len(line)
                > self.config.segment_max_bytes
                and self._segment_records > 0
            ):
                self._rotate_locked()
            self._fh.write(line)
            if flush:
                # out of the Python buffer into the page cache: one
                # write(2), no barrier — survives a process crash now,
                # a power loss at the next group fsync
                self._fh.flush()
            self._segment_bytes += len(line)
            self._segment_records += 1
            if pending:
                self._pending[seq] = body
                self._pending_segment[seq] = self._segment_index
            if commit_ref is not None:
                entry = self._pending.pop(commit_ref, None)
                self._pending_segment.pop(commit_ref, None)
                if entry is not None:
                    self._live[entry["path"]] = live_entry(entry)
            line_bytes = len(line)
        self.stats.journal_appends += 1
        self.stats.journal_bytes += line_bytes
        return seq

    def _rotate_locked(self) -> None:
        """Roll to a fresh segment (caller holds ``_lock``). The old
        segment is fsynced here and its handle parked on ``_retired``
        (closed at the next sync barrier — a concurrent :meth:`_sync`
        may still be fsyncing it, and fsync of a closed fd raises), so
        the barrier only ever has to cover the active handle."""
        self._fh.flush()
        os.fsync(self._fh.fileno())  # lint: allow[blocking-under-lock] segment handoff: the closing segment must be durable before it stops being the sync target
        self._retired.append(self._fh)
        self._segment_index += 1
        self._fh = self._open_segment(self._segment_index)
        self._segment_bytes = 0
        self._segment_records = 0
        self.stats.journal_rotations += 1
        self.stats.journal_segments = len(_segment_files(self.directory))
        crash_point("journal.rotate", self.rank)
        if self.stats.journal_segments > self.config.max_segments:
            self._needs_compaction = True

    def _sync(self, seq: int) -> None:
        """Group-commit barrier: make record ``seq`` durable. Threads
        that arrive while another thread's fsync is in flight wait on
        the mutex and then find their record already covered. Rotated
        segments were fsynced during rotation, so fsyncing the active
        handle durably covers every record up to the captured ``_seq``.
        """
        if self._synced_seq >= seq:  # unlocked fast path (int read)
            self.stats.journal_coalesced_syncs += 1
            return
        with self._sync_lock:
            if self._synced_seq >= seq:
                self.stats.journal_coalesced_syncs += 1
                return
            with self._lock:
                retired, self._retired = self._retired, []
                fh = self._fh
                covered = self._seq
            for old in retired:
                old.close()
            fh.flush()
            os.fsync(fh.fileno())  # lint: allow[blocking-under-lock] group commit: the sync mutex is what coalesces concurrent fsyncs into one barrier
            self._synced_seq = covered
            self.stats.journal_fsyncs += 1
        if self._needs_compaction:
            self._needs_compaction = False
            self.compact()

    # -- compaction and brownout ------------------------------------------

    def compact(self) -> bool:
        """Checkpoint the live state and delete superseded segments.
        Returns True when the segment count is back under budget;
        otherwise the journal browns out to read-only (uncommitted
        intents pin their segments, and an unbounded journal is worse
        than refusing writes)."""
        with self._lock:
            if self._closed:
                return True
            self._write_checkpoint()
            crash_point("journal.checkpoint", self.rank)
            pinned = set(self._pending_segment.values())
            for index, path in _segment_files(self.directory):
                if index == self._segment_index or index in pinned:
                    continue
                path.unlink(missing_ok=True)
            fsync_dir(self.directory)
            self.stats.journal_compactions += 1
            remaining = len(_segment_files(self.directory))
            self.stats.journal_segments = remaining
            over = remaining > self.config.max_segments
            if over and not self._read_only:
                self._read_only = True
                self.stats.read_only = 1
            elif not over and self._read_only:
                self._read_only = False
                self.stats.read_only = 0
            return not over

    def _check_watermark(self, path: str) -> None:
        low = self.config.low_watermark_bytes
        if low <= 0:
            return
        try:
            st = os.statvfs(self.directory)
        except OSError:
            return
        free = st.f_bavail * st.f_frsize
        if self.injector is not None:
            free = self.injector.free_bytes(free)
        if free < low:
            self.stats.storage_full_errors += 1
            raise StorageFullError(
                path,
                f"free space {free} B under the journal's "
                f"{low} B low watermark",
            )

    def close(self) -> None:
        with self._sync_lock:
            with self._lock:
                if self._closed:
                    return
                self._closed = True
                retired, self._retired = self._retired, []
                for old in retired:
                    old.close()
                try:
                    self._fh.flush()
                    os.fsync(self._fh.fileno())  # lint: allow[blocking-under-lock] final barrier at close; no writers remain
                except (OSError, ValueError):
                    pass
                self._fh.close()


def live_entry(intent: dict[str, Any]) -> dict[str, Any]:
    """The slice of an intent that the live map / checkpoint keeps."""
    entry = {
        "op": intent["op"],
        "crc": intent["crc"],
        "size": intent["size"],
        "epoch": intent.get("epoch", 0),
    }
    if "record" in intent:
        entry["record"] = intent["record"]
    if "payload" in intent:
        entry["payload"] = intent["payload"]
    return entry
