"""*metric-catalogue*: docs/observability.md is the metric-name contract.

The runtime half of this lint already exists
(``tests/obs/test_catalogue.py`` drives a full workload and checks every
registered name against the catalogue tables). This pass is the static
half: it finds every registration site in source —
``metrics.counter("loader.bytes_read")``,
``metrics.histogram(f"codec.{name}.decode_seconds")``,
``bind_gauge``/``bind_counter`` — and checks the name against the same
backticked first-column entries of the docs tables. F-string
interpolations become wildcards, as do ``<placeholder>`` segments in the
docs, and matching is segment-wise on ``.``-separated parts so a
wildcard on either side matches any one concrete segment.

The runtime test still gates exact coverage; this pass catches the
common drift (a new literal metric name with no docs row) at lint time,
without running a workload.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.core import Finding, LintPass, Project, SourceFile

_REGISTER_METHODS = {
    "counter",
    "gauge",
    "histogram",
    "bind_counter",
    "bind_gauge",
}
_ROW_RE = re.compile(r"\|\s*`([^`]+)`\s*\|")
_PLACEHOLDER_RE = re.compile(r"<[a-z_]+>")
_WILDCARD = "\x00"  # internal marker for "any one segment part"

_DOCS_RELPATH = "docs/observability.md"


def _docs_patterns(project: Project) -> list[tuple[str, ...]] | None:
    docs = project.root / _DOCS_RELPATH
    if not docs.is_file():
        return None
    patterns = []
    for line in docs.read_text(encoding="utf-8").splitlines():
        m = _ROW_RE.match(line)
        if m:
            patterns.append(_segments(_PLACEHOLDER_RE.sub(_WILDCARD, m.group(1))))
    return patterns


def _segments(name: str) -> tuple[str, ...]:
    return tuple(name.split("."))


def _registered_name(call: ast.Call) -> str | None:
    """The metric-name pattern a registration call uses, with f-string
    interpolations collapsed to wildcards; None when the first argument
    is not a literal (a pass-through variable — the runtime lint owns
    those)."""
    fn = call.func
    if not (isinstance(fn, ast.Attribute) and fn.attr in _REGISTER_METHODS):
        return None
    if not call.args:
        return None
    arg = call.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    if isinstance(arg, ast.JoinedStr):
        parts = []
        for piece in arg.values:
            if isinstance(piece, ast.Constant):
                parts.append(str(piece.value))
            else:
                parts.append(_WILDCARD)
        return "".join(parts)
    return None


def _seg_match(a: str, b: str) -> bool:
    if _WILDCARD in a or _WILDCARD in b:
        # wildcard swallows the whole segment on either side
        return True
    return a == b


def _matches(name: tuple[str, ...], pattern: tuple[str, ...]) -> bool:
    if len(name) != len(pattern):
        return False
    return all(_seg_match(n, p) for n, p in zip(name, pattern))


class MetricCataloguePass(LintPass):
    rule = "metric-catalogue"
    title = "every registered metric name appears in docs/observability.md"

    def run(self, project: Project) -> Iterable[Finding]:
        patterns = _docs_patterns(project)
        if patterns is None:
            return []  # no catalogue in this tree (fixture runs)
        findings: list[Finding] = []
        for src in project:
            findings.extend(self._check(src, patterns))
        return findings

    def _check(
        self, src: SourceFile, patterns: list[tuple[str, ...]]
    ) -> list[Finding]:
        findings = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _registered_name(node)
            if name is None:
                continue
            if not any(_matches(_segments(name), p) for p in patterns):
                shown = name.replace(_WILDCARD, "<...>")
                findings.append(
                    self.finding(
                        src,
                        node,
                        f"metric '{shown}' is registered but matches no row "
                        f"in {_DOCS_RELPATH}; add it to the catalogue",
                    )
                )
        return findings
