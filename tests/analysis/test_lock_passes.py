"""lock-order and blocking-under-lock on fixture trees: positive,
waived, and clean cases."""

from __future__ import annotations

import textwrap

from tests.analysis.conftest import rules_of

ABBA = textwrap.dedent(
    '''
    import threading

    class Metadata:
        def __init__(self, daemon: "Daemon"):
            self._lock = threading.Lock()
            self.daemon = daemon

        def merge(self):
            with self._lock:
                self.daemon.publish()

    class Daemon:
        def __init__(self):
            self._lock = threading.Lock()
            self.metadata = Metadata(self)

        def publish(self):
            with self._lock:
                pass

        def lookup(self):
            with self._lock:
                self.metadata.merge()
    '''
)


class TestLockOrder:
    def test_cross_class_cycle_detected(self, lint_tree):
        report = lint_tree({"fanstore/daemon.py": ABBA})
        findings = rules_of(report, "lock-order")
        assert findings, report.summary()
        assert "cycle" in findings[0].message
        assert "Daemon._lock" in findings[0].message
        assert "Metadata._lock" in findings[0].message

    def test_file_scope_waiver_with_reason(self, lint_tree):
        waived = (
            "# lint: file-allow[lock-order] fixture: inversion is the point\n"
            + ABBA
        )
        report = lint_tree({"fanstore/daemon.py": waived})
        assert not [f for f in rules_of(report, "lock-order") if not f.waived]
        assert any(f.waived for f in rules_of(report, "lock-order"))

    def test_plain_lock_self_reacquire_flagged(self, lint_tree):
        src = textwrap.dedent(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
            """
        )
        report = lint_tree({"fanstore/cache.py": src})
        findings = rules_of(report, "lock-order")
        assert findings and "self-deadlock" in findings[0].message

    def test_rlock_reentrancy_is_clean(self, lint_tree):
        src = textwrap.dedent(
            """
            import threading

            class Table:
                def __init__(self):
                    self._lock = threading.RLock()

                def merge(self):
                    with self._lock:
                        self.insert()

                def insert(self):
                    with self._lock:
                        pass
            """
        )
        report = lint_tree({"fanstore/metadata.py": src})
        assert not rules_of(report, "lock-order")

    def test_consistent_order_is_clean(self, lint_tree):
        src = textwrap.dedent(
            '''
            import threading

            class B:
                def __init__(self):
                    self._lock = threading.Lock()

                def leaf(self):
                    with self._lock:
                        pass

            class A:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.b = B()

                def one(self):
                    with self._lock:
                        self.b.leaf()

                def two(self):
                    with self._lock:
                        self.b.leaf()
            '''
        )
        report = lint_tree({"fanstore/mod.py": src})
        assert not rules_of(report, "lock-order")


class TestBlockingUnderLock:
    def test_sleep_io_comm_codec_flagged(self, lint_tree):
        src = textwrap.dedent(
            """
            import threading
            import time

            class Daemon:
                def __init__(self, comm):
                    self._lock = threading.Lock()
                    self.comm = comm
                    self.codec = None

                def bad_sleep(self):
                    with self._lock:
                        time.sleep(0.1)

                def bad_open(self):
                    with self._lock:
                        open("/tmp/x", "rb")

                def bad_send(self):
                    with self._lock:
                        self.comm.send(("x", 1), 0, 7)

                def bad_codec(self, blob):
                    with self._lock:
                        return self.codec.decompress(blob)
            """
        )
        report = lint_tree({"fanstore/daemon.py": src})
        messages = [f.message for f in rules_of(report, "blocking-under-lock")]
        assert len(messages) == 4
        joined = "\n".join(messages)
        assert "time.sleep" in joined
        assert "file I/O (open)" in joined
        assert "communicator round-trip (.send)" in joined
        assert "(de)compression (.decompress)" in joined
        assert "Daemon._lock" in joined

    def test_interprocedural_reach(self, lint_tree):
        src = textwrap.dedent(
            """
            import threading

            class Backend:
                def __init__(self):
                    self._lock = threading.Lock()

                def get(self):
                    with self._lock:
                        return self._load()

                def _load(self):
                    return open("/tmp/part", "rb")
            """
        )
        report = lint_tree({"fanstore/backend.py": src})
        findings = rules_of(report, "blocking-under-lock")
        assert findings and "Backend.get" in findings[0].message

    def test_condition_protocol_and_try_recv_exempt(self, lint_tree):
        src = textwrap.dedent(
            """
            import threading

            class Drain:
                def __init__(self, comm):
                    self._cv = threading.Condition()
                    self.comm = comm

                def waits(self):
                    with self._cv:
                        self._cv.wait()
                        self._cv.notify_all()

                def polls(self):
                    with self._cv:
                        return self.comm.try_recv(-1, 7)
            """
        )
        report = lint_tree({"fanstore/membership.py": src})
        assert not rules_of(report, "blocking-under-lock")

    def test_outside_lock_and_outside_fanstore_clean(self, lint_tree):
        src = textwrap.dedent(
            """
            import threading
            import time

            class C:
                def __init__(self):
                    self._lock = threading.Lock()

                def fine(self):
                    time.sleep(0.1)
                    with self._lock:
                        pass
            """
        )
        report = lint_tree({"fanstore/mod.py": src})
        assert not rules_of(report, "blocking-under-lock")
        # same offending code outside fanstore/ is out of scope
        bad = src.replace("time.sleep(0.1)\n                    with", "with")
        report = lint_tree({"training/mod.py": src})
        assert not rules_of(report, "blocking-under-lock")

    def test_waived_with_reason(self, lint_tree):
        src = textwrap.dedent(
            """
            import threading

            class Plan:
                def __init__(self):
                    self._lock = threading.Lock()

                def mutate(self, path):
                    with self._lock:
                        # lint: allow[blocking-under-lock] injector tool; atomic with RNG
                        path.write_bytes(b"x")
            """
        )
        report = lint_tree({"fanstore/corruption.py": src})
        findings = rules_of(report, "blocking-under-lock")
        assert findings and all(f.waived for f in findings)
        assert findings[0].reason == "injector tool; atomic with RNG"
