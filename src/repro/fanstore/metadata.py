"""The in-RAM metadata service (§IV-C).

Every FanStore process keeps the *entire* dataset's metadata in a local
hash table, so ``stat()``/``readdir()`` — the calls that melt shared
file-system metadata servers at scale (§II-B1) — never leave the node.
The table is built from local partition scans and completed by one
``allgather`` exchange (§IV-C1), after which it also knows, for every
file, which rank's daemon holds the compressed bytes (``home_rank``).

A derived directory index supports ``opendir``/``readdir`` without
touching the per-file records.
"""

from __future__ import annotations

import posixpath
import threading
from dataclasses import dataclass, replace
from typing import Iterable, Iterator

from repro.errors import FanStoreError, FileNotFoundInStoreError
from repro.fanstore.layout import (
    DEFAULT_DIR_MODE,
    FileStat,
    PartitionEntry,
)
from repro.fanstore.membership import ring_successor


def normalize(path: str) -> str:
    """Canonical store-relative path: forward slashes, no leading '/',
    no '.'/'..' segments."""
    norm = posixpath.normpath(path.replace("\\", "/")).lstrip("/")
    if norm in (".", ""):
        return ""
    if norm.startswith(".."):
        raise FanStoreError(f"path escapes the store root: {path!r}")
    return norm


@dataclass(frozen=True)
class FileRecord:
    """One file's full metadata as held in RAM."""

    path: str
    stat: FileStat
    compressor_id: int
    compressed_size: int
    home_rank: int
    partition_id: int
    data_offset: int = -1  # payload offset within its partition file

    @property
    def is_broadcast(self) -> bool:
        return self.stat.is_broadcast

    @property
    def has_digest(self) -> bool:
        """Whether a payload digest was recorded at prepare/write time
        (it travels inside ``stat``, so the metadata allgather
        propagates it to every rank for free)."""
        return self.stat.has_digest

    @property
    def crc32(self) -> int:
        """Digest of the *compressed* payload (valid iff has_digest)."""
        return self.stat.crc32


@dataclass(frozen=True)
class RereplicationStep:
    """One record's repair plan after a rank death: which surviving
    ranks can source the compressed bytes, which rank stages the
    restored copy, and who is the home afterwards. Pure data — the
    daemon executes the copy, :meth:`MetadataTable.apply_rereplication`
    commits the ownership change."""

    path: str
    partition_id: int
    old_home: int
    new_home: int
    stage_rank: int  # rank that receives the restored copy
    source_ranks: tuple[int, ...]  # surviving copy holders, ascending
    new_replicas: tuple[int, ...]  # replica set after repair (home excl.)
    compressed_size: int


class MetadataTable:
    """Thread-safe path → record map plus a directory index."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._files: dict[str, FileRecord] = {}
        self._dirs: dict[str, set[str]] = {"": set()}
        # path → ranks holding ring-replicated copies besides the home
        # rank (announced during the load-time allgather); the failover
        # tier between "ask the home rank" and "re-read the shared FS"
        self._replicas: dict[str, set[int]] = {}

    # -- construction -----------------------------------------------------

    def insert(self, record: FileRecord) -> None:
        """Add or replace one file record and index its ancestors."""
        path = normalize(record.path)
        if not path:
            raise FanStoreError("cannot insert the root as a file")
        with self._lock:
            self._files[path] = record
            child = path
            parent = posixpath.dirname(child)
            while True:
                self._dirs.setdefault(parent, set()).add(
                    posixpath.basename(child)
                )
                if parent == "":
                    break
                child = parent
                parent = posixpath.dirname(child)

    def insert_entries(
        self, entries: Iterable[PartitionEntry], home_rank: int
    ) -> None:
        """Index a scanned partition, stamping locality (§IV-C1)."""
        for e in entries:
            self.insert(
                FileRecord(
                    path=e.path,
                    stat=e.stat.with_locality(home_rank),
                    compressor_id=e.compressor_id,
                    compressed_size=e.compressed_size,
                    home_rank=home_rank,
                    partition_id=e.stat.partition_id,
                    data_offset=e.data_offset,
                )
            )

    def merge(self, other_records: Iterable[FileRecord]) -> None:
        """Fold records received from peers (the allgather exchange).

        Broadcast files may arrive from several ranks; the lowest
        home_rank wins deterministically so every node agrees.
        """
        with self._lock:
            for rec in other_records:
                existing = self._files.get(normalize(rec.path))
                if existing is not None and existing.home_rank <= rec.home_rank:
                    continue
                self.insert(rec)

    def add_replica(self, path: str, rank: int) -> None:
        """Record that ``rank`` holds a replica of ``path``'s compressed
        bytes (in addition to the home rank)."""
        norm = normalize(path)
        with self._lock:
            self._replicas.setdefault(norm, set()).add(rank)

    def set_replicas(self, path: str, ranks: Iterable[int]) -> None:
        """Replace ``path``'s replica set wholesale. Snapshot adoption
        uses this: the serving peer's map is authoritative, and a union
        would resurrect stale split-era holders."""
        norm = normalize(path)
        with self._lock:
            holders = set(ranks)
            if holders:
                self._replicas[norm] = holders
            else:
                self._replicas.pop(norm, None)

    def replica_ranks(self, path: str) -> tuple[int, ...]:
        """Ranks holding replicas of ``path``, ascending (deterministic
        failover order; may include the home rank — callers skip it)."""
        norm = normalize(path)
        with self._lock:
            return tuple(sorted(self._replicas.get(norm, ())))

    def replica_count(self) -> int:
        """Number of paths with at least one known replica."""
        with self._lock:
            return len(self._replicas)

    def drop_replica(self, path: str, rank: int) -> None:
        """Forget ``rank``'s replica of ``path`` (its copy is gone)."""
        norm = normalize(path)
        with self._lock:
            holders = self._replicas.get(norm)
            if holders is not None:
                holders.discard(rank)
                if not holders:
                    del self._replicas[norm]

    # -- membership repair (ring reassignment) -----------------------------

    def plan_rereplication(
        self, dead_rank: int, alive_ranks: Iterable[int], size: int
    ) -> list[RereplicationStep]:
        """Deterministic repair plan for every record that lost a copy
        when ``dead_rank`` died.

        Pure function of the (converged) table + view: each surviving
        rank computes the identical plan with no coordination messages.
        The replacement copy is staged on the first alive ring successor
        of the dead rank that does not already hold the record, so
        repair load spreads the same way the original ring replication
        did. If the home died, the lowest surviving copy holder becomes
        the new home (matching :meth:`merge`'s lowest-rank-wins rule);
        with no surviving in-store copy the stage rank adopts the record
        and must source it from the shared-FS degraded path. Broadcast
        records are skipped — every rank already holds them.
        """
        alive = set(alive_ranks) - {dead_rank}
        if not alive:
            return []
        steps: list[RereplicationStep] = []
        with self._lock:
            for path in sorted(self._files):
                rec = self._files[path]
                if rec.is_broadcast:
                    continue
                copies = {rec.home_rank} | self._replicas.get(path, set())
                if dead_rank not in copies:
                    continue
                surviving = sorted(c for c in copies if c in alive)
                stage = None
                cursor = dead_rank
                for _ in range(size):
                    cursor = ring_successor(cursor, alive, size)
                    if cursor is None:
                        break
                    if cursor not in surviving:
                        stage = cursor
                        break
                if stage is None:
                    # every alive rank already holds a copy; nothing to
                    # restore beyond what the cluster can physically hold
                    continue
                if rec.home_rank == dead_rank:
                    new_home = surviving[0] if surviving else stage
                else:
                    new_home = rec.home_rank
                new_copies = set(surviving) | {stage}
                steps.append(
                    RereplicationStep(
                        path=path,
                        partition_id=rec.partition_id,
                        old_home=rec.home_rank,
                        new_home=new_home,
                        stage_rank=stage,
                        source_ranks=tuple(surviving),
                        new_replicas=tuple(
                            sorted(new_copies - {new_home})
                        ),
                        compressed_size=rec.compressed_size,
                    )
                )
        return steps

    def apply_rereplication(
        self, steps: Iterable[RereplicationStep], dead_rank: int
    ) -> int:
        """Commit a repair plan: re-home records away from the dead
        rank and swap its replica slots for the staged copies. Returns
        the number of records whose ownership changed."""
        changed = 0
        with self._lock:
            for step in steps:
                rec = self._files.get(step.path)
                if rec is None:
                    continue
                if rec.home_rank != step.new_home:
                    self._files[step.path] = replace(
                        rec,
                        home_rank=step.new_home,
                        stat=rec.stat.with_locality(step.new_home),
                    )
                    changed += 1
                self._replicas[step.path] = set(step.new_replicas)
        return changed

    # -- queries ----------------------------------------------------------

    def get(self, path: str) -> FileRecord:
        norm = normalize(path)
        with self._lock:
            try:
                return self._files[norm]
            except KeyError:
                raise FileNotFoundInStoreError(norm) from None

    def stat(self, path: str) -> FileStat:
        """``stat()``: file records directly, synthesized for directories."""
        norm = normalize(path)
        with self._lock:
            rec = self._files.get(norm)
            if rec is not None:
                return rec.stat
            if norm in self._dirs:
                return FileStat(st_mode=DEFAULT_DIR_MODE, st_nlink=2)
            raise FileNotFoundInStoreError(norm)

    def exists(self, path: str) -> bool:
        norm = normalize(path)
        with self._lock:
            return norm in self._files or norm in self._dirs

    def is_dir(self, path: str) -> bool:
        with self._lock:
            return normalize(path) in self._dirs

    def is_file(self, path: str) -> bool:
        with self._lock:
            return normalize(path) in self._files

    def listdir(self, path: str = "") -> list[str]:
        """``readdir()``: sorted entry names of a directory."""
        norm = normalize(path)
        with self._lock:
            try:
                return sorted(self._dirs[norm])
            except KeyError:
                raise FileNotFoundInStoreError(norm) from None

    def walk_files(self) -> Iterator[FileRecord]:
        """All file records (snapshot), in path order."""
        with self._lock:
            records = [self._files[p] for p in sorted(self._files)]
        return iter(records)

    def records(self) -> list[FileRecord]:
        with self._lock:
            return list(self._files.values())

    def local_records(self, rank: int) -> list[FileRecord]:
        """Records whose compressed bytes live on ``rank``."""
        with self._lock:
            return [r for r in self._files.values() if r.home_rank == rank]

    def __len__(self) -> int:
        with self._lock:
            return len(self._files)

    def __contains__(self, path: str) -> bool:
        return self.exists(path)

    def total_original_bytes(self) -> int:
        with self._lock:
            return sum(r.stat.st_size for r in self._files.values())

    def total_compressed_bytes(self) -> int:
        with self._lock:
            return sum(r.compressed_size for r in self._files.values())
