"""Comparison systems the paper evaluates FanStore against:
TFRecord-style record packing (Fig. 6), a Lustre-like shared file
system (Table III, Fig. 9), FUSE-over-SSD (Table III), and the §III
chunk-permute workaround."""

from repro.baselines.chunked import ChunkedStats, ChunkedStore
from repro.baselines.fuse import (
    FuseCostBreakdown,
    FuseLikeClient,
    read_cost_breakdown,
)
from repro.baselines.sharedfs import SharedFileSystem, default_lustre
from repro.baselines.tfrecord import (
    TFRecordReader,
    TFRecordWriter,
    write_tfrecord,
)

__all__ = [
    "TFRecordReader",
    "TFRecordWriter",
    "write_tfrecord",
    "SharedFileSystem",
    "default_lustre",
    "FuseCostBreakdown",
    "FuseLikeClient",
    "read_cost_breakdown",
    "ChunkedStore",
    "ChunkedStats",
]
