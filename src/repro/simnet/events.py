"""A compact generator-based discrete-event simulation engine.

The paper's evaluation runs on physical clusters (GTX/V100/CPU, §VII-A);
this engine is the substitute substrate: node behaviours are coroutines
(generators) that ``yield`` events — timeouts, resource grants, barrier
releases — and the simulator advances virtual time between them. The
scaling experiments (Figure 9) run 512 simulated nodes through it.

The design follows the classic event-list pattern (and simpy's user
model): a heap of ``(time, seq, event)``, processes as generators, and
resources with FIFO grant queues. It is deliberately small, fully
deterministic, and has no real-time component.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

from repro.errors import SimulationError


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* at most once, carrying an optional value;
    triggering schedules its callbacks (waiting processes) at the
    current simulation time.
    """

    __slots__ = ("sim", "triggered", "value", "_callbacks")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._callbacks: list[Callable[[Event], None]] = []

    def trigger(self, value: Any = None) -> None:
        """Fire the event now; waiting processes resume at the same time."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Register a callback; fires immediately if already triggered."""
        if self.triggered:
            cb(self)
        else:
            self._callbacks.append(cb)


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds in the future."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        super().__init__(sim)
        sim._schedule(delay, self, value)


class AllOf(Event):
    """Triggers once every constituent event has triggered."""

    __slots__ = ("_pending",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        events = list(events)
        self._pending = len(events)
        if self._pending == 0:
            sim._schedule(0.0, self, None)
            return
        for ev in events:
            ev.add_callback(self._on_child)

    def _on_child(self, _ev: Event) -> None:
        self._pending -= 1
        if self._pending == 0 and not self.triggered:
            self.trigger()


class Process(Event):
    """Drives a generator; is itself an event that triggers on return.

    The generator yields :class:`Event` instances; each yield suspends
    the process until that event triggers, at which point the event's
    value is sent back into the generator.
    """

    __slots__ = ("_gen",)

    def __init__(self, sim: "Simulator", gen: Generator[Event, Any, Any]) -> None:
        super().__init__(sim)
        self._gen = gen
        # Start the process at the current time via a zero-delay event so
        # creation order does not interleave with the caller's frame.
        start = Event(sim)
        start.add_callback(self._resume)
        sim._schedule(0.0, start, None)

    def _resume(self, ev: Event) -> None:
        try:
            target = self._gen.send(ev.value)
        except StopIteration as stop:
            self.trigger(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {type(target).__name__}, expected Event"
            )
        target.add_callback(self._resume)


class Resource:
    """A counted resource with a FIFO wait queue (e.g. an I/O channel).

    ``request()`` returns an event that triggers when a slot is granted;
    the holder must call ``release()`` exactly once per grant.
    """

    __slots__ = ("sim", "capacity", "_in_use", "_waiters")

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: list[Event] = []

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        ev = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            self.sim._schedule(0.0, ev, None)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release without matching request")
        if self._waiters:
            ev = self._waiters.pop(0)
            self.sim._schedule(0.0, ev, None)
        else:
            self._in_use -= 1


class Barrier:
    """An N-party synchronization point, reusable across rounds.

    Models MPI barriers/allreduce rendezvous: the ``parties``-th arrival
    releases everyone. ``wait()`` returns the event for this round.
    """

    __slots__ = ("sim", "parties", "_arrived", "_event")

    def __init__(self, sim: "Simulator", parties: int) -> None:
        if parties < 1:
            raise SimulationError(f"parties must be >= 1, got {parties}")
        self.sim = sim
        self.parties = parties
        self._arrived = 0
        self._event = Event(sim)

    def wait(self) -> Event:
        self._arrived += 1
        event = self._event
        if self._arrived == self.parties:
            self._arrived = 0
            self._event = Event(self.sim)
            event.trigger()
        return event


class Simulator:
    """The event loop: a time-ordered heap of pending events."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Event, Any]] = []
        self._seq = 0

    # -- scheduling -----------------------------------------------------

    def _schedule(self, delay: float, event: Event, value: Any) -> None:
        heapq.heappush(self._heap, (self.now + delay, self._seq, event, value))
        self._seq += 1

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event triggering ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """A bare event to be triggered manually."""
        return Event(self)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event triggering when all ``events`` have triggered."""
        return AllOf(self, events)

    def process(self, gen: Generator[Event, Any, Any]) -> Process:
        """Register a generator as a process; returns its completion event."""
        return Process(self, gen)

    def resource(self, capacity: int = 1) -> Resource:
        return Resource(self, capacity)

    def barrier(self, parties: int) -> Barrier:
        return Barrier(self, parties)

    # -- execution ------------------------------------------------------

    def step(self) -> bool:
        """Dispatch the earliest pending event; False when none remain."""
        while self._heap:
            time_, _, event, value = heapq.heappop(self._heap)
            if event.triggered:
                continue  # superseded (e.g. AllOf child raced completion)
            if time_ < self.now:
                raise SimulationError("time went backwards")
            self.now = time_
            event.trigger(value)
            return True
        return False

    def run(self, until: float | None = None) -> float:
        """Run to quiescence, or until simulated time ``until``.

        Returns the final simulation time.
        """
        if until is not None and until < self.now:
            raise SimulationError(f"until={until} is in the past (now={self.now})")
        while self._heap:
            next_time = self._heap[0][0]
            if until is not None and next_time > until:
                self.now = until
                return self.now
            if not self.step():
                break
        return self.now
