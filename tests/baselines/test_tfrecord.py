"""The TFRecord-compatible baseline format."""

from __future__ import annotations

import pytest

from repro.baselines.tfrecord import (
    TFRecordReader,
    TFRecordWriter,
    write_tfrecord,
)
from repro.errors import FormatError


@pytest.fixture()
def records():
    return [b"first", b"", b"third-record" * 100, bytes(500)]


@pytest.fixture()
def record_file(tmp_path, records):
    path = tmp_path / "data.tfrecord"
    offsets = write_tfrecord(path, records)
    return path, offsets


class TestFraming:
    def test_sequential_roundtrip(self, record_file, records):
        path, _ = record_file
        assert list(TFRecordReader(path)) == records

    def test_offsets_enable_random_access(self, record_file, records):
        path, offsets = record_file
        reader = TFRecordReader(path)
        for off, expected in zip(reversed(offsets), reversed(records)):
            assert reader.read_at(off) == expected

    def test_framing_overhead_is_16_bytes_per_record(self, tmp_path):
        path = tmp_path / "one.tfrecord"
        write_tfrecord(path, [b"x" * 100])
        assert path.stat().st_size == 100 + 8 + 4 + 4

    def test_nth_sequential_scan(self, record_file, records):
        path, _ = record_file
        reader = TFRecordReader(path)
        assert reader.read_nth_sequential(2) == records[2]

    def test_nth_past_end_raises(self, record_file):
        path, _ = record_file
        with pytest.raises(FormatError):
            TFRecordReader(path).read_nth_sequential(99)


class TestCorruption:
    def test_flipped_payload_bit_detected(self, tmp_path):
        path = tmp_path / "c.tfrecord"
        write_tfrecord(path, [b"payload-bytes"])
        raw = bytearray(path.read_bytes())
        raw[14] ^= 0x01  # inside the payload
        path.write_bytes(bytes(raw))
        with pytest.raises(FormatError):
            list(TFRecordReader(path))

    def test_flipped_length_detected(self, tmp_path):
        path = tmp_path / "c.tfrecord"
        write_tfrecord(path, [b"payload"])
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(FormatError):
            list(TFRecordReader(path))

    def test_truncated_file_detected(self, tmp_path):
        path = tmp_path / "c.tfrecord"
        write_tfrecord(path, [b"payload-bytes-here"])
        raw = path.read_bytes()
        path.write_bytes(raw[:-3])
        with pytest.raises(FormatError):
            list(TFRecordReader(path))

    def test_empty_file_yields_nothing(self, tmp_path):
        path = tmp_path / "empty.tfrecord"
        path.write_bytes(b"")
        assert list(TFRecordReader(path)) == []


class TestWriterIncremental:
    def test_writer_returns_growing_offsets(self, tmp_path):
        path = tmp_path / "grow.tfrecord"
        with open(path, "wb") as fh:
            writer = TFRecordWriter(fh)
            offsets = [writer.write(b"abc") for _ in range(3)]
        assert offsets == sorted(offsets)
        assert offsets[1] - offsets[0] == 3 + 16
