"""Meta-tests on API quality: documentation coverage, exports, errors.

A downstream adopter's first contact is ``help()`` and tab completion;
these tests keep that surface complete as the package grows.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.compressors",
    "repro.simnet",
    "repro.comm",
    "repro.cluster",
    "repro.fanstore",
    "repro.selection",
    "repro.training",
    "repro.baselines",
    "repro.datasets",
    "repro.bench",
    "repro.util",
    "repro.obs",
]


def _all_modules():
    names = []
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        names.append(pkg_name)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                names.append(f"{pkg_name}.{info.name}")
    return sorted(set(names))


@pytest.mark.parametrize("module_name", _all_modules())
def test_every_module_has_a_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("pkg_name", PACKAGES)
def test_dunder_all_entries_resolve(pkg_name):
    pkg = importlib.import_module(pkg_name)
    exported = getattr(pkg, "__all__", [])
    for name in exported:
        assert hasattr(pkg, name), f"{pkg_name}.__all__ lists missing {name}"


@pytest.mark.parametrize("pkg_name", PACKAGES)
def test_public_classes_and_functions_documented(pkg_name):
    pkg = importlib.import_module(pkg_name)
    undocumented = []
    for name in getattr(pkg, "__all__", []):
        obj = getattr(pkg, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(f"{pkg_name}.{name}")
    assert not undocumented, undocumented


def test_error_hierarchy_rooted_at_repro_error():
    from repro import errors

    exception_types = [
        obj
        for _, obj in vars(errors).items()
        if inspect.isclass(obj) and issubclass(obj, Exception)
    ]
    assert len(exception_types) >= 10
    for exc_type in exception_types:
        assert issubclass(exc_type, errors.ReproError)


def test_os_compatible_errors_catchable_as_builtins():
    """Intercepted code catches builtin exception types; ours must
    subclass them where POSIX semantics demand it."""
    from repro import errors

    assert issubclass(errors.FileNotFoundInStoreError, FileNotFoundError)
    assert issubclass(errors.WriteViolationError, PermissionError)
    assert issubclass(errors.BadFileDescriptorError, OSError)
    assert issubclass(errors.UnknownCompressorError, KeyError)


def test_version_is_consistent():
    from repro._version import __version__

    assert repro.__version__ == __version__
    parts = __version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)
