"""The self-healing scrubber: sweeps, batches, policy, throttling."""

from __future__ import annotations

import random
import time

import pytest

from repro.fanstore.corruption import corrupt_backend
from repro.fanstore.metadata import FileRecord
from repro.fanstore.scrub import ScrubReport, Scrubber

SEEDS = (11, 22, 33)
seeds = pytest.mark.parametrize("seed", SEEDS, ids=[f"seed{s}" for s in SEEDS])


def _corrupt_some(fs, seed, k=3):
    """Deterministically corrupt k staged copies; returns their paths."""
    rng = random.Random(seed)
    paths = sorted(r.path for r in fs.daemon.metadata.records())
    victims = rng.sample(paths, k)
    for i, path in enumerate(victims):
        corrupt_backend(fs.daemon.backend, path, seed=seed + i)
    return victims


class TestFullSweep:
    @seeds
    def test_detects_and_heals_exactly_the_damage(self, single_store, seed):
        fs = single_store
        originals = {
            r.path: fs.daemon.backend.get(r.path)
            for r in fs.daemon.metadata.records()
        }
        victims = _corrupt_some(fs, seed)
        report = fs.scrub()
        assert report.scanned == 15
        assert report.corrupted == len(victims)
        assert report.repaired == len(victims)
        assert report.unrepaired == []
        assert report.clean
        assert fs.daemon.stats.corruption_detected == len(victims)
        assert fs.daemon.stats.corruption_repaired == len(victims)
        assert fs.daemon.stats.records_scrubbed == 15
        # the backend holds byte-identical compressed copies again
        for path, data in originals.items():
            assert fs.daemon.backend.get(path) == data
        # a second sweep finds nothing
        assert fs.scrub().corrupted == 0

    def test_clean_store_scrubs_clean(self, single_store):
        report = single_store.scrub()
        assert report.verified == 15
        assert report.corrupted == 0
        assert report.clean
        assert report.bytes_scanned > 0

    def test_sample_bounds_the_sweep(self, single_store):
        report = single_store.scrub(sample=4)
        assert report.scanned == 4

    @seeds
    def test_report_only_mode_mutates_nothing(self, single_store, seed):
        fs = single_store
        victims = _corrupt_some(fs, seed)
        corrupt = {p: fs.daemon.backend.get(p) for p in victims}
        report = fs.scrub(repair=False)
        assert report.corrupted == len(victims)
        assert report.repaired == 0
        assert not report.clean
        assert fs.daemon.stats.corruption_repaired == 0
        for path, data in corrupt.items():
            assert fs.daemon.backend.get(path) == data  # untouched


class TestIncremental:
    def test_steps_cover_everything(self, single_store):
        scrubber = single_store.scrubber(batch=4)
        batches = []
        while True:
            batch = scrubber.step()
            if batch.scanned == 0:
                break
            batches.append(batch.scanned)
        assert sum(batches) == 15
        assert batches == [4, 4, 4, 3]
        assert scrubber.report.scanned == 15
        assert scrubber.report.verified == 15

    def test_cursor_wraps_to_fresh_snapshot(self, single_store):
        scrubber = single_store.scrubber(batch=15)
        assert scrubber.step().scanned == 15
        assert scrubber.step().scanned == 0  # sweep boundary
        assert scrubber.step().scanned == 15  # next sweep begins

    @seeds
    def test_incremental_sweep_heals_too(self, single_store, seed):
        fs = single_store
        victims = _corrupt_some(fs, seed)
        scrubber = fs.scrubber(batch=2)
        for _ in range(8):
            scrubber.step()
        assert scrubber.report.repaired == len(victims)
        assert scrubber.report.clean


class TestThrottle:
    def test_rate_limit_stretches_the_sweep(self, single_store):
        fs = single_store
        nbytes = sum(
            len(fs.daemon.backend.get(r.path))
            for r in fs.daemon.metadata.records()
        )
        limit = nbytes / 0.2  # the full sweep must take >= ~0.2s
        start = time.monotonic()
        report = fs.scrubber(rate_limit_bytes_per_s=limit).run()
        elapsed = time.monotonic() - start
        assert report.verified == 15
        assert elapsed >= 0.15

    def test_rate_limit_validated(self, single_store):
        with pytest.raises(Exception):
            single_store.scrubber(rate_limit_bytes_per_s=0)
        with pytest.raises(Exception):
            single_store.scrubber(batch=0)


class TestDeepMode:
    def test_deep_catches_undigested_corruption(self, single_store):
        """A record from the pre-digest era (flag stripped) with corrupt
        bytes passes the crc layer but fails deep decompression — and
        the ladder still heals it from the shared FS."""
        import dataclasses

        fs = single_store
        victim = sorted(r.path for r in fs.daemon.metadata.records())[0]
        record = fs.daemon.metadata.get(victim)
        stripped = dataclasses.replace(
            record,
            stat=dataclasses.replace(record.stat, flags=0, crc32=0),
        )
        fs.daemon.metadata.insert(stripped)
        good = fs.daemon.backend.get(victim)
        corrupt_backend(fs.daemon.backend, victim, seed=5)

        shallow = fs.scrub(deep=False)
        assert shallow.skipped >= 1  # no digest: shallow cannot see it
        assert shallow.corrupted == 0

        deep = fs.scrub(deep=True)
        assert deep.corrupted == 1
        assert deep.repaired == 1
        assert fs.daemon.backend.get(victim) == good

    def test_deep_clean_store_verifies_everything(self, single_store):
        report = single_store.scrub(deep=True)
        assert report.verified == 15
        assert report.corrupted == 0


class TestBackground:
    def test_background_thread_sweeps_and_stops(self, single_store):
        fs = single_store
        victims = _corrupt_some(fs, 99, k=2)
        scrubber = fs.scrubber(batch=4, interval_s=0.005)
        scrubber.start()
        scrubber.start()  # idempotent
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if scrubber.report.repaired >= len(victims):
                break
            time.sleep(0.01)
        scrubber.stop()
        scrubber.stop()  # idempotent
        assert scrubber.report.repaired == len(victims)
        assert fs.scrub().corrupted == 0


class TestReport:
    def test_merge_accumulates(self):
        a = ScrubReport(scanned=2, verified=1, corrupted=1, repaired=1,
                        bytes_scanned=10, elapsed_s=0.1)
        b = ScrubReport(scanned=3, verified=2, corrupted=1,
                        unrepaired=["x"], bytes_scanned=20, elapsed_s=0.2)
        a.merge(b)
        assert a.scanned == 5 and a.verified == 3
        assert a.corrupted == 2 and a.repaired == 1
        assert a.unrepaired == ["x"]
        assert not a.clean
        assert "unrepaired" in str(a)

    def test_str_mentions_clean(self):
        assert "clean" in str(ScrubReport())
