"""Project-invariant static analysis and runtime concurrency witnesses.

FanStore's correctness argument rests on concurrency discipline the
paper takes for granted: metadata is immutable-in-RAM after the
allgather, the daemon serves remote reads from a background thread, and
the multi-read/single-write model makes lock protocols load-bearing
(PAPER.md §III). This package machine-checks that discipline:

- :mod:`repro.analysis.core` — the AST lint framework (findings,
  inline waivers, the pass registry) behind the ``fanstore-lint``
  console script (:mod:`repro.analysis.cli`);
- :mod:`repro.analysis.passes` — the project-specific passes
  (lock-order, blocking-under-lock, protocol-conformance,
  error-conventions, determinism, metric-catalogue, deprecated-facade);
- :mod:`repro.analysis.lockdep` — the runtime lock-order witness
  (lockdep-style acquired-while-held graph with witness stacks),
  activated across the tier-1 suite by
  :mod:`repro.analysis.pytest_plugin`.

The rule catalogue, waiver syntax, and how to add a pass are documented
in ``docs/static-analysis.md``.
"""

from repro.analysis.core import Finding, LintPass, Project, run_lint
from repro.analysis.lockdep import LockdepWitness, current_witness

__all__ = [
    "Finding",
    "LintPass",
    "LockdepWitness",
    "Project",
    "current_witness",
    "run_lint",
]
