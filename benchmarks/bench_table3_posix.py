"""Table III — POSIX-compliant solution read performance (files/sec).

Two reproductions side by side:

1. **Modeled**: the calibrated device models evaluated at the paper's
   four file sizes for all four solutions (FanStore, SSD-fuse, SSD,
   Lustre) — this regenerates the table.
2. **Measured**: the real user-space interposition cost on this host —
   FanStore client reads vs kernel-path reads of the same files vs the
   FUSE-like chunked client — demonstrating the ordering mechanism.
"""

from __future__ import annotations

import pytest

from repro.baselines.fuse import FuseLikeClient
from repro.bench.report import PaperComparison, ordering_preserved
from repro.simnet.devices import (
    TABLE3_SIZES,
    fanstore_local,
    fuse_over_ssd,
    lustre,
    ssd,
)
from repro.training.loader import list_training_files
from repro.util.units import KIB

PAPER_TABLE3 = {
    128 * KIB: (28_248, 6_687, 39_480, 1_515),
    512 * KIB: (9_689, 2_416, 9_752, 149),
    2048 * KIB: (2_513, 738, 2_786, 385),
    8192 * KIB: (560, 197, 678, 139),
}

_SIZE_LABEL = {
    128 * KIB: "128 KB",
    512 * KIB: "512 KB",
    2048 * KIB: "2 MB",
    8192 * KIB: "8 MB",
}


def _modeled_rows():
    models = (fanstore_local(), fuse_over_ssd(), ssd(), lustre())
    rows = {}
    for size in TABLE3_SIZES:
        rows[size] = tuple(
            round(m.read_files_per_second(size)) for m in models
        )
    return rows


def test_table3_modeled(benchmark, emit_report):
    rows = benchmark(_modeled_rows)
    report = PaperComparison(
        "Table III",
        "POSIX solution read throughput, files/s (modeled vs paper)",
        columns=[
            "size", "fanstore", "(paper)", "ssd-fuse", "(paper)",
            "ssd", "(paper)", "lustre", "(paper)",
        ],
    )
    for size in TABLE3_SIZES:
        fs, fu, sd, lu = rows[size]
        pfs, pfu, psd, plu = PAPER_TABLE3[size]
        report.add_row(_SIZE_LABEL[size], fs, pfs, fu, pfu, sd, psd, lu, plu)
    report.add_note(
        "paper's 512 KB Lustre cell (149 f/s) is non-monotone vs its "
        "2 MB cell (385 f/s); the affine model cannot land both"
    )
    emit_report(report)

    for size in TABLE3_SIZES:
        fs, fu, sd, lu = rows[size]
        # the orderings §VII-C highlights
        assert lu < fu < fs <= sd
        # FanStore at 71-99 % of raw SSD (we allow a slightly wider band)
        assert 0.6 <= fs / sd <= 1.0
        # 2.9-4.4x over FUSE
        assert 2.0 <= fs / fu <= 6.0


def test_table3_measured_interposition(benchmark, em_store_raw, emit_report,
                                       em_dataset_dir):
    """Real ordering on this host: FanStore user-space path vs the
    kernel path vs the FUSE-style chunked path, same bytes."""
    files = list_training_files(em_store_raw.client)
    kernel_paths = sorted(p for p in em_dataset_dir.rglob("*") if p.is_file())
    fuse_client = FuseLikeClient(em_store_raw.client)

    def fanstore_read():
        return sum(len(em_store_raw.client.read_file(f)) for f in files)

    total = benchmark(fanstore_read)
    assert total > 0
    fan_s = benchmark.stats.stats.mean

    import time

    t0 = time.perf_counter()
    for _ in range(5):
        for p in kernel_paths:
            p.read_bytes()
    kernel_s = (time.perf_counter() - t0) / 5

    t0 = time.perf_counter()
    for _ in range(3):
        for f in files:
            fuse_client.read_file(f)
    fuse_s = (time.perf_counter() - t0) / 3

    n = len(files)
    report = PaperComparison(
        "Table III (measured)",
        "interposition cost on this host (files/s over the same bytes)",
        columns=["path", "files/s"],
    )
    report.add_row("FanStore client (user space)", round(n / fan_s))
    report.add_row("kernel file system (page cache)", round(n / kernel_s))
    report.add_row("FUSE-style chunked client", round(n / fuse_s))
    report.add_note("orderings, not absolutes, are the reproduction target")
    emit_report(report)

    # FUSE-style chunking must cost more than the direct client path.
    assert fuse_s > fan_s