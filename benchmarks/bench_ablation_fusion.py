"""Ablation — allreduce fusion-buffer size (§II-A's buffered allreduce).

"The allreduce step uses a buffer, and an allreduce is invoked once the
buffer is full." How full? This ablation sweeps the bucket size:
functionally (real bucketed allreduce over the thread communicator —
correctness identical at every size, call count varying) and modeled
(the α–β tuning curve whose interior optimum is why Horovod exposes
HOROVOD_FUSION_THRESHOLD).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.report import PaperComparison
from repro.comm.fusion import (
    FusionBuffer,
    modeled_allreduce_seconds,
)
from repro.comm.launcher import run_parallel
from repro.simnet.network import fdr_infiniband
from repro.util.units import KIB, MB, MIB

GRADIENT_BYTES = 102 * MB  # ResNet-50's allreduce payload
NODES = 16


def test_ablation_fusion_modeled_curve(benchmark, emit_report):
    net = fdr_infiniband()
    sizes = [64 * KIB, 512 * KIB, 2 * MIB, 8 * MIB, 32 * MIB,
             128 * MIB]

    def sweep():
        return {
            s: modeled_allreduce_seconds(net, GRADIENT_BYTES, NODES, s)
            for s in sizes
        }

    curve = benchmark(sweep)
    report = PaperComparison(
        "Ablation (fusion buffer size)",
        f"modeled ResNet-50 allreduce ({GRADIENT_BYTES // MB} MB, "
        f"{NODES} nodes) vs bucket size",
        columns=["bucket", "allreduce ms"],
    )
    for s, t in curve.items():
        report.add_row(f"{s // KIB} KiB", round(t * 1e3, 2))
    best = min(curve, key=curve.get)
    report.add_note(f"optimum at {best // KIB} KiB — the interior "
                    f"minimum Horovod's fusion threshold tunes for")
    emit_report(report)

    times = list(curve.values())
    best_idx = times.index(min(times))
    assert 0 < best_idx < len(times) - 1  # interior optimum
    # extremes are measurably worse than the optimum
    assert times[0] > 1.2 * times[best_idx]
    assert times[-1] > 1.05 * times[best_idx]


def test_ablation_fusion_functional_calls(benchmark, emit_report):
    """Real bucketed reductions: identical averaged result at every
    bucket size; call count scales inversely with the bucket."""
    n_values = 4096  # 32 KiB of float64 gradient

    def run_at(bucket_bytes):
        def body(comm):
            rng = np.random.default_rng(comm.rank)
            buf = FusionBuffer(comm, bucket_bytes)
            per_tensor = 256
            for start in range(0, n_values, per_tensor):
                buf.add(rng.standard_normal(per_tensor))
            out = buf.flush()
            return buf.stats.allreduce_calls, float(
                np.sum([o.sum() for o in out])
            )

        return run_parallel(body, 4, timeout=30)

    results = benchmark.pedantic(
        lambda: {b: run_at(b) for b in (2 * KIB, 8 * KIB, 1 * MIB)},
        rounds=1, iterations=1,
    )

    report = PaperComparison(
        "Ablation (fusion, functional)",
        "real bucketed allreduce over 4 ranks, 32 KiB of gradients",
        columns=["bucket", "allreduce calls", "checksum"],
    )
    checksums = set()
    for bucket, ranks in results.items():
        calls = ranks[0][0]
        checksum = round(ranks[0][1], 9)
        checksums.add(checksum)
        report.add_row(f"{bucket // KIB} KiB", calls, checksum)
    report.add_note("identical checksum at every bucket size: fusion "
                    "changes the schedule, never the math")
    emit_report(report)

    assert len(checksums) == 1  # math invariant under bucketing
    calls = [ranks[0][0] for ranks in results.values()]
    assert calls[0] > calls[1] > calls[2]  # fewer calls, bigger buckets