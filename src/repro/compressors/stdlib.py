"""Wrappers over the CPython standard-library codecs.

These give the suite its production-strength members: DEFLATE (zlib,
9 levels — the algorithm family of gzip/zling), Burrows-Wheeler (bz2,
9 levels), and LZMA (10 presets — the algorithm of xz/7z, the paper's
highest-ratio compressors). Their C implementations also provide the
fast end of the measured-throughput spectrum on this host.
"""

from __future__ import annotations

import bz2
import lzma
import zlib

from repro.compressors.base import Codec
from repro.errors import CompressionError


class ZlibCodec(Codec):
    """DEFLATE at a fixed level (1 fastest … 9 best)."""

    def __init__(self, level: int = 6) -> None:
        if not 1 <= level <= 9:
            raise ValueError(f"zlib level must be in [1, 9], got {level}")
        self.level = level
        self.name = f"zlib-{level}"

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decompress(self, data: bytes) -> bytes:
        try:
            return zlib.decompress(data)
        except zlib.error as exc:
            raise CompressionError(f"zlib: {exc}") from exc


class Bz2Codec(Codec):
    """Burrows–Wheeler at a fixed block size (1 … 9 × 100 KB blocks)."""

    def __init__(self, level: int = 9) -> None:
        if not 1 <= level <= 9:
            raise ValueError(f"bz2 level must be in [1, 9], got {level}")
        self.level = level
        self.name = f"bz2-{level}"

    def compress(self, data: bytes) -> bytes:
        return bz2.compress(data, self.level)

    def decompress(self, data: bytes) -> bytes:
        try:
            return bz2.decompress(data)
        except (OSError, ValueError) as exc:
            raise CompressionError(f"bz2: {exc}") from exc


class LzmaCodec(Codec):
    """LZMA (xz container) at a fixed preset (0 fastest … 9 best).

    This is the repo's functional equivalent of both the paper's ``lzma``
    and ``xz`` entries (identical algorithm, different container in
    lzbench; Table IV reports them with equal ratios).
    """

    def __init__(self, preset: int = 6) -> None:
        if not 0 <= preset <= 9:
            raise ValueError(f"lzma preset must be in [0, 9], got {preset}")
        self.preset = preset
        self.name = f"lzma-{preset}"

    def compress(self, data: bytes) -> bytes:
        return lzma.compress(data, preset=self.preset)

    def decompress(self, data: bytes) -> bytes:
        try:
            return lzma.decompress(data)
        except lzma.LZMAError as exc:
            raise CompressionError(f"lzma: {exc}") from exc
