"""The FanStore daemon (§V-A, §V-D).

One daemon runs per node (here: per rank of the in-process world). It

1. loads its assigned partitions from the shared file system into the
   local backend, plus any *extra* partitions capacity allows (copied
   from the ring neighbor, not re-read from the shared FS — §V-D);
2. exchanges metadata with every peer through one ``allgather`` so all
   subsequent metadata traffic is node-local (§IV-C1);
3. serves ``fetch`` requests from peers for compressed bytes it hosts
   (MPI send/recv in the paper; the communicator here);
4. decompresses on ``open()`` into the reference-counted cache and
   answers ``read()`` from it (Figures 2–4);
5. accepts the write path: an output file closed by the client is
   dumped to the backend and its metadata forwarded to the rank that
   owns the path's hash slot (§V-D site 4).

Message protocol (all on ``TAG_DAEMON``; replies on caller-chosen tags):

=========== =============================================  =========================
kind        payload                                        reply
=========== =============================================  =========================
fetch       Request envelope (subject = path)              (ok, compressed|error)
stat        Request envelope (subject = path)              (ok, FileRecord|None)
write_meta  Request envelope (subject = FileRecord)        (ok, None)
batch       Request envelope (batch = item triples)        (BATCH, item replies)
stop        —                                              —
=========== =============================================  =========================

Every request body is a :class:`repro.fanstore.wire.Request` envelope —
one typed record carrying ``subject``, ``reply_tag``, ``trace_ctx``,
``deadline``, ``epoch``, and ``batch`` by name, encoded as a versioned
self-identifying tuple (see :mod:`repro.fanstore.wire` for the wire
layout and forward-compatibility rules). Semantics are unchanged from
the positional era: a traced requester's context is adopted so one
``client.read`` is reconstructable across every rank it touched; work
whose absolute deadline already expired is dropped instead of answered
into the void; queue overflow is shed with an
``(_OVERLOAD, retry_after_s)`` reply so clients back off instead of
retry-storming; and a mutating request (``write_meta``) whose fencing
token (membership view epoch) is older than the server's is answered
``(_FENCED, server_epoch)`` rather than applied, so a rank healing out
of a minority partition cannot clobber majority state. Legacy
positional 2/3/4/5-tuple bodies still decode through the compatibility
shim in :func:`repro.fanstore.wire.decode_request` (with a
``DeprecationWarning``) and are served identically.

A ``batch`` envelope is a client-side flush of small same-destination
requests: its ``batch`` field holds ``(kind, subject, deadline)``
triples, served in order with per-item deadline checks and per-item
error isolation, answered as one ``(BATCH, (item replies...))`` on the
envelope's reply tag.
"""

from __future__ import annotations

import itertools
import logging
import random
import threading
import time
import warnings
import zlib
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro.comm.communicator import ANY_SOURCE, Communicator
from repro.comm.deadline import Deadline, wire_deadline
from repro.compressors.registry import CompressorRegistry, default_registry
from repro.errors import (
    CapacityError,
    CommClosedError,
    CommError,
    DataIntegrityError,
    DeadlineExpiredError,
    FanStoreError,
    FileNotFoundInStoreError,
    RankDeadError,
    RetryExhaustedError,
    ServerOverloadedError,
    StaleEpochError,
    WireFormatError,
)
from repro.fanstore.backend import DiskBackend, RamBackend
from repro.fanstore.cache import DecompressedCache
from repro.fanstore.crash import DiskFaultInjector, crash_point
from repro.fanstore.health import AdmissionQueue, BreakerState, HealthTracker
from repro.fanstore.journal import (
    Journal,
    JournalConfig,
    JournalStats,
    fsync_dir,
    live_entry,
    record_from_wire,
    scan_journal,
)
from repro.fanstore.layout import blob_crc32, read_partition
from repro.fanstore.membership import (
    ClusterView,
    FailureDetector,
    RankState,
    ring_successor,
)
from repro.fanstore.metadata import (
    FileRecord,
    MetadataTable,
    RereplicationStep,
    normalize,
)
from repro.fanstore.pipeline import PipelineConfig, SingleFlight
from repro.fanstore.prepare import PreparedDataset
from repro.fanstore.wire import (
    Reply,
    Request,
    decode_batch_reply,
    decode_request,
    encode_batch_reply,
)
from repro.fanstore.wire import FENCED as _WIRE_FENCED
from repro.fanstore.wire import OVERLOAD as _WIRE_OVERLOAD
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_SPAN, Tracer

TAG_DAEMON = 0x0FA0
_REPLY_TAG_BASE = 0x1000

#: first element of a shed request's reply — never a valid ``ok`` bool,
#: so legacy callers cannot mistake it for data. The second element is
#: the server's suggested back-off in seconds. (Canonical home:
#: :data:`repro.fanstore.wire.OVERLOAD`; aliased here for the drills.)
_OVERLOAD = _WIRE_OVERLOAD

#: first element of a fenced-off mutating request's reply: the sender's
#: fencing token (membership view epoch) was older than the server's,
#: so the mutation was refused. The second element is the server's
#: epoch — the sender must catch up to at least that view (rejoin,
#: merge gossip) before the mutation can be meaningful again.
#: (Canonical home: :data:`repro.fanstore.wire.FENCED`.)
_FENCED = _WIRE_FENCED

#: load-time collectives (metadata allgather) are not on the request
#: hot path; they get a generous fixed budget rather than the per-
#: request deadline machinery.
_LOAD_COLLECTIVE_TIMEOUT = 60.0

_LOG = logging.getLogger(__name__)


@dataclass
class DaemonStats:
    """Counters surfaced to the benchmarks.

    .. deprecated::
        Retained as a thin façade over the unified
        :class:`~repro.obs.metrics.MetricsRegistry`: every field here is
        *bound into* the daemon's registry under ``daemon.<field>``
        (same storage — mutating either side is visible through both),
        so existing drills keep asserting on ``daemon.stats.<field>``
        while new code reads ``daemon.metrics``. Prefer the registry;
        this bag stays only for PR 1–3 compatibility.
    """

    local_opens: int = 0
    remote_fetches: int = 0
    remote_bytes: int = 0
    decompressions: int = 0
    decompressed_bytes: int = 0
    served_requests: int = 0
    writes: int = 0
    write_bytes: int = 0
    malformed_requests: int = 0
    retries: int = 0  # re-sent request/reply attempts (lost or late replies)
    failovers: int = 0  # fetches that had to leave the home rank
    degraded_reads: int = 0  # payloads re-read from the shared FS
    corruption_detected: int = 0  # payloads that failed digest verification
    corruption_repaired: int = 0  # of those, healed via the failover ladder
    records_scrubbed: int = 0  # records verified by the background scrubber
    dead_route_skips: int = 0  # fetches short-circuited past a known-dead home
    rereplicated_records: int = 0  # restored copies staged on this rank
    rereplication_failed: int = 0  # lost records no source could restore
    mean_time_to_repair: float = 0.0  # conviction → repair committed, seconds
    hedged_reads: int = 0  # fetches where the hedge actually fired
    hedge_wins: int = 0  # of those, the hedge replica answered first
    hedge_losses: int = 0  # of those, the home rank still answered first
    breaker_opens: int = 0  # circuit-breaker transitions into OPEN
    breaker_probes: int = 0  # half-open requests let through as probes
    breaker_skips: int = 0  # fetches routed around an open-breaker home
    shed_requests: int = 0  # requests dropped by admission control
    deadline_expired_drops: int = 0  # served-side: work abandoned pre-serve
    deadline_aborts: int = 0  # client-side: exchanges abandoned at deadline
    overload_backoffs: int = 0  # overload replies received (client backed off)
    brownout_skipped_verifies: int = 0  # re-verifications skipped under load
    fenced_rejects: int = 0  # mutations refused for carrying a stale epoch
    stale_epoch_aborts: int = 0  # client-side: requests fenced off by a server
    rereplications_frozen: int = 0  # convictions deferred for lack of quorum
    reconciled_records: int = 0  # placements digest-checked by heal anti-entropy
    duplicate_replicas_dropped: int = 0  # split-era copies GC'd on heal

    #: replication-engine counters live under ``replication.<field>``
    #: in the registry (the ISSUE-specified namespace for partition-era
    #: metrics), while everything else keeps the legacy ``daemon.``
    #: prefix.
    _REPLICATION_FIELDS = (
        "fenced_rejects",
        "rereplications_frozen",
        "reconciled_records",
        "duplicate_replicas_dropped",
    )

    def bind(self, metrics: MetricsRegistry) -> None:
        """Register every field in ``metrics`` as ``daemon.<field>``
        (``replication.<field>`` for the replication-engine counters),
        backed by this object's attributes (zero hot-path overhead:
        ``stats.retries += 1`` stays a bare int add)."""
        for name in self.__dataclass_fields__:
            prefix = (
                "replication" if name in self._REPLICATION_FIELDS
                else "daemon"
            )
            if name == "mean_time_to_repair":
                metrics.bind_gauge(f"{prefix}.{name}", self, name)
            else:
                metrics.bind_counter(f"{prefix}.{name}", self, name)


@dataclass(frozen=True)
class DaemonConfig:
    """Tunables of one daemon instance."""

    cache_bytes: int = 1 << 30
    retain_cache: bool = False  # paper policy: release at refcount zero
    capacity_bytes: int | None = None  # burst-buffer budget; None = unbounded
    extra_partition_budget: int = 0  # additional partitions to replicate
    request_timeout: float = 30.0
    #: retry budget for one request/reply exchange: ``max_retries``
    #: re-sends after the first attempt, each on a fresh reply tag, with
    #: exponential backoff (base * 2^(attempt-1), capped at the max)
    #: plus up to ``retry_jitter`` * backoff of seeded random jitter so
    #: synchronized peers don't re-stampede a recovering rank.
    max_retries: int = 2
    retry_backoff_base: float = 0.05
    retry_backoff_max: float = 2.0
    retry_jitter: float = 0.5
    #: attempts against each replica rank once the home rank is given
    #: up on (replicas are a bonus tier; the shared FS is the floor).
    failover_attempts: int = 1
    #: compressor applied to output files at close (None = store raw).
    #: Checkpoints/logs are written once and rarely re-read (§II-B3), so
    #: a slow-but-dense codec is usually the right choice here.
    output_compressor: str | None = None
    #: digest-check every compressed payload before it is decompressed
    #: or served (records without a recorded digest always pass); the
    #: cached-plaintext fast path is unaffected either way.
    verify_reads: bool = True
    #: phase-histogram sampling: every Nth cache-missing ``open_file``
    #: records per-phase (metadata/fetch/verify/decompress) latencies.
    #: A hot local read is ~20 µs, so always-on timing would dominate
    #: it; sampling keeps the instrumentation overhead low while the
    #: histograms still converge. 0 disables phase timing entirely.
    metrics_every: int = 8
    #: fraction of cache-missing opens that start a new trace rooted at
    #: ``client.read`` (1.0 = every open; the chaos drills run there).
    #: 0.0 never *starts* traces, but requests arriving with a remote
    #: trace context are always served traced — a sampled trace on one
    #: rank is followed everywhere.
    trace_sample: float = 0.0
    #: total wall-clock budget for one fetch ladder (home retries →
    #: replicas → shared FS). None keeps the legacy behaviour — each
    #: attempt gets a full ``request_timeout`` and the tiers stack; a
    #: value caps every attempt's timeout and backoff by the remaining
    #: budget, so the ladder can never outlive the caller (set it below
    #: the trainer's ``comm_timeout``). Either way each request wire
    #: body carries its attempt's absolute deadline so servers can drop
    #: work the requester has already abandoned.
    request_deadline: float | None = None
    #: service-thread join budget at :meth:`FanStoreDaemon.stop` —
    #: deliberately *not* ``request_timeout`` (a 30 s request budget
    #: must not turn shutdown into a 30 s hang). A thread that misses
    #: it is logged and leaked (it is a daemon thread; it dies with the
    #: process).
    shutdown_timeout: float = 5.0
    #: hedged reads: after the home rank has been silent for the
    #: ``hedge_quantile`` of its recent latencies (``hedge_after_s``
    #: until enough samples exist), fire the same fetch at the best
    #: replica and take the first verified reply. Off by default — the
    #: healthy-cluster overhead is near zero, but hedging is a policy
    #: the operator should opt into.
    hedge_reads: bool = False
    hedge_after_s: float = 0.05
    hedge_quantile: float = 0.95
    #: circuit breaker per peer: ``breaker_failure_threshold``
    #: consecutive hard failures (timeouts, overload sheds) or
    #: ``breaker_slow_threshold`` consecutive slow signals (hedge
    #: fired, or latency above ``breaker_latency_threshold`` when set)
    #: open it; after ``breaker_reset_after`` seconds it half-opens and
    #: the next fetch probes.
    breaker_failure_threshold: int = 3
    breaker_slow_threshold: int = 3
    breaker_reset_after: float = 1.0
    breaker_latency_threshold: float | None = None
    #: admission control: the service loop drains its mailbox into a
    #: bounded queue; overflow sheds the nearest-deadline entry with an
    #: overload reply carrying ``overload_retry_after_s``. Shedding (or
    #: a backlog at/above ``brownout_queue_depth``, default half the
    #: queue) enters *brownout* for ``brownout_hold_s``: re-verification
    #: of already-digest-checked payloads is skipped to shed CPU.
    max_queue_depth: int = 64
    overload_retry_after_s: float = 0.05
    brownout_queue_depth: int | None = None
    brownout_hold_s: float = 0.5
    #: epoch fencing: every request carries the sender's membership view
    #: epoch, and mutating requests (``write_meta``) stamped with an
    #: epoch older than the server's are refused with a
    #: ``(_FENCED, server_epoch)`` reply (surfaced to the caller as
    #: :class:`StaleEpochError`). This is what keeps a rank healing out
    #: of a minority partition from clobbering majority state; disable
    #: only to measure what it buys (see ``benchmarks/bench_partition``).
    epoch_fencing: bool = True
    #: the pipelined-scheduler knob group (worker pool width, in-flight
    #: bound, client-side batching limits) — see
    #: :class:`repro.fanstore.pipeline.PipelineConfig` for each knob.
    #: ``PipelineConfig(pipeline_workers=0, batch_max=1)`` restores the
    #: fully blocking pre-pipeline daemon.
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)


class _BatchTicket:
    """One parked small request awaiting a batched flush.

    ``outcome`` is written under its batcher's lock and read after
    ``event`` fires: ``("lead", None)`` elects the waiter as the next
    flush leader, ``("reply", Reply)`` hands it its decoded item reply,
    ``("fallback", None)`` tells it to retry through the classic
    single-request ladder. ``cancelled`` marks a waiter that gave up at
    its deadline — a flush leader skips it rather than answering a
    walked-away caller."""

    __slots__ = ("kind", "subject", "deadline", "event", "outcome",
                 "cancelled")

    def __init__(
        self, kind: str, subject: Any, deadline: Deadline | None
    ) -> None:
        self.kind = kind
        self.subject = subject
        self.deadline = deadline
        self.event = threading.Event()
        self.outcome: tuple[str, Any] | None = None
        self.cancelled = False


class _DestBatcher:
    """Per-destination batching state: ``busy`` is the flush baton (one
    in-flight exchange per destination at a time), ``pending`` the
    tickets parked behind it."""

    __slots__ = ("lock", "busy", "pending")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.busy = False
        self.pending: "deque[_BatchTicket]" = deque()


class FanStoreDaemon:
    """Per-rank object-store service."""

    def __init__(
        self,
        comm: Communicator | None = None,
        *,
        config: DaemonConfig | None = None,
        backend: RamBackend | DiskBackend | None = None,
        registry: CompressorRegistry | None = None,
        metrics: MetricsRegistry | None = None,
        journal_dir: Any = None,
        journal_config: JournalConfig | None = None,
        disk_injector: DiskFaultInjector | None = None,
        **legacy: Any,
    ) -> None:
        self.comm = comm
        self.config = self._resolve_config(config, legacy)
        self.backend = backend if backend is not None else RamBackend()
        self.registry = registry or default_registry()
        self.metadata = MetadataTable()
        self.cache = DecompressedCache(
            self.config.cache_bytes, retain_unpinned=self.config.retain_cache
        )
        self.rank = comm.rank if comm else 0
        self.size = comm.size if comm else 1
        #: unified per-rank observability: the stats bag below is bound
        #: into this registry (``daemon.*``), the cache binds its own
        #: (``cache.*``), and sampled opens feed the phase histograms.
        self.metrics = metrics if metrics is not None else MetricsRegistry(
            rank=self.rank
        )
        self.tracer = Tracer(rank=self.rank, sample=self.config.trace_sample)
        self.stats = DaemonStats()
        self.stats.bind(self.metrics)
        self.cache.bind_metrics(self.metrics)
        self._obs_tick = 0
        self._last_verify_s = 0.0  # per-fetch verify cost (see _blob_ok)
        self._h_meta = self.metrics.histogram("daemon.phase.metadata_seconds")
        self._h_fetch = self.metrics.histogram("daemon.phase.fetch_seconds")
        self._h_verify = self.metrics.histogram("daemon.phase.verify_seconds")
        self._h_decompress = self.metrics.histogram(
            "daemon.phase.decompress_seconds"
        )
        self._h_open = self.metrics.histogram("daemon.open_seconds")
        self._h_write = self.metrics.histogram("daemon.write_seconds")
        self._trace_opens = self.config.trace_sample > 0.0
        self._service_thread: threading.Thread | None = None
        self._reply_tags = itertools.count(_REPLY_TAG_BASE + self.rank * 1_000_000)
        self._reply_lock = threading.Lock()
        #: pipelined scheduler state (PR 9): client-side single-flight
        #: coalescing of identical fetches, per-destination request
        #: batchers, and the serve-side in-flight gauge + counters.
        self._fetch_flight = SingleFlight()
        self._batch_lock = threading.Lock()
        self._batchers: dict[int, _DestBatcher] = {}
        self._inflight = 0
        self.metrics.bind_gauge("daemon.pipeline.inflight", self, "_inflight")
        self._m_dispatched = self.metrics.counter("daemon.pipeline.dispatched")
        self._m_coalesced = self.metrics.counter(
            "daemon.pipeline.coalesced_fetches"
        )
        self._m_batch_flushes = self.metrics.counter("daemon.batch.flushes")
        self._m_batch_items = self.metrics.counter("daemon.batch.items")
        self._m_batch_fallbacks = self.metrics.counter(
            "daemon.batch.fallbacks"
        )
        self._m_batch_served = self.metrics.counter("daemon.batch.served")
        self._loaded_bytes = 0
        self._prepared: PreparedDataset | None = None
        # replica paths this rank acquired during ring replication,
        # announced to peers in the metadata allgather
        self._replicated_paths: list[str] = []
        self._retry_rng = random.Random(0x5EED ^ self.rank)
        #: per-peer latency EWMA/quantiles + circuit breakers; the
        #: breaker transition/probe callbacks land in the stats bag so
        #: the drills assert on them like any other counter
        cfg = self.config
        self.health = HealthTracker(
            self.rank,
            failure_threshold=cfg.breaker_failure_threshold,
            slow_threshold=cfg.breaker_slow_threshold,
            reset_after=cfg.breaker_reset_after,
            latency_threshold=cfg.breaker_latency_threshold,
        )
        self.health.on_open = self._on_breaker_open
        self.health.on_probe = self._on_breaker_probe
        self._queue_depth = 0  # service-loop backlog, sampled per drain
        self.metrics.bind_gauge("daemon.queue_depth", self, "_queue_depth")
        self._brownout_until = 0.0
        self._brownout_depth = (
            cfg.brownout_queue_depth
            if cfg.brownout_queue_depth is not None
            else max(2, cfg.max_queue_depth // 2)
        )
        self._verified_paths: set[str] = set()
        self._membership: FailureDetector | None = None
        # negative route cache: dest rank → view epoch at the time the
        # exchange was given up on; a hit counts only while the epoch is
        # unchanged, so every membership change re-opens the route
        self._route_lock = threading.Lock()
        self._dead_routes: dict[int, int] = {}
        self._repair_durations: list[float] = []
        # convictions whose re-replication was frozen (no quorum at the
        # time); heal reconciliation catches them up. Guarded by
        # _route_lock (same membership-callback paths).
        self._frozen_corpses: set[int] = set()
        # corpses this rank already ran a re-replication pass for —
        # heal catch-up must not double-stage what on_rank_dead did
        self._rereplicated_for: set[int] = set()
        #: crash-consistent durability (PR 8): when a journal directory
        #: is configured, every local-store mutation goes intent →
        #: atomic apply → commit through :meth:`_durable_put`, and
        #: :meth:`load`/:meth:`load_rejoin` run restart recovery before
        #: ingesting anything. ``None`` journal = legacy fire-and-forget
        #: (RAM backends, where nothing survives the process anyway).
        self._journal_dir = journal_dir
        self._journal_config = journal_config
        self._disk_injector = disk_injector
        self.journal: Journal | None = None
        self.jstats = JournalStats()
        self.jstats.bind(self.metrics)
        if disk_injector is not None and hasattr(self.backend, "injector"):
            self.backend.injector = disk_injector
        if isinstance(self.backend, DiskBackend):
            self.backend.rank = self.rank

    _LEGACY_PIPELINE_KWARGS = (
        "pipeline_workers", "max_inflight", "batch_max", "batch_linger"
    )

    @classmethod
    def _resolve_config(
        cls, config: DaemonConfig | None, legacy: dict[str, Any]
    ) -> DaemonConfig:
        """Fold deprecated ad-hoc scheduler kwargs into the coherent
        ``config.pipeline`` group. Unknown kwargs stay a TypeError."""
        base = config or DaemonConfig()
        if not legacy:
            return base
        unknown = [k for k in legacy if k not in cls._LEGACY_PIPELINE_KWARGS]
        if unknown:
            raise TypeError(
                "FanStoreDaemon() got unexpected keyword argument(s): "
                + ", ".join(sorted(unknown))
            )
        warnings.warn(
            "passing scheduler knobs as FanStoreDaemon keyword arguments "
            "is deprecated; set DaemonConfig(pipeline=PipelineConfig(...)) "
            "instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return replace(base, pipeline=replace(base.pipeline, **legacy))

    # -- loading ----------------------------------------------------------

    def _assigned_partitions(self, num_partitions: int) -> list[int]:
        """Round-robin partition→rank assignment (§V-D: rank determines
        which partitions to load)."""
        return [p for p in range(num_partitions) if p % self.size == self.rank]

    def _charge_capacity(self, nbytes: int, what: str) -> None:
        self._loaded_bytes += nbytes
        cap = self.config.capacity_bytes
        if cap is not None and self._loaded_bytes > cap:
            raise CapacityError(
                f"rank {self.rank}: loading {what} exceeds the "
                f"{cap}-byte burst buffer ({self._loaded_bytes} needed)"
            )

    def _ingest_partition(self, partition_path, home_rank: int) -> int:
        """Ingest one partition file; returns payload bytes ingested.

        With a :class:`~repro.fanstore.backend.PartitionBackend` the
        payloads stay inside the partition file on local disk and only
        the metadata is scanned (the paper's SSD mode); otherwise the
        payload bytes are loaded into the backend (the RAM mode).
        """
        payload = 0
        if hasattr(self.backend, "register"):
            entries = read_partition(partition_path, with_data=False)
            for e in entries:
                self.backend.register(
                    e.path, partition_path, e.data_offset, e.compressed_size
                )
                payload += e.compressed_size
        else:
            # zero-copy RAM ingest: one read of the whole partition,
            # payloads stored as memoryview slices of that buffer
            entries = read_partition(
                partition_path, with_data=True, zero_copy=True
            )
            for e in entries:
                assert e.data is not None
                self.backend.put(e.path, e.data)
                payload += e.compressed_size
        self.metadata.insert_entries(entries, home_rank)
        return payload

    def load(self, prepared: PreparedDataset) -> None:
        """Stage the prepared dataset: local partitions from the shared
        FS, extra partitions from the ring neighbor, broadcast partition
        everywhere, then the metadata allgather."""
        # crash recovery first: adopted client outputs must be in the
        # table before the allgather announces this rank's holdings
        self._open_journal()
        self._prepared = prepared  # kept for degraded shared-FS re-reads
        assigned = self._assigned_partitions(len(prepared.partitions))
        partition_paths = prepared.partition_paths()
        for pid in assigned:
            nbytes = self._ingest_partition(partition_paths[pid], self.rank)
            self._charge_capacity(nbytes, f"partition {pid}")

        bcast = prepared.broadcast_path()
        if bcast is not None:
            nbytes = self._ingest_partition(bcast, self.rank)
            self._charge_capacity(nbytes, "broadcast partition")

        if self.comm is not None:
            self._replicate_extra_partitions(assigned)
            self._metadata_allgather()

    def _replicate_extra_partitions(self, assigned: list[int]) -> None:
        """§V-D site 2: extra partitions are copied from the left ring
        neighbor rather than re-read off the shared file system. Each
        hop ships (path, compressed bytes, record) tuples."""
        budget = self.config.extra_partition_budget
        if budget <= 0:
            return
        comm = self.comm
        assert comm is not None
        block = [
            (rec.path, self.backend.get(rec.path), rec)
            for rec in self.metadata.local_records(self.rank)
            if not rec.is_broadcast
        ]
        left = (comm.rank - 1) % comm.size
        right = (comm.rank + 1) % comm.size
        current = block
        for _hop in range(min(budget, comm.size - 1)):
            comm.send(current, right, TAG_DAEMON + 1)
            current = comm.recv(left, TAG_DAEMON + 1,
                                timeout=self.config.request_timeout)
            nbytes = 0
            for path, data, _rec in current:
                self.backend.put(path, data)
                self._replicated_paths.append(path)
                nbytes += len(data)
            self._charge_capacity(nbytes, "extra partition")

    def _metadata_allgather(self) -> None:
        """§IV-C1: one allgather builds the identical global view on
        every node. Records keep their *home* rank so remote fetches
        know where to go; each rank also announces the replica copies it
        acquired during ring replication, so a fetch whose home rank has
        died can fail over to a surviving copy."""
        comm = self.comm
        assert comm is not None
        mine = self.metadata.local_records(self.rank)
        contributions = comm.allgather(
            (mine, list(self._replicated_paths)),
            timeout=_LOAD_COLLECTIVE_TIMEOUT,
        )
        for sender, (records, replicated) in enumerate(contributions):
            self.metadata.merge(records)
            for path in replicated:
                self.metadata.add_replica(path, sender)

    # -- membership (self-healing) ------------------------------------------

    def attach_membership(self, detector: FailureDetector) -> None:
        """Wire a failure detector to this daemon: conviction triggers
        re-replication, re-admission re-announces replicas, and the
        detector's join/promotion endpoints are backed by this daemon's
        metadata snapshot and verification read."""
        self._membership = detector
        detector.on_dead = self.on_rank_dead
        detector.on_alive = self.on_rank_alive
        detector.on_isolated = self.on_isolated
        detector.on_reconnected = self.reconcile_after_heal
        detector.verify_read = self.verification_read
        detector.join_snapshot = self.membership_snapshot

    def current_view(self) -> ClusterView | None:
        """Snapshot of the membership view (None when not attached)."""
        det = self._membership
        return det.view if det is not None else None

    def _view_epoch(self) -> int:
        det = self._membership
        return det.view.epoch if det is not None else 0

    def _fence_token(self) -> int | None:
        """The fencing token stamped on outgoing requests: this rank's
        membership view epoch, or None when fencing is off / no detector
        is attached (legacy senders are served unfenced)."""
        if not self.config.epoch_fencing or self._membership is None:
            return None
        return self._view_epoch()

    def _stale_epoch(self, epoch: int | None) -> bool:
        """Server-side fencing check for a mutating request: True when
        the sender stamped a view epoch older than ours. Unfenced
        senders (no token: legacy wire forms, fencing disabled, no
        detector) are never fenced — fencing protects against *known*
        staleness, not missing information."""
        if not self.config.epoch_fencing or self._membership is None:
            return False
        return epoch is not None and epoch < self._view_epoch()

    def _route_dead(self, dest: int) -> bool:
        """Whether requests to ``dest`` should short-circuit: the view
        convicted it DEAD, or the negative route cache remembers an
        exhausted exchange from the *current* view epoch. Stale cache
        entries (epoch moved on) are dropped on sight."""
        if dest == self.rank:
            return False
        view = self.current_view()
        if view is not None and view.state(dest) == RankState.DEAD:
            return True
        with self._route_lock:
            cached = self._dead_routes.get(dest)
            if cached is None:
                return False
            if view is not None and cached != view.epoch:
                del self._dead_routes[dest]
                return False
            return True

    def _note_dead_route(self, dest: int) -> None:
        """Remember that ``dest`` exhausted a full retry ladder, so the
        next request skips straight to failover even before the
        detector convicts it."""
        epoch = self._view_epoch()
        with self._route_lock:
            self._dead_routes[dest] = epoch

    def _clear_dead_route(self, dest: int) -> None:
        with self._route_lock:
            self._dead_routes.pop(dest, None)

    def _on_breaker_open(self, peer: int) -> None:
        self.stats.breaker_opens += 1

    def _on_breaker_probe(self, peer: int) -> None:
        self.stats.breaker_probes += 1

    def on_rank_dead(self, rank: int, view: ClusterView) -> None:
        """Membership callback: ``rank`` was convicted DEAD.

        Every surviving rank computes the *same* deterministic
        reassignment plan (pure function of the converged metadata +
        view) and commits it to its own table, so routing converges
        without coordination messages. The designated stage rank of each
        step additionally copies the payload from a surviving copy
        holder — shared-FS degraded read as the floor — digest-verifies
        it, and lands it in its backend, restoring the replication
        factor. Counted in ``rereplicated_records`` and
        ``mean_time_to_repair``.
        """
        det = self._membership
        if det is not None and (det.isolated or not det.has_quorum()):
            # No quorum behind this conviction: re-replicating now is
            # how a split cluster turns into a replication storm (both
            # sides "restoring" partitions the other side still holds).
            # Freeze the work; heal reconciliation catches it up if the
            # conviction survives the merged view.
            self.stats.rereplications_frozen += 1
            with self._route_lock:
                self._frozen_corpses.add(rank)
            return
        # reconcile the breaker with the view: a conviction outranks
        # whatever the latency tracker believed
        self.health.force_open(rank)
        with self._route_lock:
            self._frozen_corpses.discard(rank)
            self._rereplicated_for.add(rank)
        started = time.monotonic()
        plan = self.metadata.plan_rereplication(
            rank, view.non_dead_ranks(), self.size
        )
        restored = 0
        failed = 0
        for step in plan:
            if step.stage_rank != self.rank:
                continue
            if step.path in self.backend:
                restored += 1  # already held (e.g. an unannounced copy)
                continue
            if self._stage_copy(step) is None:
                failed += 1
            else:
                restored += 1
        self.metadata.apply_rereplication(plan, rank)
        self.stats.rereplicated_records += restored
        self.stats.rereplication_failed += failed
        det = self._membership
        t0 = started
        if det is not None and det.clock is time.monotonic:
            t0 = det.detected_at.get(rank, started)
        self._repair_durations.append(time.monotonic() - t0)
        self.stats.mean_time_to_repair = sum(self._repair_durations) / len(
            self._repair_durations
        )

    def _stage_copy(self, step: RereplicationStep) -> bytes | None:
        """Fetch one lost record's bytes from a surviving copy holder
        (shared-FS degraded read as the floor), digest-verify them, and
        land them in the local backend. Returns the bytes, or None when
        every source failed."""
        record = self.metadata.get(step.path)
        for source in step.source_ranks:
            if source == self.rank or self._route_dead(source):
                continue
            try:
                ok, data = self._request(
                    "fetch", step.path, source,
                    attempts=max(1, self.config.failover_attempts),
                )
            except (RetryExhaustedError, ServerOverloadedError, RankDeadError):
                continue
            if ok and self._blob_ok(record, data):
                self._durable_put("rereplicate", step.path, data)
                return data
        # _degraded_read verifies and promotes into the backend itself
        return self._degraded_read(step.path, record)

    def on_rank_alive(self, rank: int) -> None:
        """Membership callback: ``rank`` was re-admitted. Its rejoin
        re-staged its original round-robin partitions off the shared FS,
        so every rank deterministically announces it as a replica for
        those records. Ownership stays with the post-repair homes —
        handing primaries back would churn routing for no benefit."""
        self._clear_dead_route(rank)
        with self._route_lock:
            # a live rank owes nobody a re-replication: drop any frozen
            # conviction and forget the completed pass so a *future*
            # death gets a fresh one
            self._frozen_corpses.discard(rank)
            self._rereplicated_for.discard(rank)
        # re-admission half-opens the breaker: the first fetch at the
        # rejoiner is a probe, not a leap of faith
        self.health.half_open(rank)
        for rec in self.metadata.records():
            if rec.is_broadcast:
                continue
            if rec.partition_id % self.size == rank and rec.home_rank != rank:
                self.metadata.add_replica(rec.path, rank)

    def on_isolated(self) -> None:
        """Membership callback: this rank lost quorum (minority side of
        a partition). Nothing to tear down — reads keep serving from
        local partitions and the degraded shared-FS floor, and the
        detector itself freezes convictions; this hook exists so
        operators see the transition in the log stream."""
        _LOG.warning(
            "rank %d: ISOLATED — no membership quorum; convictions and "
            "re-replication frozen, reads continue degraded", self.rank,
        )

    def reconcile_after_heal(self, view: ClusterView) -> None:
        """Membership callback: this rank regained quorum after an
        isolation episode — the partition healed and the gossip views
        merged. Anti-entropy pass:

        1. the negative route cache and open circuit breakers are reset
           (the epoch moved and the links are plausibly back — probe,
           don't assume);
        2. convictions frozen during isolation are caught up *if* the
           merged view still holds them DEAD (a rank the majority
           revived owes nobody a re-replication);
        3. backend copies this rank holds but is neither home for nor an
           announced replica of — split-era duplicates and old promoted
           copies — are garbage-collected;
        4. every record this rank is responsible for is digest-verified
           (and repaired through the failover ladder) by one scrubber
           pass, so divergent placements reconverge digest-clean.

        Counted in ``replication.reconciled_records`` /
        ``replication.duplicate_replicas_dropped``; the whole pass is
        one ``daemon.heal.reconcile`` trace span.
        """
        with self.tracer.maybe_root("daemon.heal.reconcile",
                                    epoch=view.epoch) as span:
            with self._route_lock:
                self._dead_routes.clear()
                frozen = sorted(self._frozen_corpses)
                self._frozen_corpses.clear()
            for peer in self.health.open_peers():
                self.health.half_open(peer)
            caught_up = 0
            for rank in frozen:
                with self._route_lock:
                    done = rank in self._rereplicated_for
                if done or view.state(rank) != RankState.DEAD:
                    continue
                self.on_rank_dead(rank, view)
                caught_up += 1
            dropped = 0
            for rec in self.metadata.records():
                if rec.is_broadcast or rec.home_rank == self.rank:
                    continue
                if rec.path not in self.backend:
                    continue
                if self.rank in self.metadata.replica_ranks(rec.path):
                    continue
                if self.backend.discard(rec.path):
                    self.cache.discard(rec.path)
                    dropped += 1
            self.stats.duplicate_replicas_dropped += dropped
            # lazy import: repro.fanstore.scrub imports this module
            from repro.fanstore.scrub import Scrubber

            report = Scrubber(self, repair=True).run()
            self.stats.reconciled_records += report.scanned
            span.tag(
                caught_up=caught_up,
                duplicates_dropped=dropped,
                scrub_clean=report.clean,
            )

    def verification_read(self, joiner: int) -> bool:
        """Promotion gate (peer side): fetch one record the joiner must
        hold — the first of its round-robin partition — straight from
        its daemon and digest-verify the bytes. A rank that cannot serve
        a verified read does not get promoted. No candidate record means
        there is nothing to verify — admit."""
        candidates = [
            rec for rec in self.metadata.records()
            if not rec.is_broadcast
            and rec.partition_id % self.size == joiner
        ]
        if not candidates:
            return True
        record = min(candidates, key=lambda r: r.path)
        try:
            ok, data = self._request("fetch", record.path, joiner, attempts=1)
        except (RetryExhaustedError, ServerOverloadedError, RankDeadError):
            return False
        return (
            bool(ok)
            and isinstance(data, (bytes, bytearray, memoryview))
            and self._blob_ok(record, data)
        )

    def membership_snapshot(
        self,
    ) -> tuple[list[FileRecord], dict[str, tuple[int, ...]]]:
        """Join payload (peer side): the full record list plus the
        replica map — everything a relaunched rank needs to rebuild what
        the load-time allgather originally gave it, *including* any
        post-repair ownership changes."""
        records = self.metadata.records()
        replicas = {
            rec.path: self.metadata.replica_ranks(rec.path) for rec in records
        }
        return records, replicas

    def apply_membership_snapshot(
        self, snapshot: tuple[list[FileRecord], dict[str, tuple[int, ...]]]
    ) -> None:
        """Joiner side: adopt a live peer's metadata wholesale (it is
        authoritative — it reflects any re-homing done while this rank
        was dead or partitioned away), then announce the copies of this
        rank's own round-robin partitions it physically holds as
        replicas — the *same* deterministic rule every peer applies in
        :meth:`on_rank_alive`, so both sides of the announcement
        converge without a message. Copies held beyond that rule
        (split-era duplicates, old degraded-read promotions) are
        deliberately *not* announced; :meth:`reconcile_after_heal`
        garbage-collects them."""
        records, replicas = snapshot
        for rec in records:
            self.metadata.insert(rec)
            # Replace, not union: a partition survivor's own stale
            # entries (e.g. itself as holder of a duty re-homed during
            # the split) must not outlive the adoption.
            self.metadata.set_replicas(rec.path, replicas.get(rec.path, ()))
        for rec in records:
            if rec.is_broadcast:
                continue
            if (
                rec.partition_id % self.size == self.rank
                and rec.home_rank != self.rank
                and rec.path in self.backend
            ):
                self.metadata.add_replica(rec.path, self.rank)

    def load_rejoin(self, prepared: PreparedDataset) -> None:
        """Re-stage this rank's round-robin partitions off the shared FS
        without any collective: a rejoiner cannot allgather (the
        original cohort's collective sequence has moved on), so its
        bytes come from the shared FS and its metadata from the join
        snapshot applied afterwards."""
        self._open_journal()
        self._prepared = prepared
        assigned = self._assigned_partitions(len(prepared.partitions))
        partition_paths = prepared.partition_paths()
        for pid in assigned:
            nbytes = self._ingest_partition(partition_paths[pid], self.rank)
            self._charge_capacity(nbytes, f"partition {pid}")
        bcast = prepared.broadcast_path()
        if bcast is not None:
            nbytes = self._ingest_partition(bcast, self.rank)
            self._charge_capacity(nbytes, "broadcast partition")

    def export_ownership(self) -> dict:
        """JSON-ready ownership map (view epoch + per-path home and
        replicas) for offline tooling: ``fanstore-inspect --repair``
        must consult post-re-replication owners, not the original
        layout, so integrity repair and membership repair compose."""
        view = self.current_view()
        return {
            "epoch": view.epoch if view is not None else 0,
            "rank": self.rank,
            "files": {
                rec.path: {
                    "home": rec.home_rank,
                    "replicas": list(self.metadata.replica_ranks(rec.path)),
                }
                for rec in self.metadata.records()
            },
        }

    # -- durability (write-ahead journal + restart recovery) ----------------

    def _durable_put(
        self,
        op: str,
        norm: str,
        data: bytes,
        *,
        record: FileRecord | None = None,
    ) -> None:
        """The journalled mutation protocol: intent (durable) → atomic
        apply → commit (durable). Only after this returns may the
        caller acknowledge anything. With no journal configured this is
        a plain backend put (legacy fire-and-forget).

        A clean apply failure aborts the intent (recovery would roll it
        back anyway; aborting just unpins its segment early). A
        simulated crash is a ``BaseException`` and deliberately skips
        the abort — the intent must stay pending on disk, exactly like
        a real ``kill -9``.
        """
        journal = self.journal
        if journal is None:
            self.backend.put(norm, data)
            return
        seq = journal.begin(
            op, norm, data, epoch=self._view_epoch(), record=record
        )
        try:
            self.backend.put(norm, data)
        except Exception:
            journal.abort(seq)
            raise
        journal.commit(seq)

    def _open_journal(self) -> None:
        """Restart recovery, then open (a fresh incarnation of) the
        journal. Idempotent per daemon; no-op without a journal dir.

        Recovery never appends to the journal, and its mutations
        (adopt, unlink, tmp GC) are idempotent — so a crash at any
        ``recovery.*`` point simply reruns recovery on the next start.
        Only the :class:`Journal` constructor afterwards changes the
        journal itself, and it does so checkpoint-first.
        """
        if self._journal_dir is None or self.journal is not None:
            return
        t0 = time.monotonic()
        stats = self.jstats
        log = scan_journal(self._journal_dir)
        stats.recovery_torn_records += log.torn_records
        with self.tracer.root(
            "durability.recover", rank=self.rank,
            segments=log.segments,
        ) as span:
            crash_point("recovery.scanned", self.rank)
            live: dict[str, dict] = {}
            # Adoption first: an uncommitted intent whose on-disk bytes
            # digest-match it finished its apply — the rename + dir
            # fsync is the durable commit point and only the lazily
            # synced commit record was lost. Applies replace whole
            # files atomically, so disk-matching an intent proves that
            # intent's apply was the last to complete for its path; a
            # committed (older) version of the same path must then not
            # re-apply itself over the newer acked bytes.
            adopted: set[str] = set()
            for intent in log.uncommitted:
                if intent["path"] in adopted:
                    continue
                entry = live_entry(intent)
                data = self._read_raw_blob(intent["path"])
                if (
                    data is not None
                    and len(data) == entry["size"]
                    and zlib.crc32(data) == entry["crc"]
                ):
                    self._recover_entry(intent["path"], entry, live)
                    adopted.add(intent["path"])
            for path, entry in log.checkpoint_live.items():
                if path not in adopted:
                    self._recover_entry(path, entry, live)
            for intent in log.committed:
                if intent["path"] not in adopted:
                    self._recover_entry(
                        intent["path"], live_entry(intent), live
                    )
            crash_point("recovery.replayed", self.rank)
            for intent in log.uncommitted:
                if intent["path"] in adopted:
                    continue
                self._rollback_intent(intent, live)
                stats.recovery_rolled_back += 1
            stats.recovery_tmp_gc += self._gc_tmp_files()
            crash_point("recovery.done", self.rank)
            span.tag(
                replayed=stats.recovery_replayed,
                reapplied=stats.recovery_reapplied,
                rolled_back=stats.recovery_rolled_back,
                quarantined=stats.recovery_quarantined,
                torn=stats.recovery_torn_records,
            )
        self.journal = Journal(
            self._journal_dir,
            rank=self.rank,
            config=self._journal_config,
            stats=stats,
            injector=self._disk_injector,
            live=live,
        )
        stats.recovery_seconds = time.monotonic() - t0

    def _read_raw_blob(self, norm: str) -> bytes | None:
        """The bytes currently on disk behind ``norm``, bypassing the
        backend index (which died with the previous process)."""
        backend = self.backend
        if isinstance(backend, DiskBackend):
            blob = backend.blob_path(norm)
            try:
                return blob.read_bytes() if blob.is_file() else None
            except OSError:
                return None
        # RAM-family backends: nothing survives a process death
        return None

    def _recover_entry(
        self, path: str, entry: dict, live: dict[str, dict]
    ) -> None:
        """Roll one committed intent forward: verify the on-disk bytes
        against the journalled digest and re-adopt them; re-apply from
        the embedded payload when the bytes are missing or torn; and
        only when neither is possible, quarantine (count it — the
        crash drill asserts this stays zero, because the protocol
        commits strictly after the apply is durable)."""
        data = self._read_raw_blob(path)
        if (
            data is not None
            and len(data) == entry["size"]
            and zlib.crc32(data) == entry["crc"]
        ):
            if isinstance(self.backend, DiskBackend):
                self.backend.adopt(path)
            else:
                self.backend.put(path, data)
            self.jstats.recovery_replayed += 1
        elif "payload" in entry:
            self.backend.put(path, bytes.fromhex(entry["payload"]))
            self.jstats.recovery_reapplied += 1
        else:
            self.backend.discard(path)
            if isinstance(self.backend, DiskBackend):
                self.backend.blob_path(path).unlink(missing_ok=True)
            self.jstats.recovery_quarantined += 1
            return
        wire = entry.get("record")
        if wire is not None:
            self.metadata.insert(record_from_wire(wire))
        live[path] = entry

    def _rollback_intent(self, intent: dict, live: dict[str, dict]) -> None:
        """Undo one uncommitted intent. The client was never
        acknowledged, so deleting whatever the torn apply left behind
        is always correct — *unless* a committed version of the same
        path owns the current bytes, in which case they stay."""
        path = intent["path"]
        kept = live.get(path)
        data = self._read_raw_blob(path)
        if data is None:
            return  # the apply never reached the final name
        if kept is not None and zlib.crc32(data) == kept["crc"]:
            return  # these bytes belong to the committed version
        self.backend.discard(path)
        if isinstance(self.backend, DiskBackend):
            self.backend.blob_path(path).unlink(missing_ok=True)

    def _gc_tmp_files(self) -> int:
        """Remove ``*.tmp`` orphans of crashed atomic applies (the one
        artefact the tmp+rename protocol can leak) from the backend
        root and the journal directory."""
        removed = 0
        dirs = [Path(self._journal_dir)] if self._journal_dir else []
        if isinstance(self.backend, DiskBackend):
            dirs.append(self.backend.root)
        for directory in dirs:
            if not directory.is_dir():
                continue
            for orphan in directory.glob("*.tmp"):
                orphan.unlink(missing_ok=True)
                removed += 1
            if removed:
                fsync_dir(directory)
        return removed

    # -- service loop -------------------------------------------------------

    def start(self) -> None:
        """Start answering peer requests (no-op single-node)."""
        if self.journal is not None and self.journal.closed:
            # a restart after stop(): reopen a fresh journal incarnation
            # over the (already consistent) live state
            self.journal = Journal(
                self._journal_dir,
                rank=self.rank,
                config=self._journal_config,
                stats=self.jstats,
                injector=self._disk_injector,
                live=self.journal.live_state(),
            )
        if self.comm is None or self._service_thread is not None:
            return
        self._service_thread = threading.Thread(
            target=self._serve, name=f"fanstore-daemon-{self.rank}", daemon=True
        )
        self._service_thread.start()

    def stop(self) -> None:
        """Stop the service loop (idempotent). Shutdown gets its own
        bounded budget — ``shutdown_timeout``, not ``request_timeout``
        (a generous request budget must not become a shutdown hang). A
        service thread that misses it is logged and leaked: it is a
        daemon thread, so it cannot outlive the process."""
        if self.journal is not None:
            self.journal.close()
        if self.comm is None or self._service_thread is None:
            return
        self.comm.send(("stop", None), self.rank, TAG_DAEMON)
        thread = self._service_thread
        thread.join(timeout=self.config.shutdown_timeout)
        if thread.is_alive():
            _LOG.warning(
                "rank %d: daemon service thread still running %.1fs after "
                "stop; leaking it (daemon thread — dies with the process)",
                self.rank, self.config.shutdown_timeout,
            )
        self._service_thread = None

    def _serve(self) -> None:
        """The event loop of the pipelined scheduler. The loop itself
        only *admits* (recv → parse → bounded queue, shedding overflow)
        and *dispatches*; with ``pipeline.pipeline_workers > 0`` the
        actual serving — digest verify, backend reads, codec work —
        happens on a worker pool, bounded by ``pipeline.max_inflight``,
        so the loop never blocks on one slow request and admission
        control stays live under load. ``pipeline_workers == 0`` is the
        legacy inline mode: each request served to completion on this
        thread (the blocking baseline of the saturation benchmark)."""
        comm = self.comm
        assert comm is not None
        queue = AdmissionQueue(self.config.max_queue_depth)
        workers = self.config.pipeline.pipeline_workers
        pool: ThreadPoolExecutor | None = None
        slots: threading.BoundedSemaphore | None = None
        stop = threading.Event()
        if workers > 0:
            pool = ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix=f"fanstore-pipe-{self.rank}",
            )
            slots = threading.BoundedSemaphore(
                self.config.pipeline.max_inflight
            )
        try:
            while True:
                if not len(queue):
                    try:
                        msg = comm.recv_with_status(
                            ANY_SOURCE, TAG_DAEMON, timeout=None
                        )
                    except (CommClosedError, CommError):
                        return
                    if self._admit(queue, msg):
                        return
                # Drain whatever else already arrived before serving:
                # admission control can only shed backlog it can see,
                # and a burst must not be served strictly
                # one-recv-at-a-time.
                while True:
                    try:
                        msg = comm.try_recv(ANY_SOURCE, TAG_DAEMON)
                    except (CommClosedError, CommError):
                        return
                    if msg is None:
                        break
                    if self._admit(queue, msg):
                        return
                depth = len(queue)
                self._queue_depth = depth
                if depth >= self._brownout_depth:
                    self._brownout_until = (
                        time.monotonic() + self.config.brownout_hold_s
                    )
                entry = queue.pop()
                if entry is None:
                    continue
                if pool is None:
                    if not self._serve_one(entry):
                        return
                    continue
                # Uncontended fast path: nothing in flight and nothing
                # queued behind this entry means a pool hop buys no
                # overlap — serve on the loop thread and skip the
                # submit/wakeup cost. A lone client pays the same
                # per-request price as the legacy inline loop (the
                # single-client overhead gate in bench_saturation.py
                # holds this to <= 5%); the reads of ``_inflight`` are
                # racy on purpose — a stale nonzero just takes the pool
                # path, a concurrent drain-to-zero just serves inline.
                if self._inflight == 0 and not len(queue):
                    if not self._serve_one(entry):
                        return
                    continue
                # In-flight bound: while the pool is saturated, keep
                # draining + shedding the mailbox instead of blocking —
                # a stalled pool must not take admission control down
                # with it.
                assert slots is not None
                while not slots.acquire(timeout=0.02):
                    if stop.is_set():
                        return
                    while True:
                        try:
                            msg = comm.try_recv(ANY_SOURCE, TAG_DAEMON)
                        except (CommClosedError, CommError):
                            return
                        if msg is None:
                            break
                        if self._admit(queue, msg):
                            return
                if stop.is_set():
                    slots.release()
                    return
                self._m_dispatched.inc()
                self._inflight += 1
                pool.submit(self._serve_async, entry, slots, stop)
        finally:
            if pool is not None:
                pool.shutdown(wait=False)

    def _serve_async(
        self,
        entry: tuple,
        slots: threading.BoundedSemaphore,
        stop: threading.Event,
    ) -> None:
        """One pooled request: serve it, then free its in-flight slot.
        A terminal serve outcome (world teardown) flips ``stop`` so the
        dispatch loop exits at its next slot acquisition."""
        try:
            if not self._serve_one(entry):
                stop.set()
        finally:
            self._inflight -= 1
            slots.release()

    def _admit(self, queue: AdmissionQueue, msg: tuple) -> bool:
        """Parse one envelope into the admission queue, shedding
        overflow with overload replies. Returns True when the service
        loop must exit (stop request, or the world tore down under a
        shed reply).

        A malformed message must not kill the service loop — the daemon
        outlives misbehaving clients (it answers to every peer, not just
        the sender). Bodies decode through
        :func:`repro.fanstore.wire.decode_request` — v2 envelopes and
        legacy positional tuples alike; anything neither is malformed.
        A batch envelope is admitted against the *earliest* of its
        items' deadlines: the whole flush is droppable only once every
        waiter behind it has walked away.
        """
        payload, source, _tag = msg
        try:
            kind, body = payload
        except (TypeError, ValueError):
            self.stats.malformed_requests += 1
            return False
        if kind == "stop":
            return True
        if kind not in ("fetch", "stat", "write_meta", "batch"):
            self.stats.malformed_requests += 1
            return False
        try:
            request = decode_request(body)
        except (WireFormatError, TypeError, ValueError):
            self.stats.malformed_requests += 1
            return False
        deadline_at = request.deadline
        if kind == "batch" and request.batch:
            item_expiries = [
                wire_deadline(item[2])
                for item in request.batch
                if isinstance(item, tuple) and len(item) == 3
            ]
            live = [at for at in item_expiries if at is not None]
            if live and len(live) == len(item_expiries):
                # per-item expiry is enforced inside _serve_batch; the
                # envelope itself is dead only once its *last* waiter is
                deadline_at = max(live)
        entry = (kind, request, source)
        shed = queue.push(entry, deadline_at)
        if shed:
            # shedding is the overload signal: enter brownout
            self._brownout_until = (
                time.monotonic() + self.config.brownout_hold_s
            )
        retry_after = self.config.overload_retry_after_s
        for _, victim, victim_source in shed:
            self.stats.shed_requests += 1
            try:
                self.comm.send(
                    (_OVERLOAD, retry_after), victim_source, victim.reply_tag
                )
            except (CommClosedError, CommError):
                return True
        return False

    def _serve_one(self, entry: tuple) -> bool:
        """Serve one admitted request; False ends the service loop."""
        comm = self.comm
        assert comm is not None
        kind, request, source = entry
        subject = request.subject
        reply_tag = request.reply_tag
        deadline_at = request.deadline
        if deadline_at is not None and time.monotonic() >= deadline_at:
            # the requester has already timed out and walked away:
            # serving — or even refusing — would be work for nobody
            self.stats.deadline_expired_drops += 1
            return True
        # Joining the requester's trace: a malformed context yields
        # NULL_SPAN, never an error — tracing must not change what
        # gets served.
        span = (
            self.tracer.adopt(request.trace_ctx, f"daemon.serve.{kind}",
                              source=source)
            if request.trace_ctx is not None else NULL_SPAN
        )
        try:
            with span:
                if kind == "fetch":
                    self.stats.served_requests += 1
                    span.tag(path=subject)
                    try:
                        data = self._verified_local(subject)
                    except FileNotFoundInStoreError:
                        comm.send((False, subject), source, reply_tag)
                    except DataIntegrityError:
                        # never serve bytes that failed verification
                        # and could not be self-repaired; no reply at
                        # all, so the requester times out and walks
                        # its own failover ladder (replicas, shared
                        # FS)
                        span.tag(unrepairable=True)
                    else:
                        comm.send((True, data), source, reply_tag)
                elif kind == "stat":
                    span.tag(path=subject)
                    try:
                        rec = self.metadata.get(subject)
                    except FileNotFoundInStoreError:
                        comm.send((False, None), source, reply_tag)
                    else:
                        comm.send((True, rec), source, reply_tag)
                elif kind == "batch":
                    self._serve_batch(request, source)
                else:  # write_meta
                    if self._stale_epoch(request.epoch):
                        # a mutation decided under a pre-partition view:
                        # fence it off rather than let a healed minority
                        # clobber majority state
                        self.stats.fenced_rejects += 1
                        span.tag(fenced=True)
                        comm.send(
                            (_FENCED, self._view_epoch()), source, reply_tag
                        )
                    else:
                        self.metadata.insert(subject)
                        comm.send((True, None), source, reply_tag)
        except (CommClosedError, CommError):
            # replying to a torn-down world (or after our own
            # injected death) ends the service loop — a crashed
            # daemon stops serving
            return False
        except (FanStoreError, TypeError, ValueError, AttributeError):
            # a well-framed envelope around a nonsense subject (bad
            # path type, bogus write_meta record) is still malformed
            self.stats.malformed_requests += 1
        return True

    def _serve_batch(self, request: Request, source: int) -> None:
        """Serve one batched flush: every item in order, each with its
        own deadline check and error isolation (one poisoned item fails
        only its own waiter), answered as a single batch reply on the
        envelope's tag."""
        replies = [
            self._serve_batch_item(item) for item in (request.batch or ())
        ]
        self._m_batch_served.inc()
        self.comm.send(
            encode_batch_reply(replies), source, request.reply_tag
        )

    def _serve_batch_item(self, item: Any) -> Reply:
        """One batch item → one item reply; never raises (comm errors
        excepted — those belong to the envelope send)."""
        try:
            kind, subject, expiry = item
        except (TypeError, ValueError):
            self.stats.malformed_requests += 1
            return Reply(Reply.FAILED, None)
        try:
            expiry = wire_deadline(expiry)
            if expiry is not None and time.monotonic() >= expiry:
                self.stats.deadline_expired_drops += 1
                return Reply(Reply.EXPIRED, subject)
            if kind == "fetch":
                self.stats.served_requests += 1
                try:
                    data = self._verified_local(subject)
                except FileNotFoundInStoreError:
                    return Reply(Reply.MISS, subject)
                except DataIntegrityError:
                    # the batched analog of the classic no-reply
                    # silence: only this waiter falls back to the
                    # single-request ladder (replicas, shared FS)
                    return Reply(Reply.FAILED, subject)
                return Reply(Reply.OK, data)
            if kind == "stat":
                try:
                    rec = self.metadata.get(subject)
                except FileNotFoundInStoreError:
                    return Reply(Reply.MISS, None)
                return Reply(Reply.OK, rec)
            # mutating kinds never batch (write_meta needs fencing)
            self.stats.malformed_requests += 1
            return Reply(Reply.FAILED, None)
        except (FanStoreError, TypeError, ValueError, AttributeError):
            self.stats.malformed_requests += 1
            return Reply(Reply.FAILED, None)

    # -- data path ------------------------------------------------------------

    def _next_reply_tag(self) -> int:
        with self._reply_lock:
            return next(self._reply_tags)

    def _backoff(self, attempt: int) -> float:
        """Capped exponential backoff with seeded jitter for retry
        ``attempt`` (1-based)."""
        cfg = self.config
        delay = min(
            cfg.retry_backoff_max,
            cfg.retry_backoff_base * (2 ** (attempt - 1)),
        )
        return delay * (1.0 + cfg.retry_jitter * self._retry_rng.random())

    def _request(
        self,
        kind: str,
        body: Any,
        dest: int,
        *,
        attempts: int | None = None,
        deadline: Deadline | None = None,
    ) -> tuple[bool, Any]:
        """One request/reply exchange with a bounded retry budget.

        Every attempt uses a *fresh* reply tag, so a reply that arrives
        after its attempt already timed out rots harmlessly in the
        mailbox instead of being mistaken for the answer to a later
        request. ``CommClosedError`` (world teardown) and
        ``RankDeadError`` (this rank is the dead one) are not retried —
        no amount of resending survives either.

        With a ``deadline``, every attempt's timeout and backoff sleep
        are capped by the remaining budget (retries no longer *stack*
        full timeouts), and a spent budget raises
        :class:`DeadlineExpiredError` instead of starting another
        attempt. Either way the wire body carries the attempt's own
        absolute expiry, so the server can drop work this side has
        already given up on. An ``(_OVERLOAD, retry_after)`` reply is a
        shed: back off at least ``retry_after`` before the next attempt,
        and raise :class:`ServerOverloadedError` when the budget ends on
        one — overload is the one failure retrying *amplifies*.

        Outcomes feed the per-peer health tracker: reply latencies via
        :meth:`HealthTracker.observe`, timeouts and sheds via
        :meth:`HealthTracker.failure`.
        """
        comm = self.comm
        assert comm is not None
        cfg = self.config
        if attempts is None:
            attempts = 1 + max(0, cfg.max_retries)
        path = body if isinstance(body, str) else None
        # Tracing: each attempt gets its own ``rpc.<kind>`` span (so
        # retries are visible as sibling spans) and the attempt's
        # context rides in the request body for the serving rank to
        # adopt.
        traced = self.tracer.current_context() is not None
        last_exc: CommError | None = None
        overload_wait: float | None = None
        for attempt in range(attempts):
            if attempt:
                self.stats.retries += 1
                pause = self._backoff(attempt)
                if overload_wait is not None:
                    pause = max(pause, overload_wait)
                    overload_wait = None
                if deadline is not None:
                    pause = deadline.cap(pause)
                time.sleep(pause)
            if deadline is not None and deadline.expired():
                self.stats.deadline_aborts += 1
                raise DeadlineExpiredError(
                    f"rank {self.rank}: {kind} request to rank {dest} "
                    f"abandoned after {attempt} attempt(s): deadline "
                    f"expired (last error: {last_exc})",
                    path,
                ) from last_exc
            attempt_timeout = (
                cfg.request_timeout if deadline is None
                else deadline.cap(cfg.request_timeout)
            )
            reply_tag = self._next_reply_tag()
            span = (
                self.tracer.span(f"rpc.{kind}", dest=dest, attempt=attempt)
                if traced else NULL_SPAN
            )
            t0 = time.perf_counter()
            try:
                with span:
                    ctx = span.context()
                    wire_body = Request(
                        subject=body,
                        reply_tag=reply_tag,
                        trace_ctx=None if ctx is None else ctx.as_wire(),
                        deadline=time.monotonic() + attempt_timeout,
                        # fencing token re-read per attempt: a view that
                        # advances mid-ladder fences with the fresh epoch
                        epoch=self._fence_token(),
                    ).encode()
                    comm.send((kind, wire_body), dest, TAG_DAEMON)
                    reply = comm.recv(dest, reply_tag, timeout=attempt_timeout)
            except (CommClosedError, RankDeadError):
                raise
            except CommError as exc:
                last_exc = exc
                self.health.failure(dest)
                continue
            if (
                isinstance(reply, tuple) and len(reply) == 2
                and reply[0] == _FENCED
            ):
                # a stale fencing token is not retryable: the view this
                # side acted under is history, and only a membership
                # catch-up (gossip merge, rejoin) can change that
                self.stats.stale_epoch_aborts += 1
                raise StaleEpochError(
                    f"rank {self.rank}: {kind} request to rank {dest} "
                    f"fenced off — our view epoch {self._view_epoch()} is "
                    f"older than the server's {reply[1]}",
                    path,
                    server_epoch=(
                        reply[1] if isinstance(reply[1], int) else 0
                    ),
                )
            if (
                isinstance(reply, tuple) and len(reply) == 2
                and reply[0] == _OVERLOAD
            ):
                self.stats.overload_backoffs += 1
                self.health.failure(dest)
                last_exc = None
                overload_wait = (
                    float(reply[1])
                    if isinstance(reply[1], (int, float))
                    else cfg.overload_retry_after_s
                )
                continue
            self.health.observe(dest, time.perf_counter() - t0)
            return reply
        if overload_wait is not None:
            raise ServerOverloadedError(
                f"rank {self.rank}: {kind} request to rank {dest} shed by "
                f"admission control on every one of {attempts} attempt(s)",
                path,
                retry_after_s=overload_wait,
            )
        raise RetryExhaustedError(
            f"rank {self.rank}: {kind} request to rank {dest} "
            f"(tag {TAG_DAEMON:#x}, last reply tag {reply_tag:#x}) failed "
            f"after {attempts} attempt(s): {last_exc}",
            path=path,
        ) from last_exc

    # -- per-destination request batching ------------------------------------

    def _batcher(self, dest: int) -> _DestBatcher:
        with self._batch_lock:
            batcher = self._batchers.get(dest)
            if batcher is None:
                batcher = self._batchers[dest] = _DestBatcher()
            return batcher

    def _batched_request(
        self,
        kind: str,
        subject: Any,
        dest: int,
        *,
        deadline: Deadline | None = None,
    ) -> tuple[bool, Any]:
        """A small request that may ride a batched flush.

        The first caller per destination takes the *baton* and runs a
        classic :meth:`_request` (an idle destination pays zero batching
        overhead — no linger, no envelope change); callers arriving
        while the baton is out park as tickets. When the baton frees, a
        parked ticket is elected flush leader: it lingers briefly, packs
        up to ``batch_max`` parked tickets into one ``batch`` envelope,
        and fans the item replies back to their waiters. Any batch-level
        failure degrades every waiter to the classic ladder — batching
        is an optimization, never a new failure mode. Hedged fetches and
        mutating requests must not come through here.
        """
        comm = self.comm
        cfg = self.config.pipeline
        if comm is None or cfg.batch_max <= 1:
            return self._request(kind, subject, dest, deadline=deadline)
        batcher = self._batcher(dest)
        ticket: _BatchTicket | None = None
        with batcher.lock:
            if not batcher.busy:
                batcher.busy = True
            else:
                ticket = _BatchTicket(kind, subject, deadline)
                batcher.pending.append(ticket)
        if ticket is None:
            try:
                return self._request(kind, subject, dest, deadline=deadline)
            finally:
                self._pass_baton(batcher)
        while ticket.outcome is None:
            timeout = (
                None if ticket.deadline is None
                else max(0.0, ticket.deadline.remaining())
            )
            if not ticket.event.wait(timeout):
                with batcher.lock:
                    aborted = ticket.outcome is None
                    if aborted:
                        ticket.cancelled = True
                        try:
                            batcher.pending.remove(ticket)
                        except ValueError:
                            pass
                if aborted:
                    self.stats.deadline_aborts += 1
                    raise DeadlineExpiredError(
                        f"rank {self.rank}: batched {kind} request to rank "
                        f"{dest} abandoned while parked: deadline expired",
                        subject if isinstance(subject, str) else None,
                    )
        action, value = ticket.outcome
        if action == "lead":
            return self._lead_flush(batcher, dest, ticket)
        if action == "reply":
            return self._consume_item_reply(
                kind, subject, dest, deadline, value
            )
        # "fallback": the flush died at the envelope level; retry classic
        self._m_batch_fallbacks.inc()
        return self._request(kind, subject, dest, deadline=deadline)

    def _pass_baton(self, batcher: _DestBatcher) -> None:
        """Hand the per-destination baton to the oldest live parked
        ticket (electing it flush leader), or retire it."""
        with batcher.lock:
            while batcher.pending:
                ticket = batcher.pending.popleft()
                if ticket.cancelled:
                    continue
                ticket.outcome = ("lead", None)
                ticket.event.set()
                return
            batcher.busy = False

    def _lead_flush(
        self, batcher: _DestBatcher, dest: int, own: _BatchTicket
    ) -> tuple[bool, Any]:
        """Run one batched flush as its elected leader: linger, pack the
        parked tickets, exchange, fan the item replies out. Every
        grouped ticket is answered even when the exchange raises — a
        torn-down world must not strand parked waiters.

        The baton is handed on the moment the group is sealed — before
        the network round trip — so the next elected leader packs and
        sends while this envelope is still on the wire. Serializing
        flushes behind one baton would cap throughput at one round trip
        per destination at a time, below the blocking baseline's free
        concurrency; pipelined flushes keep ``batch_max`` fewer round
        trips *and* overlapping exchanges."""
        cfg = self.config.pipeline
        baton_passed = False
        try:
            if cfg.batch_linger > 0:
                with batcher.lock:
                    waiting = len(batcher.pending)
                # linger only while the batch could still fill: a full
                # backlog packs immediately, no latency added
                if waiting < cfg.batch_max - 1:
                    pause = cfg.batch_linger
                    if own.deadline is not None:
                        pause = own.deadline.cap(pause)
                    if pause > 0:
                        time.sleep(pause)
            group = [own]
            with batcher.lock:
                while batcher.pending and len(group) < cfg.batch_max:
                    ticket = batcher.pending.popleft()
                    if ticket.cancelled:
                        continue
                    group.append(ticket)
            self._pass_baton(batcher)
            baton_passed = True
            if len(group) == 1:
                return self._request(
                    own.kind, own.subject, dest, deadline=own.deadline
                )
            replies: list[Reply] | None = None
            try:
                replies = self._exchange_batch(dest, group)
            finally:
                for i, ticket in enumerate(group):
                    if ticket is own:
                        continue
                    ticket.outcome = (
                        ("fallback", None) if replies is None
                        else ("reply", replies[i])
                    )
                    ticket.event.set()
            if replies is None:
                self._m_batch_fallbacks.inc()
                return self._request(
                    own.kind, own.subject, dest, deadline=own.deadline
                )
            return self._consume_item_reply(
                own.kind, own.subject, dest, own.deadline, replies[0]
            )
        finally:
            if not baton_passed:
                self._pass_baton(batcher)

    def _exchange_batch(
        self, dest: int, group: list[_BatchTicket]
    ) -> list[Reply] | None:
        """One batched request/reply exchange; ``None`` means the whole
        flush must degrade to classic per-item requests (comm timeout,
        envelope-level shed or fence, malformed reply). World teardown
        (:class:`CommClosedError`) and our own injected death
        (:class:`RankDeadError`) still raise — no retry survives those.
        """
        comm = self.comm
        assert comm is not None
        cfg = self.config
        now = time.monotonic()
        items = []
        latest = now
        for ticket in group:
            expiry = (
                ticket.deadline.at if ticket.deadline is not None
                else now + cfg.request_timeout
            )
            latest = max(latest, expiry)
            items.append((ticket.kind, ticket.subject, expiry))
        budget = max(1e-3, min(latest - now, cfg.request_timeout))
        reply_tag = self._next_reply_tag()
        request = Request(
            subject=None,
            reply_tag=reply_tag,
            trace_ctx=None,
            deadline=now + budget,
            epoch=self._fence_token(),
            batch=tuple(items),
        )
        t0 = time.perf_counter()
        try:
            comm.send(("batch", request.encode()), dest, TAG_DAEMON)
            raw = comm.recv(dest, reply_tag, timeout=budget)
        except (CommClosedError, RankDeadError):
            raise
        except CommError:
            self.health.failure(dest)
            return None
        try:
            replies = decode_batch_reply(raw)
        except WireFormatError:
            replies = None
        if replies is None or len(replies) != len(group):
            # an envelope-level shed/fence or a malformed reply: the
            # classic per-item fallback handles overload and fencing
            # with their full semantics (backoff, typed errors)
            self.health.failure(dest)
            return None
        self.health.observe(dest, time.perf_counter() - t0)
        self._m_batch_flushes.inc()
        self._m_batch_items.inc(len(group))
        return replies

    def _consume_item_reply(
        self,
        kind: str,
        subject: Any,
        dest: int,
        deadline: Deadline | None,
        reply: Reply,
    ) -> tuple[bool, Any]:
        """Map one batched item reply onto classic ``_request`` return
        semantics; a FAILED item (integrity failure, malformed subject)
        retries alone through the classic ladder."""
        if reply.status == Reply.OK:
            return True, reply.value
        if reply.status == Reply.MISS:
            return False, reply.value
        if reply.status == Reply.EXPIRED:
            self.stats.deadline_aborts += 1
            raise DeadlineExpiredError(
                f"rank {self.rank}: batched {kind} of {subject!r} to rank "
                f"{dest} dropped by the server: item deadline expired",
                subject if isinstance(subject, str) else None,
            )
        self._m_batch_fallbacks.inc()
        return self._request(kind, subject, dest, deadline=deadline)

    def _lookup(self, norm: str) -> FileRecord:
        """Metadata lookup with the runtime-output fallback: paths
        written after the load-time allgather live only on their writer
        and the hash owner, so a local miss asks the owner and caches
        the record."""
        try:
            return self.metadata.get(norm)
        except FileNotFoundInStoreError:
            record = self.stat_any(norm)
            if record is None:
                raise
            self.metadata.insert(record)
            return record

    def _blob_ok(self, record: FileRecord, data: bytes) -> bool:
        """Digest check of compressed bytes against the record; passes
        when verification is off or no digest was recorded.

        Verification time accumulates into ``_last_verify_s`` — an
        observed open resets it before fetching, so the verify phase
        histogram captures every digest check the fetch ladder did for
        that read (a failover verifies at each tier).

        Brownout: while the service loop is shedding (see
        :meth:`_admit`), *re*-verification of a payload this rank
        already digest-checked once is skipped — the marginal
        protection of the Nth identical check is what overload can
        afford to lose. First-time checks always run."""
        if not self.config.verify_reads or not record.stat.has_digest:
            return True
        if (
            record.path in self._verified_paths
            and time.monotonic() < self._brownout_until
        ):
            self.stats.brownout_skipped_verifies += 1
            return True
        t0 = time.perf_counter()
        ok = blob_crc32(data) == record.stat.crc32
        self._last_verify_s += time.perf_counter() - t0
        if ok:
            self._verified_paths.add(record.path)
        else:
            self._verified_paths.discard(record.path)
        return ok

    def _verified_local(self, norm: str, record: FileRecord | None = None) -> bytes:
        """Local backend bytes, digest-checked; a corrupt copy is
        quarantined and self-repaired through the failover ladder.
        Raises :class:`DataIntegrityError` when unrepairable and
        :class:`FileNotFoundInStoreError` when simply absent."""
        if record is None:
            try:
                record = self.metadata.get(norm)
            except FileNotFoundInStoreError:
                return self.backend.get(norm)
        try:
            data = self.backend.get(norm)
        except DataIntegrityError:
            # the backend itself flagged the bytes (torn partition file)
            return self.repair(norm, record)
        if self._blob_ok(record, data):
            return data
        return self.repair(norm, record)

    def fetch_compressed(
        self, path: str, *, deadline: Deadline | None = None
    ) -> bytes:
        """Compressed bytes for ``path`` — locally, from the home rank
        (hedged at a replica when enabled), from a surviving replica, or
        (degraded mode) re-read off the shared FS (§IV-C2, Figure 2;
        failover ladder home → replicas → partition file). Every tier's
        bytes are digest-verified before they are accepted; a mismatch
        anywhere descends the ladder.

        One :class:`~repro.comm.deadline.Deadline` (the caller's, or a
        fresh one from ``config.request_deadline``) budgets the whole
        ladder: tiers spend from it rather than stacking timeouts, and
        a spent budget surfaces as :class:`DeadlineExpiredError`.

        Concurrent fetches of the same key are *single-flighted*: one
        caller runs the ladder (hedged or not), everyone else shares its
        outcome — a miss storm costs one upstream fetch, and errors are
        shared the same way. A follower whose own deadline lapses while
        the leader is still fetching aborts alone; the flight runs on.
        ``pipeline.coalesce = False`` opts out: every caller runs its
        own ladder with fully independent errors.
        """
        norm = normalize(path)
        if not self.config.pipeline.coalesce:
            return self._fetch_ladder(norm, deadline)
        try:
            value, led = self._fetch_flight.run(
                norm,
                lambda: self._fetch_ladder(norm, deadline),
                timeout=None if deadline is None else deadline.remaining(),
            )
        except CommError:
            raise
        except FanStoreError:
            raise
        except TimeoutError:
            # the bare single-flight wait timeout (leader errors are
            # CommError/FanStoreError and re-raise above): this
            # follower's budget died waiting on someone else's flight
            self.stats.deadline_aborts += 1
            raise DeadlineExpiredError(
                f"rank {self.rank}: fetch of {norm} abandoned waiting on "
                "a coalesced in-flight fetch: deadline expired",
                norm,
            )
        if not led:
            self._m_coalesced.inc()
        return value

    def _fetch_ladder(
        self, norm: str, deadline: Deadline | None = None
    ) -> bytes:
        """The actual failover ladder behind :meth:`fetch_compressed`
        (``norm`` pre-normalized; one execution per single-flight)."""
        record = self._lookup(norm)
        if (
            record.home_rank == self.rank
            or self.comm is None
            or norm in self.backend  # replicated via an extra partition
        ):
            self.stats.local_opens += 1
            return self._verified_local(norm, record)
        if deadline is None and self.config.request_deadline is not None:
            deadline = Deadline.after(self.config.request_deadline)
        home = record.home_rank
        if self._route_dead(home):
            # known-dead home: skip the retry/backoff ladder entirely
            # and jump straight to the failover tiers (still counted as
            # a failover — the fetch did leave the home rank)
            self.stats.dead_route_skips += 1
            self.stats.failovers += 1
            return self._failover_fetch(
                norm, record, deadline,
                f"rank {self.rank}: fetch of {norm} skipped dead home "
                f"rank {home} (tag {TAG_DAEMON:#x}) and no replica or "
                "shared-FS copy answered",
            )
        if not self.health.allow(home):
            # the breaker saw a gray failure the membership layer has
            # not (yet): route around the slow home without spending a
            # single timeout on it
            self.stats.breaker_skips += 1
            self.stats.failovers += 1
            return self._failover_fetch(
                norm, record, deadline,
                f"rank {self.rank}: fetch of {norm} skipped home rank "
                f"{home} (circuit breaker open) and no replica or "
                "shared-FS copy answered",
            )
        try:
            ok, data = self._home_fetch(norm, record, deadline)
        except (RetryExhaustedError, ServerOverloadedError) as home_failure:
            if isinstance(home_failure, RetryExhaustedError):
                # overload is pressure, not death: don't poison routing
                self._note_dead_route(home)
            self.stats.failovers += 1
            data = self._fetch_from_replicas(norm, record, deadline=deadline)
            if data is None:
                data = self._degraded_read(norm, record)
            if data is None:
                raise home_failure
            return data
        if not ok:
            # authoritative not-found from a live home rank: no failover
            raise FileNotFoundInStoreError(norm)
        self.stats.remote_fetches += 1
        self.stats.remote_bytes += len(data)
        if self._blob_ok(record, data):
            return data
        # the home rank served corrupt bytes (and could not self-heal):
        # same quarantine + ladder as a corrupt local copy
        return self.repair(norm, record)

    def _failover_fetch(
        self,
        norm: str,
        record: FileRecord,
        deadline: Deadline | None,
        exhausted_message: str,
    ) -> bytes:
        """Replica tier then shared-FS floor, when the home rank was
        skipped outright (dead route or open breaker)."""
        data = self._fetch_from_replicas(norm, record, deadline=deadline)
        if data is None:
            data = self._degraded_read(norm, record)
        if data is None:
            raise RetryExhaustedError(exhausted_message, path=norm)
        return data

    def _home_fetch(
        self, norm: str, record: FileRecord, deadline: Deadline | None
    ) -> tuple[bool, Any]:
        """The home-rank tier: a plain retried request (batched when the
        destination is busy), or — with ``hedge_reads`` on and a replica
        available — a hedged one (never batched: a hedge is a latency
        bet, and parking it behind a flush would forfeit it)."""
        if not self.config.hedge_reads:
            return self._batched_request(
                "fetch", norm, record.home_rank, deadline=deadline
            )
        replicas = self._replica_order(norm, record)
        if not replicas:
            return self._batched_request(
                "fetch", norm, record.home_rank, deadline=deadline
            )
        return self._hedged_fetch(norm, record, replicas[0], deadline)

    def _hedge_delay(self, dest: int) -> float:
        """How long to leave the home rank alone before hedging: the
        configured quantile of its recent reply latencies, or the fixed
        ``hedge_after_s`` until samples exist."""
        cfg = self.config
        delay = self.health.quantile(
            dest, cfg.hedge_quantile, cfg.hedge_after_s
        )
        # floor well above zero so a burst of fast replies cannot turn
        # hedging into send-everything-twice
        return min(max(delay, 1e-3), cfg.request_timeout)

    def _hedged_fetch(
        self,
        norm: str,
        record: FileRecord,
        hedge_dest: int,
        deadline: Deadline | None,
    ) -> tuple[bool, Any]:
        """One fetch, two possible servers: the home rank first; if it
        stays silent past the hedge delay, the same request (same reply
        tag — whichever reply lands first is taken) goes to the best
        replica. The winner must pass digest verification or the loser
        gets its chance; the loser's late reply rots harmlessly on the
        never-reused tag. Raises :class:`RetryExhaustedError` when
        neither leg answers in time (the caller descends the ladder).
        """
        comm = self.comm
        assert comm is not None
        cfg = self.config
        home = record.home_rank
        if deadline is not None and deadline.expired():
            self.stats.deadline_aborts += 1
            raise DeadlineExpiredError(
                f"rank {self.rank}: hedged fetch of {norm} abandoned "
                "before send: deadline expired",
                norm,
            )
        budget = (
            cfg.request_timeout if deadline is None
            else deadline.cap(cfg.request_timeout)
        )
        reply_tag = self._next_reply_tag()
        traced = self.tracer.current_context() is not None
        span = (
            self.tracer.span("rpc.fetch", dest=home, hedge=hedge_dest)
            if traced else NULL_SPAN
        )
        with span:
            ctx = span.context()
            wire_body = Request(
                subject=norm,
                reply_tag=reply_tag,
                trace_ctx=None if ctx is None else ctx.as_wire(),
                deadline=time.monotonic() + budget,
                epoch=self._fence_token(),
            ).encode()
            t0 = time.perf_counter()
            comm.send(("fetch", wire_body), home, TAG_DAEMON)
            try:
                reply = comm.recv(
                    home, reply_tag,
                    timeout=min(self._hedge_delay(home), budget),
                )
            except CommError:
                reply = None
            racing: set[int] = set()
            if reply is not None:
                try:
                    return self._hedge_accept(
                        reply, home, home, record, t0, span
                    )
                except DataIntegrityError:
                    pass  # home's leg burned (corrupt/shed): hedge it
            else:
                # home missed its hedge delay: that is a slow strike
                # even if it eventually answers
                self.health.note_slow(home)
                racing.add(home)
            # the replica gets the same request on the same reply tag —
            # whichever leg lands first is the one that counts
            self.stats.hedged_reads += 1
            span.tag(hedged=True)
            comm.send(("fetch", wire_body), hedge_dest, TAG_DAEMON)
            racing.add(hedge_dest)
            while racing:
                remaining = budget - (time.perf_counter() - t0)
                if deadline is not None:
                    remaining = deadline.cap(remaining)
                if remaining <= 0:
                    break
                try:
                    reply, source, _tag = comm.recv_with_status(
                        ANY_SOURCE, reply_tag, timeout=remaining
                    )
                except CommError:
                    break
                if source not in racing:
                    continue  # a duplicate delivery of a counted leg
                racing.discard(source)
                if source == hedge_dest:
                    self.stats.hedge_wins += 1
                else:
                    self.stats.hedge_losses += 1
                try:
                    return self._hedge_accept(
                        reply, source, home, record, t0, span
                    )
                except DataIntegrityError:
                    continue  # corrupt leg: let the other one race on
        for leg in racing:
            self.health.failure(leg)
        raise RetryExhaustedError(
            f"rank {self.rank}: hedged fetch of {norm} from home rank "
            f"{home} (hedge rank {hedge_dest}, tag {TAG_DAEMON:#x}, reply "
            f"tag {reply_tag:#x}) got no verified reply in time",
            path=norm,
        )

    def _hedge_accept(
        self,
        reply: Any,
        source: int,
        home: int,
        record: FileRecord,
        t0: float,
        span: Any,
    ) -> tuple[bool, Any]:
        """Validate one hedged leg's reply; DataIntegrityError means
        "keep racing", anything returned is final."""
        if (
            isinstance(reply, tuple) and len(reply) == 2
            and reply[0] == _OVERLOAD
        ):
            self.stats.overload_backoffs += 1
            self.health.failure(source)
            raise DataIntegrityError(  # caller treats as a dead leg
                record.path, "hedged leg shed by admission control"
            )
        ok, data = reply
        if not ok:
            # authoritative not-found travels up only from the home
            # rank; a replica without the record is just a losing leg
            if source == home:
                return False, data
            raise DataIntegrityError(record.path, "replica missed")
        if not self._blob_ok(record, data):
            raise DataIntegrityError(record.path, "hedged leg corrupt")
        self.health.observe(source, time.perf_counter() - t0)
        span.tag(winner=source)
        return True, data

    def repair(self, path: str, record: FileRecord | None = None) -> bytes:
        """Quarantine a corrupt copy of ``path`` and re-fetch verified
        bytes through the failover ladder: home rank (when remote) →
        announced replicas → shared-FS partition re-read. On success the
        good bytes replace the corrupt copy in the backend and any
        cached plaintext is discarded; on failure the corruption is
        unrepairable and a typed :class:`DataIntegrityError` naming the
        path is raised. Counts ``corruption_detected`` /
        ``corruption_repaired``."""
        norm = normalize(path)
        # Re-resolve the record even when the caller supplied one: after
        # a membership repair the authoritative home may have *moved*,
        # and healing against the stale owner would race the
        # re-replication engine (the caller's copy is kept only for
        # paths that have since left the table).
        try:
            record = self._lookup(norm)
        except FileNotFoundInStoreError:
            if record is None:
                raise
        self.stats.corruption_detected += 1
        self.cache.discard(norm)
        with self.tracer.span("daemon.repair", path=norm) as span:
            data: bytes | None = None
            if (
                self.comm is not None
                and record.home_rank != self.rank
                and not self._route_dead(record.home_rank)
            ):
                try:
                    ok, candidate = self._request(
                        "fetch", norm, record.home_rank
                    )
                except RetryExhaustedError:
                    ok, candidate = False, None
                    self._note_dead_route(record.home_rank)
                except (ServerOverloadedError, RankDeadError):
                    ok, candidate = False, None
                if ok and self._blob_ok(record, candidate):
                    data = candidate
            if data is None and self.comm is not None:
                data = self._fetch_from_replicas(norm, record)
            if data is None:
                data = self._degraded_read(norm, record)
            if data is None:
                span.tag(repaired=False)
                raise DataIntegrityError(
                    norm,
                    "compressed payload failed digest verification and no "
                    "replica or shared-FS copy could repair it",
                )
            span.tag(repaired=True)
            self.stats.corruption_repaired += 1
            self._durable_put("repair", norm, data)
            return data

    def _replica_order(self, norm: str, record: FileRecord) -> list[int]:
        """Failover order over the announced replicas: healthy
        view-ALIVE ranks first (ascending), then SUSPECT ranks, then
        open-breaker ranks (slow is still better than nothing — replicas
        are the fallback tier, so they are deprioritized, not skipped);
        convicted-DEAD and negative-cached ranks are skipped outright."""
        candidates = [
            r for r in self.metadata.replica_ranks(norm)
            if r not in (self.rank, record.home_rank)
            and not self._route_dead(r)
        ]
        view = self.current_view()
        return sorted(
            candidates,
            key=lambda r: (
                self.health.state(r) is BreakerState.OPEN,
                view is not None and view.state(r) == RankState.SUSPECT,
                r,
            ),
        )

    def _fetch_from_replicas(
        self,
        norm: str,
        record: FileRecord,
        *,
        deadline: Deadline | None = None,
    ) -> bytes | None:
        """Second tier of the ladder: ranks that announced a ring-copied
        (or re-replicated) copy of this path. A replica serving corrupt
        bytes is skipped the same way an unreachable or overloaded one
        is; each attempt spends from the shared ladder deadline."""
        for replica in self._replica_order(norm, record):
            if deadline is not None and deadline.expired():
                # out of budget: the caller's floor (shared FS) is
                # local-only, so let it decide — don't raise here
                return None
            # one span per replica attempt: a failed tier shows up as an
            # errored sibling, not a silent gap in the trace
            span = self.tracer.span("fetch.replica", rank=replica)
            try:
                with span:
                    ok, data = self._request(
                        "fetch", norm, replica,
                        attempts=max(1, self.config.failover_attempts),
                        deadline=deadline,
                    )
            except (RetryExhaustedError, ServerOverloadedError):
                continue
            except DeadlineExpiredError:
                return None
            if ok and self._blob_ok(record, data):
                self.stats.remote_fetches += 1
                self.stats.remote_bytes += len(data)
                return data
        return None

    def _degraded_read(self, norm: str, record: FileRecord) -> bytes | None:
        """Floor of the ladder: the prepared partition files never left
        the shared FS, so when home and replicas are all gone the
        payload can be re-read at its recorded offset — slow (the exact
        contention §IV-C1 staged data to avoid) but correct. The copy is
        digest-checked (a corrupt partition file must not be promoted)
        and then promoted into the local backend so one outage costs one
        shared-FS round trip, not one per epoch."""
        if self._prepared is None or record.data_offset < 0:
            return None  # runtime output: bytes exist only on its writer
        with self.tracer.span("fetch.degraded", path=norm):
            paths = self._prepared.partition_paths()
            if record.partition_id < len(paths):
                part = paths[record.partition_id]
            elif record.is_broadcast:
                part = self._prepared.broadcast_path()
            else:
                return None
            if part is None or not part.exists():
                return None
            with open(part, "rb") as fh:
                fh.seek(record.data_offset)
                data = fh.read(record.compressed_size)
            if len(data) != record.compressed_size:
                return None
            if not self._blob_ok(record, data):
                return None
            self.stats.degraded_reads += 1
            self._durable_put("promote", norm, data)
            return data

    def _decompress(
        self, record: FileRecord, data: bytes, *, observed: bool = False
    ) -> bytes:
        """Decompress one payload. ``observed`` additionally times the
        decode and feeds the per-codec ``codec.<name>.*`` metrics (the
        online counterpart of the lzbench profiles — enough to rebuild a
        ratio/cost profile from production traffic; see
        :func:`repro.selection.profiling.profile_from_metrics`)."""
        compressor = self.registry.get(record.compressor_id)
        if observed:
            t0 = time.perf_counter()
            plain = compressor.decompress(data)
            dt = time.perf_counter() - t0
            name = compressor.name
            self.metrics.histogram(f"codec.{name}.decode_seconds").observe(dt)
            self.metrics.counter(f"codec.{name}.decode_bytes").inc(len(plain))
            self.metrics.counter(
                f"codec.{name}.decode_compressed_bytes"
            ).inc(len(data))
        else:
            plain = compressor.decompress(data)
        self.stats.decompressions += 1
        self.stats.decompressed_bytes += len(plain)
        if len(plain) != record.stat.st_size:
            raise FanStoreError(
                f"{record.path}: decompressed to {len(plain)} bytes, "
                f"stat says {record.stat.st_size}"
            )
        return plain

    def open_file(self, path: str) -> bytes:
        """Figure 2's open(): cache hit or fetch+decompress+insert.
        Pins the cache entry; pair with :meth:`close_file`.

        The miss pipeline runs under the cache's single-flight table
        (:meth:`DecompressedCache.get_or_compute`), so a miss storm on
        one file decompresses it exactly once — concurrent openers share
        the leader's installed entry, each taking its own pin.

        Misses take the *observed* branch — per-phase timing plus a
        possible trace root — on every ``metrics_every``-th miss, when
        trace sampling is enabled, or when this thread is already inside
        a trace (so one sampled read never loses its child spans to the
        fast path). Everything else runs the bare pipeline: a hot local
        read is ~20 µs and always-on timing would dominate it."""
        norm = normalize(path)
        return self.cache.get_or_compute(
            norm, lambda: self._miss_bytes(norm)
        )

    def _miss_bytes(self, norm: str) -> bytes:
        """The cache-miss factory: fetch + decompress, *not* inserted —
        :meth:`DecompressedCache.get_or_compute` installs and pins the
        result for every waiter of the flight."""
        self._obs_tick = tick = self._obs_tick + 1
        every = self.config.metrics_every
        if (
            (every and tick % every == 0)
            or self._trace_opens
            or self.tracer.n_active
        ):
            return self._observed_miss_bytes(norm)
        record = self._lookup(norm)
        compressed = self.fetch_compressed(norm)
        return self._decompress(record, compressed)

    def _observed_miss_bytes(self, norm: str) -> bytes:
        """The sampled/traced miss path: same pipeline as
        :meth:`_miss_bytes`, wrapped in a ``client.read`` span (started
        or continued per :meth:`Tracer.maybe_root`) with per-phase
        latencies recorded into the ``daemon.phase.*`` histograms. The
        fetch phase includes any remote hops; verify is broken out
        separately via ``_last_verify_s`` (see :meth:`_blob_ok`)."""
        with self.tracer.maybe_root("client.read", path=norm):
            t0 = time.perf_counter()
            record = self._lookup(norm)
            t1 = time.perf_counter()
            self._last_verify_s = 0.0
            compressed = self.fetch_compressed(norm)
            t2 = time.perf_counter()
            plain = self._decompress(record, compressed, observed=True)
            t3 = time.perf_counter()
            self._h_meta.observe(t1 - t0)
            self._h_fetch.observe(t2 - t1)
            self._h_verify.observe(self._last_verify_s)
            self._h_decompress.observe(t3 - t2)
            self._h_open.observe(time.perf_counter() - t0)
            return plain

    def close_file(self, path: str) -> None:
        """Figure 4's close(): unpin (and free at refcount zero)."""
        self.cache.close(normalize(path))

    # -- write path ------------------------------------------------------------

    def _hash_owner(self, path: str) -> int:
        """Deterministic metadata owner for runtime-written paths (crc32
        rather than ``hash()``, which is salted per process)."""
        return zlib.crc32(path.encode("utf-8")) % self.size

    def _live_owner(self, path: str) -> int:
        """Hash owner, diverted around corpses: when the slot owner is
        DEAD in the current view, its ring successor among non-dead
        ranks takes over the metadata duty. Writer and reader divert
        identically (same view ⇒ same successor), so forwarded records
        stay discoverable across a death."""
        owner = self._hash_owner(path)
        view = self.current_view()
        if view is None or view.state(owner) != RankState.DEAD:
            return owner
        successor = ring_successor(owner, set(view.non_dead_ranks()), self.size)
        return successor if successor is not None else owner

    def store_output(self, path: str, data: bytes, record: FileRecord) -> None:
        """§V-D site 4: dump a closed output file to the backend and
        forward its metadata to the owning rank. The forward is
        acknowledged so that once ``close()`` returns, the metadata is
        globally discoverable — otherwise a peer racing a barrier could
        stat the path before the owner's daemon processed the insert."""
        norm = normalize(path)
        t0 = time.perf_counter()
        self._durable_put("write", norm, data, record=record)
        self.metadata.insert(record)
        self.stats.writes += 1
        self.stats.write_bytes += len(data)
        if self.comm is not None:
            owner = self._live_owner(norm)
            if owner != self.rank:
                # retried like any request/reply site; RetryExhaustedError
                # propagates — the caller must know the path is not yet
                # globally discoverable (bytes are safe on this rank).
                self._request("write_meta", record, owner)
        self._h_write.observe(time.perf_counter() - t0)

    def stat_any(self, path: str) -> FileRecord | None:
        """Metadata lookup that falls back to the hash owner for paths
        written after the load-time allgather."""
        norm = normalize(path)
        try:
            return self.metadata.get(norm)
        except FileNotFoundInStoreError:
            pass
        if self.comm is None:
            return None
        owner = self._live_owner(norm)
        if owner == self.rank:
            return None
        ok, rec = self._batched_request("stat", norm, owner)
        return rec if ok else None
