"""A byte-oriented LZ77 codec in the LZ4 family ("fastlz").

This is the suite's stand-in for the fast-decompression compressors the
paper converges on (lzsse8, lz4fast, lz4hc, lzf): greedy hash-based
match finding, token format modeled on the LZ4 block format, and a
*level* knob trading compression effort (hash-chain search depth) for
ratio — level 1 behaves like lz4fast (single probe), level 9 like lz4hc
(deep chain search).

Token format (LZ4-style):

- token byte: high nibble = literal count (15 ⇒ extended with
  255-continuation bytes), low nibble = match length − 4 (15 ⇒ extended)
- literal bytes
- 2-byte little-endian match offset (1..65535), omitted for the final
  literals-only sequence

Payload is prefixed with ``uvarint(original_len)``.
"""

from __future__ import annotations

from repro.compressors.base import Codec, read_uvarint, write_uvarint
from repro.errors import CompressionError

_MIN_MATCH = 4
_MAX_OFFSET = 0xFFFF
_HASH_BITS = 14
_HASH_SIZE = 1 << _HASH_BITS


def _hash4(data: bytes, i: int) -> int:
    """Multiplicative hash of the 4 bytes at ``i`` (Knuth constant)."""
    v = data[i] | (data[i + 1] << 8) | (data[i + 2] << 16) | (data[i + 3] << 24)
    return ((v * 2654435761) >> (32 - _HASH_BITS)) & (_HASH_SIZE - 1)


def _write_length(out: bytearray, extra: int) -> None:
    """Emit LZ4-style 255-continuation extension bytes."""
    while extra >= 255:
        out.append(255)
        extra -= 255
    out.append(extra)


class Lz77Codec(Codec):
    """LZ4-block-format LZ77 with level-controlled match search."""

    def __init__(self, level: int = 3) -> None:
        if not 1 <= level <= 12:
            raise ValueError(f"level must be in [1, 12], got {level}")
        self.level = level
        self.name = f"fastlz-{level}"
        # Chain probes per position: level 1 = plain hash table (depth 1),
        # deeper levels approach exhaustive chain search (lz4hc-like).
        self._max_probes = 1 if level == 1 else 1 << min(level, 10)

    # -- compression ----------------------------------------------------

    def compress(self, data: bytes) -> bytes:
        out = bytearray(write_uvarint(len(data)))
        n = len(data)
        if n == 0:
            return bytes(out)
        # head[h] = most recent position with hash h; prev[i] = previous
        # position in i's chain. Chains enable hc-style deeper search.
        head = [-1] * _HASH_SIZE
        prev = [-1] * n if self._max_probes > 1 else None
        anchor = 0  # start of pending literals
        i = 0
        limit = n - _MIN_MATCH

        def emit_sequence(lit_end: int, match_len: int, offset: int) -> None:
            lit_len = lit_end - anchor
            token_lit = min(lit_len, 15)
            token_match = min(match_len - _MIN_MATCH, 15) if match_len else 0
            out.append((token_lit << 4) | token_match)
            if token_lit == 15:
                _write_length(out, lit_len - 15)
            out.extend(data[anchor:lit_end])
            if match_len:
                out.append(offset & 0xFF)
                out.append(offset >> 8)
                if token_match == 15:
                    _write_length(out, match_len - _MIN_MATCH - 15)

        while i <= limit:
            h = _hash4(data, i)
            best_len = 0
            best_off = 0
            candidate = head[h]
            probes = self._max_probes
            while candidate >= 0 and probes > 0:
                off = i - candidate
                if off > _MAX_OFFSET:
                    break
                # Cheap reject: compare the byte one past the current best.
                if (
                    best_len == 0
                    or (
                        i + best_len < n
                        and data[candidate + best_len] == data[i + best_len]
                    )
                ) and data[candidate : candidate + _MIN_MATCH] == data[
                    i : i + _MIN_MATCH
                ]:
                    length = _MIN_MATCH
                    max_len = n - i
                    while (
                        length < max_len
                        and data[candidate + length] == data[i + length]
                    ):
                        length += 1
                    if length > best_len:
                        best_len = length
                        best_off = off
                probes -= 1
                candidate = prev[candidate] if prev is not None else -1
            if best_len >= _MIN_MATCH:
                emit_sequence(i, best_len, best_off)
                # Index the positions covered by the match (sparsely for
                # speed at low levels, densely at high levels).
                step = 1 if self.level >= 6 else max(1, best_len // 8)
                end = min(i + best_len, limit + 1)
                for j in range(i, end, step):
                    hj = _hash4(data, j)
                    if prev is not None:
                        prev[j] = head[hj]
                    head[hj] = j
                i += best_len
                anchor = i
            else:
                if prev is not None:
                    prev[i] = head[h]
                head[h] = i
                i += 1
        # Trailing literals-only sequence.
        if anchor < n or n == 0:
            lit_len = n - anchor
            token_lit = min(lit_len, 15)
            out.append(token_lit << 4)
            if token_lit == 15:
                _write_length(out, lit_len - 15)
            out.extend(data[anchor:n])
        return bytes(out)

    # -- decompression --------------------------------------------------

    def decompress(self, data: bytes) -> bytes:
        original_len, pos = read_uvarint(data)
        out = bytearray()
        n = len(data)

        def read_extra() -> int:
            nonlocal pos
            total = 0
            while True:
                if pos >= n:
                    raise CompressionError("fastlz: truncated length")
                byte = data[pos]
                pos += 1
                total += byte
                if byte != 255:
                    return total

        while pos < n:
            token = data[pos]
            pos += 1
            lit_len = token >> 4
            if lit_len == 15:
                lit_len += read_extra()
            if pos + lit_len > n:
                raise CompressionError("fastlz: truncated literals")
            out.extend(data[pos : pos + lit_len])
            pos += lit_len
            if pos >= n:
                break  # final sequence has no match part
            if pos + 2 > n:
                raise CompressionError("fastlz: truncated offset")
            offset = data[pos] | (data[pos + 1] << 8)
            pos += 2
            if offset == 0 or offset > len(out):
                raise CompressionError(f"fastlz: bad offset {offset}")
            match_len = (token & 0x0F) + _MIN_MATCH
            if (token & 0x0F) == 15:
                match_len += read_extra()
            start = len(out) - offset
            if offset >= match_len:
                out.extend(out[start : start + match_len])
            else:
                # Overlapping copy (run extension) must go byte-wise.
                for _ in range(match_len):
                    out.append(out[start])
                    start += 1
        if len(out) != original_len:
            raise CompressionError(
                f"fastlz: expected {original_len} bytes, decoded {len(out)}"
            )
        return bytes(out)
