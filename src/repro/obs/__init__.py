"""Unified observability: metrics registry, request tracing, exporters.

The paper's claims are throughput claims; judging them (and every perf
PR after this one) needs per-request latency breakdowns — local vs
remote vs decompress vs verify — not just end totals. This package is
the stdlib-only instrumentation layer the rest of the repo hangs those
numbers on:

- :mod:`repro.obs.metrics` — per-rank :class:`MetricsRegistry` with
  counters, gauges and fixed-bucket latency histograms; lock-free
  updates; JSONL snapshots that merge across ranks.
- :mod:`repro.obs.tracing` — :class:`Span`/:class:`Tracer` with a
  trace context that rides inside daemon request headers, so one
  ``client.read()`` is reconstructable across ranks through its
  retry/failover/degraded hops.
- :mod:`repro.obs.top` — the ``fanstore-top`` CLI aggregating snapshot
  files from all ranks into one table (and rendering trace trees).

The metric name catalogue and trace wire format are documented in
``docs/observability.md``; a lint test keeps registry names and the
catalogue in sync.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_EDGES,
    BoundCounter,
    BoundGauge,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    ObservabilityError,
    live_registries,
    load_snapshots,
    merge_snapshots,
)
from repro.obs.tracing import (
    NULL_SPAN,
    Span,
    TraceContext,
    Tracer,
    assemble_trace,
    format_trace,
    load_spans,
    trace_ids,
)

__all__ = [
    "MetricsRegistry",
    "MetricsSnapshot",
    "Counter",
    "BoundCounter",
    "Gauge",
    "BoundGauge",
    "Histogram",
    "DEFAULT_LATENCY_EDGES",
    "ObservabilityError",
    "live_registries",
    "load_snapshots",
    "merge_snapshots",
    "Tracer",
    "Span",
    "TraceContext",
    "NULL_SPAN",
    "assemble_trace",
    "format_trace",
    "load_spans",
    "trace_ids",
]
