"""Synthetic Table II datasets: determinism, format signatures, and the
compressibility bands the paper reports."""

from __future__ import annotations

import io
import zipfile

import numpy as np
import pytest

from repro.compressors.registry import get_compressor
from repro.datasets.spec import TABLE2, get_spec
from repro.datasets.synthetic import (
    GENERATORS,
    generate_dataset,
    list_datasets,
    sample_files,
)


class TestSpec:
    def test_six_datasets(self):
        assert len(TABLE2) == 6
        assert set(TABLE2) == {
            "em", "tokamak", "lung", "astro", "imagenet", "language",
        }

    def test_table2_statistics_recorded(self):
        em = get_spec("em")
        assert em.paper_num_files == 600_000
        assert em.file_format == "tif"
        imagenet = get_spec("imagenet")
        assert imagenet.paper_num_dirs == 2_002

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            get_spec("mnist")


class TestGenerators:
    @pytest.mark.parametrize("key", sorted(GENERATORS))
    def test_deterministic(self, key):
        gen = GENERATORS[key]
        assert gen(2000, seed=5) == gen(2000, seed=5)
        assert gen(2000, seed=5) != gen(2000, seed=6)

    @pytest.mark.parametrize("key", sorted(GENERATORS))
    def test_size_approximately_honored(self, key):
        data = GENERATORS[key](8_000, seed=1)
        assert 0.5 * 8_000 <= len(data) <= 1.5 * 8_000

    def test_em_has_tiff_magic(self):
        assert GENERATORS["em"](1000, 0)[:4] == b"II\x2a\x00"

    def test_tokamak_is_valid_npz(self):
        blob = GENERATORS["tokamak"](1200, 0)
        with zipfile.ZipFile(io.BytesIO(blob)) as zf:
            names = zf.namelist()
        assert any(n.endswith(".npy") for n in names)
        arrs = np.load(io.BytesIO(blob))
        assert arrs["signals"].dtype == np.int16

    def test_lung_has_nifti_magic(self):
        blob = GENERATORS["lung"](5000, 0)
        assert blob[344:348] == b"n+1\x00"

    def test_astro_has_fits_header(self):
        blob = GENERATORS["astro"](10_000, 0)
        assert blob[:6] == b"SIMPLE"
        assert len(blob) > 2880

    def test_imagenet_has_jpeg_framing(self):
        blob = GENERATORS["imagenet"](5000, 0)
        assert blob[:2] == b"\xff\xd8"
        assert blob[-2:] == b"\xff\xd9"

    def test_language_is_ascii_text(self):
        blob = GENERATORS["language"](3000, 0)
        text = blob.decode("ascii")
        assert ". " in text


class TestCompressibilityBands:
    """The property the whole paper turns on: each dataset's lossless
    compressibility must sit in the band Table IV reports."""

    @pytest.mark.parametrize(
        "key,lo,hi",
        [
            ("em", 1.4, 4.0),
            ("tokamak", 1.8, 4.5),
            ("lung", 4.0, 20.0),
            ("astro", 1.8, 7.0),
            ("imagenet", 0.95, 1.1),
            ("language", 2.0, 5.0),
        ],
    )
    def test_zlib_ratio_band(self, key, lo, hi):
        comp = get_compressor("zlib-6")
        samples = sample_files(key, 4, seed=3)
        total = sum(len(s) for s in samples)
        packed = sum(len(comp.compress(s)) for s in samples)
        assert lo <= total / packed <= hi

    def test_imagenet_incompressible_for_everyone(self):
        """Table IV row: every compressor reports ~1.0 on JPEG."""
        samples = sample_files("imagenet", 3, seed=1)
        for name in ("zlib-9", "bz2-9", "lzma-6", "fastlz-9"):
            comp = get_compressor(name)
            for s in samples:
                assert len(comp.compress(s)) >= 0.95 * len(s)

    def test_lung_most_compressible(self):
        """Table IV: the lung dataset dominates every other dataset's
        ratio (5.7–10.8 vs ≤4)."""
        comp = get_compressor("zlib-6")

        def ratio(key):
            samples = sample_files(key, 3, seed=2)
            return sum(map(len, samples)) / sum(
                len(comp.compress(s)) for s in samples
            )

        lung = ratio("lung")
        for other in ("em", "astro", "language", "imagenet"):
            assert lung > ratio(other)


class TestGenerateDataset:
    def test_materializes_directory_tree(self, tmp_path):
        spec = generate_dataset(
            "imagenet", tmp_path, num_files=10, avg_file_size=500,
            num_dirs=3, seed=0,
        )
        assert spec.key == "imagenet"
        dirs = sorted(p.name for p in tmp_path.iterdir())
        assert dirs == ["cls0000", "cls0001", "cls0002"]
        files = list(tmp_path.rglob("*.jpg"))
        assert len(files) == 10

    def test_size_jitter(self, tmp_path):
        generate_dataset(
            "language", tmp_path, num_files=8, avg_file_size=2000, seed=1
        )
        sizes = {p.stat().st_size for p in tmp_path.rglob("*.txt")}
        assert len(sizes) > 1  # not all identical

    def test_defaults_from_spec(self, tmp_path):
        spec = generate_dataset("language", tmp_path)
        files = list(tmp_path.rglob("*.txt"))
        assert len(files) == spec.gen_num_files

    def test_list_datasets(self):
        assert list_datasets() == sorted(TABLE2)
