"""The POSIX-compliant client: descriptors, read/seek, the
multi-read single-write model, directory streams."""

from __future__ import annotations

import os

import pytest

from repro.errors import (
    BadFileDescriptorError,
    FanStoreError,
    FileNotFoundInStoreError,
    WriteViolationError,
)
from repro.fanstore.client import O_CREAT, O_RDONLY, O_WRONLY


@pytest.fixture()
def client(single_store):
    return single_store.client


def first_file(client, d="cls0000"):
    return f"{d}/{client.listdir(d)[0]}"


class TestOpenReadClose:
    def test_full_read(self, client):
        path = first_file(client)
        fd = client.open(path, O_RDONLY)
        data = client.read(fd)
        client.close(fd)
        assert len(data) == client.stat(path).st_size

    def test_partial_reads_advance_offset(self, client):
        path = first_file(client)
        fd = client.open(path)
        a = client.read(fd, 10)
        b = client.read(fd, 10)
        client.close(fd)
        whole = client.read_file(path)
        assert a + b == whole[:20]

    def test_read_past_eof_returns_empty(self, client):
        path = first_file(client)
        fd = client.open(path)
        client.read(fd)
        assert client.read(fd, 100) == b""
        client.close(fd)

    def test_pread_does_not_move_offset(self, client):
        path = first_file(client)
        fd = client.open(path)
        chunk = client.pread(fd, 5, 10)
        assert client.read(fd, 5) == client.read_file(path)[:5]
        assert chunk == client.read_file(path)[10:15]
        client.close(fd)

    def test_open_missing_raises(self, client):
        with pytest.raises(FileNotFoundInStoreError):
            client.open("does/not/exist")

    def test_fd_lifecycle(self, client):
        path = first_file(client)
        fd = client.open(path)
        client.close(fd)
        with pytest.raises(BadFileDescriptorError):
            client.read(fd, 1)
        with pytest.raises(BadFileDescriptorError):
            client.close(fd)

    def test_concurrent_fds_same_file(self, client):
        path = first_file(client)
        fd1 = client.open(path)
        fd2 = client.open(path)
        client.read(fd1, 30)
        assert client.read(fd2, 10) == client.read_file(path)[:10]
        client.close(fd1)
        client.close(fd2)
        assert client.open_fd_count == 0

    def test_fds_start_above_stdio(self, client):
        fd = client.open(first_file(client))
        assert fd >= 3
        client.close(fd)


class TestLseek:
    def test_seek_set_cur_end(self, client):
        path = first_file(client)
        size = client.stat(path).st_size
        fd = client.open(path)
        assert client.lseek(fd, 10, os.SEEK_SET) == 10
        assert client.lseek(fd, 5, os.SEEK_CUR) == 15
        assert client.lseek(fd, -5, os.SEEK_END) == size - 5
        client.close(fd)

    def test_seek_before_start_raises(self, client):
        fd = client.open(first_file(client))
        with pytest.raises(FanStoreError):
            client.lseek(fd, -1, os.SEEK_SET)
        client.close(fd)

    def test_bad_whence(self, client):
        fd = client.open(first_file(client))
        with pytest.raises(FanStoreError):
            client.lseek(fd, 0, 42)
        client.close(fd)


class TestWritePath:
    def test_write_then_read_back(self, client):
        client.write_file("out/result.bin", b"epoch artifacts")
        assert client.read_file("out/result.bin") == b"epoch artifacts"
        assert client.stat("out/result.bin").st_size == 15

    def test_single_write_model_seals_on_close(self, client):
        client.write_file("out/sealed.bin", b"v1")
        with pytest.raises(WriteViolationError):
            client.open("out/sealed.bin", O_WRONLY | O_CREAT)

    def test_no_rdwr(self, client):
        with pytest.raises(WriteViolationError):
            client.open("out/x", os.O_RDWR)

    def test_write_requires_creat(self, client):
        with pytest.raises(WriteViolationError):
            client.open("out/x", O_WRONLY)

    def test_two_writers_same_path_rejected(self, client):
        fd = client.open("out/active", O_WRONLY | O_CREAT)
        with pytest.raises(WriteViolationError):
            client.open("out/active", O_WRONLY | O_CREAT)
        client.close(fd)

    def test_reading_while_writing_rejected(self, client):
        fd = client.open("out/wip", O_WRONLY | O_CREAT)
        client.write(fd, b"partial")
        with pytest.raises(WriteViolationError):
            client.open("out/wip", O_RDONLY)
        client.close(fd)

    def test_dataset_files_are_read_only(self, client):
        path = first_file(client)
        with pytest.raises(WriteViolationError):
            client.open(path, O_WRONLY | O_CREAT)

    def test_write_to_read_fd_rejected(self, client):
        fd = client.open(first_file(client))
        with pytest.raises(BadFileDescriptorError):
            client.write(fd, b"x")
        client.close(fd)

    def test_read_from_write_fd_rejected(self, client):
        fd = client.open("out/w", O_WRONLY | O_CREAT)
        with pytest.raises(BadFileDescriptorError):
            client.read(fd)
        client.close(fd)

    def test_output_visible_in_namespace(self, client):
        client.write_file("ckpt/model-000001.ckpt", b"{}")
        assert "ckpt" in client.listdir("")
        assert client.listdir("ckpt") == ["model-000001.ckpt"]

    def test_output_stat_flags(self, client):
        client.write_file("out/flagged", b"z")
        stat = client.stat("out/flagged")
        assert stat.is_output
        assert stat.st_mtime_ns > 0


class TestDirectoryStreams:
    def test_opendir_readdir_closedir(self, client):
        handle = client.opendir("cls0000")
        names = []
        while True:
            name = handle.readdir()
            if name is None:
                break
            names.append(name)
        handle.closedir()
        assert names == client.listdir("cls0000")

    def test_rewind(self, client):
        handle = client.opendir("cls0000")
        first = handle.readdir()
        handle.rewind()
        assert handle.readdir() == first

    def test_readdir_after_close_raises(self, client):
        handle = client.opendir("")
        handle.closedir()
        with pytest.raises(FanStoreError):
            handle.readdir()


class TestFileObject:
    def test_binary_context_manager(self, client):
        path = first_file(client)
        with client.open_file(path, "rb") as f:
            data = f.read()
        assert f.closed
        assert data == client.read_file(path)

    def test_text_mode(self, client):
        client.write_file("logs/t.txt", "héllo\n".encode("utf-8"))
        with client.open_file("logs/t.txt", "r") as f:
            assert f.read() == "héllo\n"

    def test_write_mode_and_iteration(self, client):
        with client.open_file("logs/lines.txt", "w") as f:
            f.write("one\n")
            f.write("two\n")
        with client.open_file("logs/lines.txt", "r") as f:
            assert list(f) == ["one\n", "two\n"]

    def test_seek_tell(self, client):
        path = first_file(client)
        with client.open_file(path, "rb") as f:
            f.seek(7)
            assert f.tell() == 7

    def test_unsupported_mode(self, client):
        with pytest.raises(FanStoreError):
            client.open_file("x", "a+")
