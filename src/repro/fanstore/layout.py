"""The compressed data representation (Table I).

A *partition* is a flat binary file:

+------------+-----------------------------------------------+
| 4 bytes    | number of files (uint32 LE)                   |
+------------+-----------------------------------------------+
| per file:  | 256 B path · 2 B compressor id · 144 B stat · |
|            | 8 B compressed size · compressed data         |
+------------+-----------------------------------------------+

The 144-byte stat record mirrors ``struct stat`` with FanStore's extra
locality fields appended (§IV-C1 "inserts the locality information into
the extra fields in the file metadata"): the home rank that hosts the
compressed bytes, the partition id, and a flags word (bit 0 = broadcast
partition, replicated to every node).

The format supports two read modes: a full load (bytes included) and a
metadata-only scan that seeks past the data — the daemon uses the scan
to build its RAM metadata table without touching payload bytes twice.
"""

from __future__ import annotations

import io
import struct
import zlib
from dataclasses import dataclass, replace
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator

from repro.errors import FormatError

MAGIC_PATH_LEN = 256
COMPRESSOR_ID_LEN = 2
STAT_LEN = 144
SIZE_LEN = 8
ENTRY_HEADER_LEN = MAGIC_PATH_LEN + COMPRESSOR_ID_LEN + STAT_LEN + SIZE_LEN
COUNT_LEN = 4

#: flags bits in FileStat.flags
FLAG_BROADCAST = 1 << 0  # replicated to all nodes (validation data, §V-B)
FLAG_OUTPUT = 1 << 1  # created at runtime through the write path
FLAG_HAS_DIGEST = 1 << 2  # crc32 covers the compressed payload

# struct stat core fields + FanStore extras, padded to exactly 144 bytes.
# The crc32 of the *compressed* payload lives in what used to be pure
# padding, so partitions written before digests existed decode
# unchanged (their flags word simply lacks FLAG_HAS_DIGEST).
_STAT_STRUCT = struct.Struct("<IQQIIIQIQQQQiIII52x")
assert _STAT_STRUCT.size == STAT_LEN

_COUNT_STRUCT = struct.Struct("<I")
_ID_STRUCT = struct.Struct("<H")
_SIZE_STRUCT = struct.Struct("<Q")

#: default st_mode for packaged regular files (0644 regular file).
DEFAULT_FILE_MODE = 0o100644
DEFAULT_DIR_MODE = 0o040755
DEFAULT_BLOCK_SIZE = 4096


@dataclass(frozen=True)
class FileStat:
    """The 144-byte per-file metadata record."""

    st_mode: int = DEFAULT_FILE_MODE
    st_ino: int = 0
    st_dev: int = 0
    st_nlink: int = 1
    st_uid: int = 0
    st_gid: int = 0
    st_size: int = 0  # ORIGINAL (uncompressed) size
    st_blksize: int = DEFAULT_BLOCK_SIZE
    st_blocks: int = 0
    st_atime_ns: int = 0
    st_mtime_ns: int = 0
    st_ctime_ns: int = 0
    # -- FanStore locality extras ----------------------------------------
    home_rank: int = -1  # rank holding the compressed bytes; -1 = unset
    partition_id: int = 0
    flags: int = 0
    crc32: int = 0  # digest of the COMPRESSED payload; see FLAG_HAS_DIGEST

    def pack(self) -> bytes:
        return _STAT_STRUCT.pack(
            self.st_mode,
            self.st_ino,
            self.st_dev,
            self.st_nlink,
            self.st_uid,
            self.st_gid,
            self.st_size,
            self.st_blksize,
            self.st_blocks,
            self.st_atime_ns,
            self.st_mtime_ns,
            self.st_ctime_ns,
            self.home_rank,
            self.partition_id,
            self.flags,
            self.crc32,
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "FileStat":
        if len(raw) != STAT_LEN:
            raise FormatError(f"stat record must be {STAT_LEN} bytes, got {len(raw)}")
        fields = _STAT_STRUCT.unpack(raw)
        return cls(*fields)

    def with_locality(
        self, home_rank: int, partition_id: int | None = None
    ) -> "FileStat":
        """Copy with the locality extras filled in (done at load time)."""
        return replace(
            self,
            home_rank=home_rank,
            partition_id=self.partition_id if partition_id is None else partition_id,
        )

    @property
    def is_broadcast(self) -> bool:
        return bool(self.flags & FLAG_BROADCAST)

    @property
    def is_output(self) -> bool:
        return bool(self.flags & FLAG_OUTPUT)

    @property
    def has_digest(self) -> bool:
        return bool(self.flags & FLAG_HAS_DIGEST)

    def with_digest(self, crc32: int) -> "FileStat":
        """Copy with the payload digest recorded and flagged present."""
        return replace(self, crc32=crc32, flags=self.flags | FLAG_HAS_DIGEST)


def _pack_path(path: str) -> bytes:
    encoded = path.encode("utf-8")
    if len(encoded) >= MAGIC_PATH_LEN:
        raise FormatError(
            f"path exceeds {MAGIC_PATH_LEN - 1} bytes: {path!r}"
        )
    if not path or path.startswith("/"):
        raise FormatError(f"partition paths must be relative and non-empty: {path!r}")
    return encoded.ljust(MAGIC_PATH_LEN, b"\x00")


def _unpack_path(raw: bytes) -> str:
    end = raw.find(b"\x00")
    if end == 0:
        raise FormatError("empty path in partition entry")
    if end == -1:
        end = len(raw)
    try:
        return raw[:end].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise FormatError(f"undecodable path bytes: {exc}") from exc


@dataclass(frozen=True)
class PartitionEntry:
    """One packaged file: its metadata plus (optionally) compressed bytes.

    ``data`` is None for metadata-only scans; ``compressed_size`` is
    always populated.
    """

    path: str
    compressor_id: int
    stat: FileStat
    compressed_size: int
    #: compressed payload — ``bytes`` from a streamed read, a
    #: ``memoryview`` slice of the whole-partition buffer from a
    #: zero-copy read, ``None`` for metadata-only scans
    data: bytes | memoryview | None = None
    data_offset: int = -1  # byte offset of the payload within the partition


def write_partition(
    entries: Iterable[tuple[str, int, FileStat, bytes]], stream: BinaryIO
) -> int:
    """Serialize ``(path, compressor_id, stat, compressed_bytes)`` tuples.

    Returns the number of bytes written. Entries are written in input
    order; the count header requires materializing the iterable.
    """
    entries = list(entries)
    written = stream.write(_COUNT_STRUCT.pack(len(entries)))
    for path, compressor_id, stat, data in entries:
        if not 0 <= compressor_id <= 0xFFFF:
            raise FormatError(f"compressor id out of range: {compressor_id}")
        written += stream.write(_pack_path(path))
        written += stream.write(_ID_STRUCT.pack(compressor_id))
        written += stream.write(stat.pack())
        written += stream.write(_SIZE_STRUCT.pack(len(data)))
        written += stream.write(data)
    return written


def _read_exact(stream: BinaryIO, n: int, what: str) -> bytes:
    try:
        raw = stream.read(n)
    except (OverflowError, MemoryError):
        # a corrupt size field can be any 64-bit pattern — too big for
        # stream.read's index type, or big enough to fail allocation
        raise FormatError(
            f"corrupt partition: implausible {what} length {n}"
        ) from None
    if len(raw) != n:
        raise FormatError(f"truncated partition: expected {n} bytes of {what}")
    return raw


def iter_partition(
    stream: BinaryIO, *, with_data: bool = True
) -> Iterator[PartitionEntry]:
    """Stream entries from a partition.

    With ``with_data=False`` the payload is seeked past, yielding only
    metadata (plus each payload's offset for later ``pread``-style access
    when the partition stays on local disk).
    """
    count = _COUNT_STRUCT.unpack(_read_exact(stream, COUNT_LEN, "count"))[0]
    for _ in range(count):
        path = _unpack_path(_read_exact(stream, MAGIC_PATH_LEN, "path"))
        compressor_id = _ID_STRUCT.unpack(
            _read_exact(stream, COMPRESSOR_ID_LEN, "compressor id")
        )[0]
        stat = FileStat.unpack(_read_exact(stream, STAT_LEN, "stat"))
        size = _SIZE_STRUCT.unpack(_read_exact(stream, SIZE_LEN, "size"))[0]
        offset = stream.tell()
        if with_data:
            data = _read_exact(stream, size, "data")
        else:
            data = None
            stream.seek(size, io.SEEK_CUR)
        yield PartitionEntry(
            path=path,
            compressor_id=compressor_id,
            stat=stat,
            compressed_size=size,
            data=data,
            data_offset=offset,
        )


def _entries_from_buffer(buf: bytes) -> list[PartitionEntry]:
    """Parse a whole in-memory partition, payloads as ``memoryview``
    slices of ``buf`` — the zero-copy ingest path: one read of the
    partition file, no per-entry payload copies."""
    view = memoryview(buf)
    total = len(buf)
    if total < COUNT_LEN:
        raise FormatError("truncated partition: expected 4 bytes of count")
    count = _COUNT_STRUCT.unpack_from(buf, 0)[0]
    offset = COUNT_LEN
    entries: list[PartitionEntry] = []
    for _ in range(count):
        if offset + ENTRY_HEADER_LEN > total:
            raise FormatError(
                "truncated partition: expected "
                f"{ENTRY_HEADER_LEN} bytes of entry header"
            )
        path = _unpack_path(bytes(view[offset:offset + MAGIC_PATH_LEN]))
        offset += MAGIC_PATH_LEN
        compressor_id = _ID_STRUCT.unpack_from(buf, offset)[0]
        offset += COMPRESSOR_ID_LEN
        stat = FileStat.unpack(bytes(view[offset:offset + STAT_LEN]))
        offset += STAT_LEN
        size = _SIZE_STRUCT.unpack_from(buf, offset)[0]
        offset += SIZE_LEN
        if offset + size > total:
            raise FormatError(
                f"truncated partition: expected {size} bytes of data"
            )
        entries.append(
            PartitionEntry(
                path=path,
                compressor_id=compressor_id,
                stat=stat,
                compressed_size=size,
                data=view[offset:offset + size],
                data_offset=offset,
            )
        )
        offset += size
    return entries


def read_partition(
    source: Path | BinaryIO,
    *,
    with_data: bool = True,
    zero_copy: bool = False,
) -> list[PartitionEntry]:
    """Read a whole partition from a path or open stream.

    ``zero_copy=True`` (data mode only) reads the partition into one
    buffer and yields payloads as ``memoryview`` slices of it — no
    per-entry copy between the file and the backend. The slices keep
    the whole buffer alive; use it when the payloads are about to be
    retained together (daemon RAM ingest), not for picking one entry.
    """
    if zero_copy and with_data:
        if isinstance(source, (str, Path)):
            buf = Path(source).read_bytes()
        else:
            buf = source.read()
        return _entries_from_buffer(buf)
    if isinstance(source, (str, Path)):
        with open(source, "rb") as stream:
            return list(iter_partition(stream, with_data=with_data))
    return list(iter_partition(source, with_data=with_data))


def partition_payload_bytes(entries: Iterable[PartitionEntry]) -> int:
    """Total compressed payload size of a set of entries."""
    return sum(e.compressed_size for e in entries)


def blob_crc32(data: bytes | bytearray | memoryview) -> int:
    """The per-record payload digest (crc32 of the compressed bytes).
    Accepts any bytes-like buffer — zero-copy reads verify straight off
    a ``memoryview`` slice."""
    return zlib.crc32(data) & 0xFFFFFFFF


def entry_payload_ok(entry: PartitionEntry) -> bool:
    """Digest check of a fully-read entry; True when no digest is
    recorded (pre-digest partitions stay readable)."""
    if entry.data is None or not entry.stat.has_digest:
        return True
    return blob_crc32(entry.data) == entry.stat.crc32
