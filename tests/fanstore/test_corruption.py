"""The storage-fault injector: deterministic, rule-scoped, recorded."""

from __future__ import annotations

import shutil

import pytest

from repro.errors import FanStoreError, FileNotFoundInStoreError
from repro.fanstore.backend import RamBackend
from repro.fanstore.corruption import (
    BIT_FLIP,
    TORN_WRITE,
    TRUNCATE,
    ZERO_PAGE,
    StorageFaultPlan,
    corrupt_backend,
    corrupt_record,
)
from repro.fanstore.layout import read_partition
from repro.fanstore.prepare import MANIFEST_NAME, PreparedDataset


@pytest.fixture()
def dataset_copy(prepared_dataset, tmp_path):
    """A disposable copy — the session dataset must never be mutated."""
    root = tmp_path / "copy"
    shutil.copytree(prepared_dataset.root, root)
    return PreparedDataset.load(root)


class TestRules:
    def test_bit_flip_changes_one_file(self, dataset_copy):
        target = dataset_copy.partition_paths()[0]
        before = target.read_bytes()
        events = StorageFaultPlan(seed=1).bit_flip(
            pattern="part-00000.fst"
        ).apply_dataset(dataset_copy)
        assert len(events) == 1
        assert events[0].action == BIT_FLIP
        assert events[0].path == target
        after = target.read_bytes()
        assert len(after) == len(before)
        assert sum(a != b for a, b in zip(after, before)) == 1
        # nothing else was touched
        assert dataset_copy.verify_partition_digests() == [target.name]

    def test_truncate_shortens(self, dataset_copy):
        target = dataset_copy.partition_paths()[1]
        before = target.read_bytes()
        [event] = StorageFaultPlan(seed=2).truncate(
            pattern=target.name
        ).apply([target])
        assert event.action == TRUNCATE
        after = target.read_bytes()
        assert len(after) < len(before)
        assert after == before[: len(after)]

    def test_zero_page_zeroes_an_aligned_page(self, dataset_copy):
        target = dataset_copy.partition_paths()[2]
        before = target.read_bytes()
        [event] = StorageFaultPlan(seed=3).zero_page(
            pattern=target.name, page_size=256
        ).apply([target])
        assert event.action == ZERO_PAGE
        assert event.offset % 256 == 0
        after = target.read_bytes()
        assert len(after) == len(before)
        assert after[event.offset : event.offset + event.length] == bytes(
            event.length
        )

    def test_torn_write_keeps_prefix_drops_tail(self, dataset_copy):
        target = dataset_copy.broadcast_path()
        before = target.read_bytes()
        [event] = StorageFaultPlan(seed=4).torn_write(
            pattern=target.name
        ).apply([target])
        assert event.action == TORN_WRITE
        after = target.read_bytes()
        assert after[: event.offset] == before[: event.offset]
        assert len(after) < len(before)

    def test_empty_file_is_skipped(self, tmp_path):
        empty = tmp_path / "empty.bin"
        empty.write_bytes(b"")
        plan = StorageFaultPlan(seed=5).bit_flip()
        assert plan.apply([empty]) == []
        assert plan.stats.skipped == 1
        assert plan.stats.total == 0


class TestPlanSemantics:
    def test_same_seed_same_damage(self, prepared_dataset, tmp_path):
        damages = []
        for run in ("a", "b"):
            root = tmp_path / run
            shutil.copytree(prepared_dataset.root, root)
            copy = PreparedDataset.load(root)
            plan = StorageFaultPlan(seed=77).bit_flip(
                pattern="part-*.fst", times=2
            )
            events = plan.apply_dataset(copy)
            damages.append([
                (e.action, e.path.name, e.offset, e.length) for e in events
            ])
            damages.append([
                p.read_bytes() for p in copy.partition_paths()
            ])
        assert damages[0] == damages[2]
        assert damages[1] == damages[3]

    def test_times_budget_and_pattern_scope(self, dataset_copy):
        plan = StorageFaultPlan(seed=6).bit_flip(
            pattern="part-*.fst", times=2
        )
        events = plan.apply_dataset(dataset_copy)
        assert len(events) == 2  # third partition + manifest untouched
        assert all(e.path.name.startswith("part-") for e in events)
        assert plan.stats.bit_flips == 2

    def test_first_matching_rule_wins(self, dataset_copy):
        target = dataset_copy.partition_paths()[0]
        plan = (
            StorageFaultPlan(seed=7)
            .truncate(pattern=target.name)
            .bit_flip(pattern="*")
        )
        [event] = plan.apply([target])
        assert event.action == TRUNCATE
        assert plan.stats.bit_flips == 0

    def test_probability_zeroish_never_fires(self, dataset_copy):
        plan = StorageFaultPlan(seed=8).bit_flip(
            pattern="*", times=None, probability=0.0
        )
        assert plan.apply_dataset(dataset_copy) == []

    def test_manifest_is_a_target(self, dataset_copy):
        plan = StorageFaultPlan(seed=9).truncate(pattern=MANIFEST_NAME)
        [event] = plan.apply_dataset(dataset_copy)
        assert event.path.name == MANIFEST_NAME
        with pytest.raises(FanStoreError):
            PreparedDataset.load(dataset_copy.root)

    def test_events_accumulate_across_passes(self, dataset_copy):
        plan = StorageFaultPlan(seed=10).bit_flip(pattern="part-*", times=None)
        plan.apply_dataset(dataset_copy)
        plan.apply_dataset(dataset_copy)
        assert len(plan.events) == 6


class TestTargetedHelpers:
    def test_corrupt_record_hits_only_its_payload(self, dataset_copy):
        part = dataset_copy.partition_paths()[0]
        entries = read_partition(part, with_data=False)
        victim = entries[0]
        event = corrupt_record(dataset_copy, victim.path, seed=11)
        assert event.path == part
        assert (
            victim.data_offset
            <= event.offset
            < victim.data_offset + victim.compressed_size
        )
        # every other record in the partition still verifies
        from repro.fanstore.layout import entry_payload_ok

        for e in read_partition(part, with_data=True):
            assert entry_payload_ok(e) == (e.path != victim.path)

    def test_corrupt_record_unknown_path(self, dataset_copy):
        with pytest.raises(FileNotFoundInStoreError):
            corrupt_record(dataset_copy, "no/such/file", seed=1)

    def test_corrupt_backend_leaves_shared_fs_alone(self, dataset_copy):
        backend = RamBackend()
        backend.put("x", b"payload-bytes")
        before_parts = [p.read_bytes() for p in dataset_copy.partition_paths()]
        bad = corrupt_backend(backend, "x", seed=12)
        assert bad != b"payload-bytes"
        assert len(bad) == len(b"payload-bytes")
        assert backend.get("x") == bad
        assert [
            p.read_bytes() for p in dataset_copy.partition_paths()
        ] == before_parts

    def test_corrupt_backend_deterministic(self):
        outs = []
        for _ in range(2):
            backend = RamBackend()
            backend.put("x", bytes(64))
            outs.append(corrupt_backend(backend, "x", seed=13))
        assert outs[0] == outs[1]
