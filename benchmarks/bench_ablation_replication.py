"""Ablation — extra-partition replication budget (§IV-C1/§V-D).

"The more data served from local storage, the less communication passes
through the interconnect" — quantified functionally: the same 4-rank
store loaded with replication budgets 0, 1 and 3, reading the full
namespace on every rank, counting real remote fetches and the local
storage each budget costs.
"""

from __future__ import annotations

import pytest

from repro.bench.report import PaperComparison
from repro.comm.launcher import run_parallel
from repro.datasets.synthetic import generate_dataset
from repro.fanstore.daemon import DaemonConfig
from repro.fanstore.prepare import prepare_dataset
from repro.fanstore.store import FanStore, FanStoreOptions

RANKS = 4


@pytest.fixture(scope="module")
def replication_dataset(tmp_path_factory):
    raw = tmp_path_factory.mktemp("repl-raw")
    generate_dataset("em", raw, num_files=16, avg_file_size=8_000,
                     num_dirs=2, seed=23)
    return prepare_dataset(
        raw, tmp_path_factory.mktemp("repl-packed"),
        num_partitions=RANKS, compressor="zlib-1", threads=2,
    )


def _run_with_budget(prepared, budget: int):
    config = DaemonConfig(extra_partition_budget=budget)

    def body(comm):
        with FanStore(prepared, FanStoreOptions(comm=comm, config=config)) as fs:
            for rec in fs.daemon.metadata.walk_files():
                fs.client.read_file(rec.path)
            return (
                fs.daemon.stats.remote_fetches,
                fs.daemon.backend.resident_bytes,
            )

    results = run_parallel(body, RANKS, timeout=120)
    total_remote = sum(r for r, _ in results)
    avg_resident = sum(b for _, b in results) / RANKS
    return total_remote, avg_resident


def test_ablation_replication_budget(benchmark, replication_dataset,
                                     emit_report):
    rows = benchmark.pedantic(
        lambda: {b: _run_with_budget(replication_dataset, b)
                 for b in (0, 1, 3)},
        rounds=1, iterations=1,
    )

    report = PaperComparison(
        "Ablation (replication budget)",
        "remote fetches vs local storage, 4 ranks reading everything",
        columns=["extra partitions", "total remote fetches",
                 "avg resident bytes"],
    )
    for budget, (remote, resident) in rows.items():
        report.add_row(budget, remote, round(resident))
    report.add_note("budget 3 = full replication: zero interconnect "
                    "traffic at 4x the storage — the knob §V-D trades")
    emit_report(report)

    remote0, resident0 = rows[0]
    remote1, resident1 = rows[1]
    remote3, resident3 = rows[3]
    # each extra partition removes ~1/4 of remote traffic
    assert remote0 > remote1 > remote3
    assert remote3 == 0
    # and costs proportionally more storage
    assert resident1 == pytest.approx(2 * resident0, rel=0.3)
    assert resident3 == pytest.approx(4 * resident0, rel=0.3)