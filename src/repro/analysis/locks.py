"""Project-wide lock model: who owns which locks, which regions hold
them, and what runs inside those regions.

The model is built once per lint run and shared by the *lock-order* and
*blocking-under-lock* passes. It is deliberately conservative in both
directions a heuristic can be: it only understands the idioms this
codebase actually uses (``self._lock = threading.Lock()`` ownership,
``with self._lock:`` regions, ``self.attr.method()`` cross-object
calls with constructor- or annotation-derived attribute types), and it
follows calls *interprocedurally* so a lock acquired three frames below
a held region still produces an edge.

Lock identity is class-scoped (``ClassName.attr``), matching the
runtime witness in :mod:`repro.analysis.lockdep`, which groups lock
instances by allocation site — two instances of the same class's
``_lock`` are one node in both graphs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.analysis.core import Project, SourceFile

#: factory callables (as ``threading.X`` / bare imported ``X``) whose
#: result we treat as a lock for ordering purposes.
LOCK_FACTORIES = {"Lock": "Lock", "RLock": "RLock", "Condition": "Condition"}

_MAX_CALL_DEPTH = 10


@dataclass(frozen=True)
class LockSite:
    """One lock attribute of one class."""

    cls: str
    attr: str
    kind: str  # Lock | RLock | Condition
    source: str  # display path of the defining file
    line: int

    @property
    def key(self) -> str:
        return f"{self.cls}.{self.attr}"


@dataclass(frozen=True)
class AcquireEvent:
    """Lock ``lock`` acquired while ``held`` (innermost last) was held.
    ``source``/``node`` anchor the acquisition site; ``entry`` names the
    (class, method) the traversal started from."""

    lock: LockSite
    held: tuple[LockSite, ...]
    source: SourceFile
    node: ast.AST
    entry: str


@dataclass(frozen=True)
class CallEvent:
    """A call expression evaluated while ``held`` was held."""

    call: ast.Call
    held: tuple[LockSite, ...]
    source: SourceFile
    entry: str


@dataclass
class ClassModel:
    name: str
    source: SourceFile
    node: ast.ClassDef
    locks: dict[str, LockSite] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)  # attr -> class
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)


def _threading_names(tree: ast.Module) -> set[str]:
    """Names bound by ``from threading import X`` in this module."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.ImportFrom) and node.module == "threading":
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


def _factory_kind(call: ast.expr, local_threading: set[str]) -> str | None:
    """``threading.Lock()`` / imported ``Lock()`` → "Lock" (etc.)."""
    if not isinstance(call, ast.Call):
        return None
    fn = call.func
    if (
        isinstance(fn, ast.Attribute)
        and isinstance(fn.value, ast.Name)
        and fn.value.id == "threading"
    ):
        return LOCK_FACTORIES.get(fn.attr)
    if isinstance(fn, ast.Name) and fn.id in local_threading:
        return LOCK_FACTORIES.get(fn.id)
    return None


def _annotation_classes(node: ast.expr | None) -> list[str]:
    """Class names mentioned in an annotation (handles ``A | B | None``
    and string annotations like ``"A | None"``)."""
    if node is None:
        return []
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return []
    names: list[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id not in ("None",):
            names.append(sub.id)
    return names


class LockModel:
    """The project's classes, their locks, and the traversal engine."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.classes: dict[str, ClassModel] = {}
        for src in project:
            local_threading = _threading_names(src.tree)
            for node in ast.walk(src.tree):
                if isinstance(node, ast.ClassDef):
                    self._index_class(src, node, local_threading)

    # -- model construction ------------------------------------------------

    def _index_class(
        self, src: SourceFile, node: ast.ClassDef, local_threading: set[str]
    ) -> None:
        model = ClassModel(name=node.name, source=src, node=node)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                model.methods[item.name] = item  # type: ignore[assignment]
                self._scan_self_assignments(model, item, local_threading)
        # a later class of the same name would shadow an earlier one;
        # keep the first and let name collisions stay conservative
        self.classes.setdefault(node.name, model)

    def _scan_self_assignments(
        self, model: ClassModel, fn: ast.FunctionDef, local_threading: set[str]
    ) -> None:
        params = {
            a.arg: _annotation_classes(a.annotation)
            for a in list(fn.args.args) + list(fn.args.kwonlyargs)
        }
        for node in ast.walk(fn):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            value = node.value
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                attr = target.attr
                kind = _factory_kind(value, local_threading) if value else None
                if kind is not None:
                    model.locks[attr] = LockSite(
                        cls=model.name,
                        attr=attr,
                        kind=kind,
                        source=model.source.display,
                        line=node.lineno,
                    )
                    continue
                # self.x = ClassName(...) → attribute type
                if (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                ):
                    model.attr_types.setdefault(attr, value.func.id)
                # self.x = param (typed parameter) → annotation type
                elif isinstance(value, ast.Name) and value.id in params:
                    for cls_name in params[value.id]:
                        model.attr_types.setdefault(attr, cls_name)
                        break
                # AnnAssign with explicit annotation: self.x: T = ...
                if isinstance(node, ast.AnnAssign):
                    for cls_name in _annotation_classes(node.annotation):
                        model.attr_types.setdefault(attr, cls_name)
                        break

    # -- resolution --------------------------------------------------------

    def resolve_chain(
        self, model: ClassModel, expr: ast.expr
    ) -> tuple[ClassModel | None, str | None]:
        """Resolve ``self.a.b…x`` to (owning class model, final attr).
        Returns (None, None) when any hop is untyped."""
        parts: list[str] = []
        node = expr
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not (isinstance(node, ast.Name) and node.id == "self"):
            return None, None
        parts.reverse()  # [a, b, ..., x]
        current = model
        for hop in parts[:-1]:
            next_cls = current.attr_types.get(hop)
            if next_cls is None or next_cls not in self.classes:
                return None, None
            current = self.classes[next_cls]
        return current, parts[-1]

    # -- traversal ---------------------------------------------------------

    def walk_all(
        self,
        *,
        on_acquire: Callable[[AcquireEvent], None] | None = None,
        on_call: Callable[[CallEvent], None] | None = None,
        class_filter: Callable[[ClassModel], bool] | None = None,
    ) -> None:
        """Traverse every method of every (filtered) class from a
        no-locks-held entry state, following intra-project calls, and
        report lock acquisitions and calls with their held context."""
        for model in self.classes.values():
            if class_filter is not None and not class_filter(model):
                continue
            for name in model.methods:
                entry = f"{model.name}.{name}"
                self._walk_method(
                    model, name, (), entry, on_acquire, on_call,
                    visiting=set(), depth=0,
                )

    def _walk_method(
        self,
        model: ClassModel,
        method: str,
        held: tuple[LockSite, ...],
        entry: str,
        on_acquire,
        on_call,
        visiting: set[tuple[str, str]],
        depth: int,
    ) -> None:
        fn = model.methods.get(method)
        if fn is None or depth > _MAX_CALL_DEPTH:
            return
        key = (model.name, method)
        if key in visiting:
            return  # recursion (direct or mutual): already on this path
        visiting.add(key)
        try:
            for stmt in fn.body:
                self._walk_node(
                    stmt, model, held, entry, on_acquire, on_call, visiting, depth
                )
        finally:
            visiting.discard(key)

    def _lock_of(self, model: ClassModel, expr: ast.expr) -> LockSite | None:
        owner, attr = self.resolve_chain(model, expr)
        if owner is None or attr is None:
            return None
        return owner.locks.get(attr)

    def _walk_node(
        self,
        node: ast.AST,
        model: ClassModel,
        held: tuple[LockSite, ...],
        entry: str,
        on_acquire,
        on_call,
        visiting: set,
        depth: int,
    ) -> None:
        if isinstance(node, ast.With):
            inner = held
            for item in node.items:
                lock = self._lock_of(model, item.context_expr)
                if lock is not None:
                    if on_acquire is not None:
                        on_acquire(
                            AcquireEvent(
                                lock=lock,
                                held=inner,
                                source=model.source,
                                node=item.context_expr,
                                entry=entry,
                            )
                        )
                    inner = inner + (lock,)
                else:
                    self._walk_node(
                        item.context_expr, model, inner, entry,
                        on_acquire, on_call, visiting, depth,
                    )
            for stmt in node.body:
                self._walk_node(
                    stmt, model, inner, entry, on_acquire, on_call, visiting, depth
                )
            return
        if isinstance(node, ast.Call):
            if on_call is not None and held:
                on_call(
                    CallEvent(call=node, held=held, source=model.source, entry=entry)
                )
            self._follow_call(
                node, model, held, entry, on_acquire, on_call, visiting, depth
            )
            for child in ast.iter_child_nodes(node):
                self._walk_node(
                    child, model, held, entry, on_acquire, on_call, visiting, depth
                )
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # nested defs run later, not under this region's locks
            return
        for child in ast.iter_child_nodes(node):
            self._walk_node(
                child, model, held, entry, on_acquire, on_call, visiting, depth
            )

    def _follow_call(
        self,
        call: ast.Call,
        model: ClassModel,
        held: tuple[LockSite, ...],
        entry: str,
        on_acquire,
        on_call,
        visiting: set,
        depth: int,
    ) -> None:
        """Descend into ``self.m()`` / ``self.a.m()`` targets so locks
        acquired below the call surface still register against the
        caller's held set. Only followed while locks are held (or to
        discover acquisitions), bounded by depth and a visiting set."""
        fn = call.func
        if not isinstance(fn, ast.Attribute):
            return
        owner, method = self.resolve_chain(model, fn)
        if owner is None or method is None:
            return
        if method not in owner.methods:
            return
        self._walk_method(
            owner, method, held, entry, on_acquire, on_call, visiting, depth + 1
        )


def iter_lock_sites(model: LockModel) -> Iterator[LockSite]:
    for cls in model.classes.values():
        yield from cls.locks.values()
