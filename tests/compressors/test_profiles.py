"""Calibrated paper profiles: internal consistency with Tables IV/VII."""

from __future__ import annotations

import pytest

from repro.compressors.profiles import (
    DATASET_KEYS,
    PAPER_PROFILES,
    get_profile,
    list_profiles,
)
from repro.errors import UnknownCompressorError
from repro.util.units import KB, MB


def test_all_profiles_cover_all_datasets():
    for profile in PAPER_PROFILES.values():
        for key in DATASET_KEYS:
            assert profile.ratio_for(key) >= 1.0


def test_table4_ratios_encoded():
    """Spot-check Table IV's published ratios."""
    assert get_profile("lzsse8").ratio_for("em") == pytest.approx(2.3)
    assert get_profile("lz4hc").ratio_for("lung") == pytest.approx(6.5)
    assert get_profile("lzma").ratio_for("language") == pytest.approx(4.0)
    assert get_profile("xz").ratio_for("lung") == pytest.approx(10.8)
    for name in ("lzsse8", "lz4hc", "lzma", "xz", "brotli"):
        assert get_profile(name).ratio_for("imagenet") == pytest.approx(1.0)


def test_table7a_costs_on_em_files():
    """1.6 MB EM files on SKX: the calibration targets of Table VII(a)."""
    size = int(1.6 * MB)
    assert get_profile("lzsse8").decompress_cost(size) == pytest.approx(
        619e-6, rel=0.05
    )
    assert get_profile("lz4hc").decompress_cost(size) == pytest.approx(
        858e-6, rel=0.05
    )
    assert get_profile("brotli").decompress_cost(size) == pytest.approx(
        4741e-6, rel=0.05
    )
    assert get_profile("lzma").decompress_cost(size) == pytest.approx(
        41261e-6, rel=0.05
    )


def test_table7b_costs_on_tokamak_files():
    """1.2 KB tokamak files: the same (overhead, bandwidth) pairs must
    land Table VII(b)'s microsecond-scale costs."""
    size = 1200
    assert get_profile("lzf").decompress_cost(size) == pytest.approx(
        0.41e-6, rel=0.4
    )
    assert get_profile("lzsse8").decompress_cost(size) == pytest.approx(
        0.43e-6, rel=0.6
    )
    assert get_profile("brotli").decompress_cost(size) == pytest.approx(
        5.23e-6, rel=0.2
    )


def test_power9_scaling():
    """lzsse8 is SSE-specific (heavily penalized on POWER9); lz4hc is
    portable (mild penalty) — why the paper picks lz4hc there."""
    size = int(1.6 * MB)
    lzsse8 = get_profile("lzsse8")
    lz4hc = get_profile("lz4hc")
    assert lzsse8.decompress_cost(size, "power9") > 2 * lzsse8.decompress_cost(size)
    assert lz4hc.decompress_cost(size, "power9") == pytest.approx(
        942e-6, rel=0.05
    )
    # On POWER9 lz4hc beats lzsse8 — the architecture flip of §VII-D.
    assert lz4hc.decompress_cost(size, "power9") < lzsse8.decompress_cost(
        size, "power9"
    )


def test_throughput_is_reciprocal_cost():
    p = get_profile("lz4hc")
    size = 512 * KB
    assert p.decompress_throughput(size) == pytest.approx(
        1.0 / p.decompress_cost(size)
    )


def test_ratio_ordering_matches_paper():
    """lzma/xz compress hardest, lzsse8/lz4hc fastest — Figure 7's
    two clusters."""
    for dataset in ("em", "lung", "astro", "language"):
        assert get_profile("lzma").ratio_for(dataset) > get_profile(
            "lzsse8"
        ).ratio_for(dataset)
        assert get_profile("lzma").decompress_cost(1 * MB) > get_profile(
            "lzsse8"
        ).decompress_cost(1 * MB)


def test_unknown_profile_raises():
    with pytest.raises(UnknownCompressorError):
        get_profile("snappy")
    with pytest.raises(UnknownCompressorError):
        get_profile("lzma").ratio_for("nonexistent-dataset")


def test_list_profiles_sorted():
    names = list_profiles()
    assert names == sorted(names)
    assert "lzsse8" in names
