"""The fault-injection layer: rule matching, seeded determinism, the
drop/delay/duplicate actions, and rank-death semantics."""

from __future__ import annotations

import threading
import time

import pytest

from repro.comm.chaos import ChaosWorld, FaultPlan
from repro.comm.launcher import run_parallel
from repro.errors import CommError, RankDeadError


class TestRules:
    def test_drop_consumes_its_budget_then_delivers(self):
        plan = FaultPlan(seed=1).drop(source=0, dest=1, tag=7, times=1)
        world = ChaosWorld(2, plan)
        c0, c1 = world.comm(0), world.comm(1)
        c0.send("lost", 1, tag=7)
        c0.send("kept", 1, tag=7)
        assert c1.recv(source=0, tag=7, timeout=2) == "kept"
        assert plan.stats.dropped == 1

    def test_drop_matches_only_its_predicate(self):
        plan = FaultPlan(seed=1).drop(tag=9, times=None)
        world = ChaosWorld(2, plan)
        c0, c1 = world.comm(0), world.comm(1)
        c0.send("a", 1, tag=3)  # different tag: untouched
        assert c1.recv(source=0, tag=3, timeout=2) == "a"
        c0.send("b", 1, tag=9)
        with pytest.raises(CommError):
            c1.recv(source=0, tag=9, timeout=0.1)

    def test_min_tag_targets_reply_band(self):
        """min_tag isolates the daemon's reply tags (all >= 0x1000)
        from its request tag, the way the failover tests use it."""
        plan = FaultPlan(seed=1).drop(min_tag=0x1000, times=1)
        world = ChaosWorld(2, plan)
        c0, c1 = world.comm(0), world.comm(1)
        c0.send("request", 1, tag=0x0FA0)  # below the band: delivered
        assert c1.recv(source=0, tag=0x0FA0, timeout=2) == "request"
        c0.send("reply", 1, tag=0x1234)  # first in band: dropped
        with pytest.raises(CommError):
            c1.recv(source=0, tag=0x1234, timeout=0.1)

    def test_delay_delivers_late_not_never(self):
        plan = FaultPlan(seed=1).delay(0.25, tag=5, times=1)
        world = ChaosWorld(2, plan)
        c0, c1 = world.comm(0), world.comm(1)
        c0.send("slow", 1, tag=5)
        with pytest.raises(CommError):
            c1.recv(source=0, tag=5, timeout=0.05)  # not yet
        assert c1.recv(source=0, tag=5, timeout=2) == "slow"
        assert plan.stats.delayed == 1

    def test_duplicate_delivers_twice(self):
        plan = FaultPlan(seed=1).duplicate(tag=4, times=1)
        world = ChaosWorld(2, plan)
        c0, c1 = world.comm(0), world.comm(1)
        c0.send("twin", 1, tag=4)
        assert c1.recv(source=0, tag=4, timeout=2) == "twin"
        assert c1.recv(source=0, tag=4, timeout=2) == "twin"
        assert plan.stats.duplicated == 1

    def test_first_matching_rule_wins(self):
        plan = (
            FaultPlan(seed=1)
            .drop(tag=6, times=1)
            .duplicate(tag=6, times=None)
        )
        world = ChaosWorld(2, plan)
        c0, c1 = world.comm(0), world.comm(1)
        c0.send("one", 1, tag=6)  # dropped by the first rule
        c0.send("two", 1, tag=6)  # first rule spent: duplicated
        assert c1.recv(source=0, tag=6, timeout=2) == "two"
        assert c1.recv(source=0, tag=6, timeout=2) == "two"


class TestDeterminism:
    def _decisions(self, seed: int) -> list[str]:
        plan = FaultPlan(seed=seed).drop(probability=0.4, times=None)
        return [plan.decide(0, 1, 0)[0] for _ in range(128)]

    def test_same_seed_same_schedule(self):
        assert self._decisions(42) == self._decisions(42)

    def test_probability_actually_mixes(self):
        outcomes = set(self._decisions(42))
        assert outcomes == {"drop", "deliver"}

    def test_different_seeds_diverge(self):
        assert self._decisions(1) != self._decisions(2)


class TestRankDeath:
    def test_dead_rank_operations_raise(self):
        plan = FaultPlan().kill(1)
        world = ChaosWorld(2, plan)
        world.kill(1)
        dead = world.comm(1)
        with pytest.raises(RankDeadError):
            dead.send("x", 0)
        with pytest.raises(RankDeadError):
            dead.recv(source=0, timeout=1)
        with pytest.raises(RankDeadError):
            dead.barrier(timeout=1)

    def test_sends_to_dead_rank_are_blackholed(self):
        world = ChaosWorld(2, FaultPlan())
        world.kill(1)
        world.comm(0).send("into the void", 1)  # must not raise
        assert world.plan.stats.blackholed == 1

    def test_kill_wakes_a_parked_recv(self):
        world = ChaosWorld(2, FaultPlan())
        comm = world.comm(1)
        caught: dict[str, BaseException] = {}

        def park() -> None:
            try:
                comm.recv(source=0, timeout=30)
            except BaseException as exc:  # noqa: BLE001 - asserted below
                caught["exc"] = exc

        thread = threading.Thread(target=park, daemon=True)
        thread.start()
        time.sleep(0.1)
        start = time.perf_counter()
        world.kill(1)
        thread.join(5)
        assert not thread.is_alive()
        assert time.perf_counter() - start < 5
        assert isinstance(caught["exc"], RankDeadError)

    def test_kill_after_sends_triggers_mid_run(self):
        plan = FaultPlan().kill(0, after_sends=2)
        world = ChaosWorld(2, plan)
        c0, c1 = world.comm(0), world.comm(1)
        c0.send("a", 1, tag=1)
        c0.send("b", 1, tag=1)  # crosses the threshold; still delivered
        with pytest.raises(RankDeadError):
            c0.send("c", 1, tag=1)
        assert c1.recv(source=0, tag=1, timeout=2) == "a"
        assert c1.recv(source=0, tag=1, timeout=2) == "b"

    def test_collective_with_dead_rank_times_out_for_peers(self):
        """Peers of a dead rank see the MPI signature of a crashed node:
        the collective never completes."""
        world = ChaosWorld(2, FaultPlan())
        world.kill(1)
        with pytest.raises(CommError):
            world.comm(0).barrier(timeout=0.3)


class TestPartition:
    def test_messages_across_the_cut_are_swallowed(self):
        plan = FaultPlan()
        world = ChaosWorld(3, plan)
        plan.partition([0, 1], [2])
        world.comm(0).send("lost", 2, tag=1)
        with pytest.raises(CommError):
            world.comm(2).recv(source=0, tag=1, timeout=0.1)
        assert plan.stats.partitioned == 1
        # same-side traffic is untouched
        world.comm(0).send("kept", 1, tag=1)
        assert world.comm(1).recv(source=0, tag=1, timeout=2) == "kept"

    def test_heal_resumes_delivery_without_replay(self):
        plan = FaultPlan()
        world = ChaosWorld(2, plan)
        cut = plan.partition([0], [1])
        world.comm(0).send("swallowed", 1, tag=1)
        plan.heal(cut=cut)
        world.comm(0).send("after", 1, tag=1)
        # the split-era message stays lost; only post-heal sends arrive
        assert world.comm(1).recv(source=0, tag=1, timeout=2) == "after"
        with pytest.raises(CommError):
            world.comm(1).recv(source=0, tag=1, timeout=0.1)

    def test_asymmetric_cut_blocks_one_direction_only(self):
        plan = FaultPlan()
        world = ChaosWorld(2, plan)
        plan.asymmetric_partition(0, 1)
        world.comm(0).send("vanishes", 1, tag=1)
        with pytest.raises(CommError):
            world.comm(1).recv(source=0, tag=1, timeout=0.1)
        world.comm(1).send("heard", 0, tag=1)
        assert world.comm(0).recv(source=1, tag=1, timeout=2) == "heard"

    def test_heal_by_cut_id_leaves_other_cuts_up(self):
        plan = FaultPlan()
        world = ChaosWorld(3, plan)
        cut_a = plan.asymmetric_partition(0, 1)
        plan.asymmetric_partition(0, 2)
        plan.heal(cut=cut_a)
        assert not plan.is_partitioned(0, 1)
        assert plan.is_partitioned(0, 2)
        plan.heal()
        assert not plan.is_partitioned(0, 2)

    def test_parked_recv_survives_partition_and_heal(self):
        """A recv parked across the cut is *not* woken by partition or
        heal — the peer is alive, just unreachable — and completes once
        a post-heal send arrives. No error leaks into the parked
        thread, and nothing stays parked after heal."""
        plan = FaultPlan()
        world = ChaosWorld(2, plan)
        comm = world.comm(1)
        got: dict[str, object] = {}

        def park() -> None:
            got["msg"] = comm.recv(source=0, tag=1, timeout=30)

        thread = threading.Thread(target=park, daemon=True)
        thread.start()
        time.sleep(0.05)
        cut = plan.partition([0], [1])
        world.comm(0).send("split-era", 1, tag=1)  # swallowed
        time.sleep(0.05)
        assert thread.is_alive()  # still parked: partition is not death
        plan.heal(cut=cut)
        time.sleep(0.05)
        assert thread.is_alive()  # heal replays nothing
        world.comm(0).send("post-heal", 1, tag=1)
        thread.join(5)
        assert not thread.is_alive()
        assert got["msg"] == "post-heal"

    def test_kill_during_partition_still_wakes_parked_recv(self):
        """Rank death takes precedence over an active cut: a parked
        recv on the dying rank is woken with RankDeadError even while
        partitioned away from its peer."""
        plan = FaultPlan()
        world = ChaosWorld(2, plan)
        comm = world.comm(1)
        caught: dict[str, BaseException] = {}

        def park() -> None:
            try:
                comm.recv(source=0, tag=1, timeout=30)
            except BaseException as exc:  # noqa: BLE001 - asserted below
                caught["exc"] = exc

        thread = threading.Thread(target=park, daemon=True)
        thread.start()
        time.sleep(0.05)
        plan.partition([0], [1])
        world.kill(1)
        thread.join(5)
        assert not thread.is_alive()
        assert isinstance(caught["exc"], RankDeadError)

    def test_blackhole_beats_partition_accounting(self):
        """Sends to a dead rank across a cut count as blackholed, not
        partitioned — death is checked first."""
        plan = FaultPlan()
        world = ChaosWorld(2, plan)
        plan.partition([0], [1])
        world.kill(1)
        world.comm(0).send("void", 1, tag=1)
        assert plan.stats.blackholed == 1
        assert plan.stats.partitioned == 0

    def test_partition_validates_groups(self):
        plan = FaultPlan()
        with pytest.raises(ValueError):
            plan.partition([0, 1])
        with pytest.raises(ValueError):
            plan.partition([0, 1], [1, 2])


class TestRunParallelIntegration:
    def test_chaos_world_drops_into_the_launcher(self):
        plan = FaultPlan(seed=3).drop(tag=2, times=1)
        world = ChaosWorld(2, plan)

        def body(comm):
            if comm.rank == 0:
                comm.send("lost", 1, tag=2)
                comm.send("kept", 1, tag=2)
                return None
            return comm.recv(source=0, tag=2, timeout=5)

        results = run_parallel(body, 2, world=world, timeout=15)
        assert results[1] == "kept"
        assert plan.stats.dropped == 1
