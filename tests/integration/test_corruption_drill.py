"""The integrity acceptance drill: seeded corruption of K records per
rank, a scrub-then-train epoch that completes with byte-identical
reads, and counters proving every hit was detected and healed — plus
the unrepairable case surfacing as a typed error naming the path."""

from __future__ import annotations

import random
import shutil

import numpy as np
import pytest

from repro.comm.launcher import run_parallel
from repro.errors import DataIntegrityError
from repro.fanstore.corruption import corrupt_backend, corrupt_record
from repro.fanstore.daemon import DaemonConfig
from repro.fanstore.faults import CheckpointManager
from repro.fanstore.layout import read_partition
from repro.fanstore.metadata import normalize
from repro.fanstore.prepare import PreparedDataset
from repro.fanstore.store import FanStore
from repro.training.loader import SyncLoader, list_training_files
from repro.training.models import MLP
from repro.training.trainer import DataParallelTrainer, make_array_collate

NODES = 3
K = 2  # records corrupted per rank
EPOCHS = 2
FEATURES = 8
CLASSES = 2

SEEDS = (11, 22, 33)
seeds = pytest.mark.parametrize("seed", SEEDS, ids=[f"seed{s}" for s in SEEDS])

#: tight budgets so ladder walks cost milliseconds, not default timeouts
FAST = dict(
    request_timeout=0.4,
    max_retries=1,
    retry_backoff_base=0.01,
    retry_backoff_max=0.05,
)


def decoder(raw: bytes, path: str):
    arr = np.frombuffer(raw[8 : 8 + FEATURES], dtype=np.uint8)
    features = arr.astype(np.float64) / 255.0
    return features, int(arr.sum()) % CLASSES


@pytest.fixture(scope="module")
def originals(raw_dataset_dir):
    """store path → raw bytes, for byte-identity assertions."""
    expected = {}
    train = raw_dataset_dir / "train"
    for p in sorted(train.rglob("*")):
        if p.is_file():
            expected[normalize(str(p.relative_to(train)))] = p.read_bytes()
    for p in sorted((raw_dataset_dir / "val").iterdir()):
        if p.is_file():
            expected[f"val/{p.name}"] = p.read_bytes()
    return expected


class TestCorruptionDrill:
    @seeds
    def test_scrub_heals_k_records_per_rank_then_training_completes(
        self, seed, prepared_dataset, originals, tmp_path
    ):
        ckpt_dir = tmp_path / "ckpt"

        def body(comm):
            config = DaemonConfig(**FAST)
            with FanStore(prepared_dataset, comm=comm, config=config) as fs:
                # each rank corrupts K of the records it is home for —
                # its *staged* copies only; the shared FS stays good
                local = sorted(
                    r.path
                    for r in fs.daemon.metadata.local_records(comm.rank)
                )
                victims = random.Random(seed + comm.rank).sample(local, K)
                for i, path in enumerate(victims):
                    corrupt_backend(
                        fs.daemon.backend, path, seed=seed + comm.rank + i
                    )

                # scrub first: the damage is found and healed before the
                # epoch ever touches it, so counts are exactly K
                report = fs.scrub()
                assert report.corrupted == K, report
                assert report.repaired == K, report
                assert report.clean
                # no cross-rank reads until every rank finished healing,
                # so one record is never detected by two threads at once
                comm.barrier()

                # byte-identical epoch reads across the whole namespace
                data = {
                    rec.path: fs.client.read_file(rec.path)
                    for rec in fs.daemon.metadata.walk_files()
                }
                assert data == originals

                # and training completes on the healed store
                files = [
                    p for p in list_training_files(fs.client)
                    if p.startswith("cls")
                ]
                loader = SyncLoader(
                    fs.client, files, batch_size=6, epochs=EPOCHS,
                    rank=comm.rank, world_size=comm.size, seed=1,
                    decoder=decoder,
                )
                trainer = DataParallelTrainer(
                    MLP([FEATURES, 6, CLASSES], seed=13),
                    loader,
                    make_array_collate((FEATURES,), CLASSES),
                    comm=comm,
                    lr=0.2,
                    checkpoints=CheckpointManager(ckpt_dir),
                )
                train_report = trainer.train()
                assert train_report.epochs_completed == EPOCHS
                stats = fs.daemon.stats
                return (
                    stats.corruption_detected,
                    stats.corruption_repaired,
                    trainer.model.get_flat_params(),
                )

        results = run_parallel(body, NODES, timeout=300)
        for detected, repaired, params in results:
            assert detected == K  # nothing double-counted by the reads
            assert repaired == K
            np.testing.assert_array_equal(params, results[0][2])

    @seeds
    def test_read_path_alone_heals_without_scrubbing(
        self, seed, prepared_dataset, originals
    ):
        """No scrubber: verify-on-read catches the corruption the
        moment the epoch reaches it and the reads still come back
        byte-identical."""

        def body(comm):
            config = DaemonConfig(**FAST)
            with FanStore(prepared_dataset, comm=comm, config=config) as fs:
                local = sorted(
                    r.path
                    for r in fs.daemon.metadata.local_records(comm.rank)
                )
                victims = random.Random(seed * 7 + comm.rank).sample(local, K)
                for i, path in enumerate(victims):
                    corrupt_backend(
                        fs.daemon.backend, path, seed=seed + comm.rank + i
                    )
                data = {
                    rec.path: fs.client.read_file(rec.path)
                    for rec in fs.daemon.metadata.walk_files()
                }
                assert data == originals
                stats = fs.daemon.stats
                # every victim was healed by whoever read it first (this
                # rank locally, or a peer via the serve path + ladder);
                # this rank's own counters cover its local reads
                return stats.corruption_detected, stats.corruption_repaired

        results = run_parallel(body, NODES, timeout=300)
        total_detected = sum(d for d, _ in results)
        total_repaired = sum(r for _, r in results)
        assert total_detected == total_repaired
        assert total_detected >= NODES * K


class TestUnrepairable:
    def test_typed_error_names_the_path(self, prepared_dataset, tmp_path):
        """Both the staged copy and the shared-FS floor are corrupt:
        the ladder is exhausted and the failure is a DataIntegrityError
        (an EIO-carrying OSError) naming the exact record."""
        bad_root = tmp_path / "bad"
        shutil.copytree(prepared_dataset.root, bad_root)
        prepared = PreparedDataset.load(bad_root)
        victim = read_partition(
            prepared.partition_paths()[0], with_data=False
        )[0].path
        corrupt_record(prepared, victim, seed=1)

        with FanStore(prepared) as fs:
            report = fs.scrub()
            assert report.unrepaired == [victim]
            assert not report.clean
            with pytest.raises(DataIntegrityError) as exc_info:
                fs.client.read_file(victim)
            assert exc_info.value.filename == victim
            # every other record is untouched and readable
            for rec in fs.daemon.metadata.walk_files():
                if rec.path != victim:
                    fs.client.read_file(rec.path)
