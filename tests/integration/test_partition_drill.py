"""The partition-tolerance acceptance drill.

A 3-rank cluster is split 2|1 by the chaos layer. The majority side
must keep full service: convict the unreachable rank behind its quorum,
re-replicate every copy it held, and elect a writer. The minority side
must freeze: no convictions, no re-replication storm, reads degraded to
the shared FS, mutations fenced off. After the cut heals, the stale
minority's first write is rejected by epoch fencing, the rank rejoins
through the membership protocol, and heal anti-entropy reconverges the
placements digest-clean — garbage-collecting every split-era duplicate.

A second drill flaps the link instead of cutting it, and asserts the
hysteresis dampers turn the flapping into zero membership churn.
"""

from __future__ import annotations

import threading
import time
import zlib

import pytest

from repro.comm.chaos import ChaosWorld, FaultPlan
from repro.comm.launcher import run_parallel
from repro.errors import StaleEpochError
from repro.fanstore.daemon import TAG_DAEMON, DaemonConfig
from repro.fanstore.membership import MembershipConfig, RankState
from repro.fanstore.metadata import normalize
from repro.fanstore.store import FanStore

NODES = 3
MINORITY = 2  # the rank cut off alone
CONDUCTOR = 0  # applies the cut, heals it, serves the rejoin

PARTITION_SEEDS = (7, 77, 777)
seeds = pytest.mark.parametrize(
    "seed", PARTITION_SEEDS, ids=[f"seed{s}" for s in PARTITION_SEEDS]
)

#: tight request budgets so the degraded-read ladder completes quickly
FAST = dict(
    request_timeout=0.4,
    max_retries=1,
    retry_backoff_base=0.01,
    retry_backoff_max=0.05,
)

#: dead_after leaves headroom over the CI boxes' scheduling stalls,
#: and flap_damper adds promotion hysteresis on top: the rejoin counts
#: as a flap, so re-convicting the freshly promoted rank takes
#: dead_after + flap_damper of *extra* silence. Without it, a stall
#: longer than dead_after right after the promotion re-convicts the
#: rank, bumps the epoch past 2, and wedges the drill's single-rejoin
#: choreography (observed on 1-core runners: final view all-ALIVE at
#: epoch 3 with the promoted rank on its recovery version).
MCFG = MembershipConfig(
    heartbeat_interval=0.05,
    suspect_after=0.3,
    dead_after=3.5,
    isolation_damper=0.2,
    flap_damper=2.0,
)

#: copies the majority must restore once it convicts MINORITY: the 4
#: files homed on it plus the 4 replicas it held of partition 1
#: (extra_partition_budget=1: rank r replicates partition r-1).
LOST_COPIES = 8

#: split-era backend copies heal reconciliation must GC off MINORITY:
#: its 4 partition-1 replica copies (duty re-homed to rank 0 by the
#: majority's repair) plus the 1 degraded-read promotion made while
#: isolated.
SPLIT_DUPLICATES = 5

_TAG_DONE = 0x0D0F  # pairwise teardown drain (no collective barrier)
POLL = 0.01


def _rank0_owned(prefix: str) -> str:
    """A runtime output path whose metadata owner hashes to rank 0."""
    for i in range(1000):
        path = f"out/{prefix}{i}.bin"
        if zlib.crc32(path.encode("utf-8")) % NODES == 0:
            return path
    raise AssertionError("no rank-0-owned path found")


FENCED_PATH = _rank0_owned("fenced")  # written while epoch-stale
OUT_PATH = _rank0_owned("healed")  # written after rejoin


def _await(predicate, deadline_s, what):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(POLL)
    detail = what() if callable(what) else what
    raise AssertionError(f"timed out waiting for {detail}")


@pytest.fixture(scope="module")
def originals(raw_dataset_dir):
    """store path → raw bytes, for byte-identity assertions."""
    expected = {}
    train = raw_dataset_dir / "train"
    for p in sorted(train.rglob("*")):
        if p.is_file():
            expected[normalize(str(p.relative_to(train)))] = p.read_bytes()
    for p in sorted((raw_dataset_dir / "val").iterdir()):
        if p.is_file():
            expected[f"val/{p.name}"] = p.read_bytes()
    return expected


def _read_dataset(fs, originals):
    return {p: fs.client.read_file(p) for p in originals}


def _drain(comm):
    """Pairwise teardown: keep serving until every peer is done too."""
    others = [r for r in range(NODES) if r != comm.rank]
    for other in others:
        comm.send("done", other, _TAG_DONE)
    for other in others:
        comm.recv(other, _TAG_DONE, timeout=120)


class TestPartitionDrill:
    """Cut → majority serves, minority freezes → heal → fence → rejoin
    → anti-entropy reconvergence."""

    @seeds
    def test_split_brain_heal_reconverge(
        self, seed, prepared_dataset, originals
    ):
        config = DaemonConfig(**FAST, extra_partition_budget=1)
        # light chaos on the daemon tag, well inside the request timeout
        plan = FaultPlan(seed).delay(0.02, tag=TAG_DAEMON, times=4)
        world = ChaosWorld(NODES, plan)

        minority_checked = threading.Event()
        healed = threading.Event()
        fenced = threading.Event()
        written = threading.Event()

        def body(comm):
            fs = FanStore(
                prepared_dataset, comm=comm, config=config, membership=MCFG
            )
            det = fs.membership
            stats = fs.daemon.stats

            # -- healthy phase: every rank reads everything --------------
            assert _read_dataset(fs, originals) == originals
            comm.barrier()

            if comm.rank == CONDUCTOR:
                cut = plan.partition([0, 1], [MINORITY])

            if comm.rank == MINORITY:
                # -- minority: freeze, degrade, never convict ------------
                _await(lambda: fs.isolated, 30, "isolation to engage")
                assert det.stats.isolated_entries == 1
                assert not det.has_quorum()
                assert det.elect_writer() is None
                # convictions were *denied*, not fired: nothing moved
                _await(
                    lambda: det.stats.quorum_denied_convictions == 2,
                    30, "both overdue peers to be frozen",
                )
                assert det.stats.convictions == 0
                assert not det.view.dead_ranks()
                assert det.view.epoch == 0
                assert stats.rereplicated_records == 0
                # reads degrade to the shared FS, byte-exact
                victim = min(
                    r.path for r in fs.daemon.metadata.records()
                    if not r.is_broadcast and r.home_rank == 0
                )
                assert fs.client.read_file(victim) == originals[victim]
                assert stats.degraded_reads >= 1
                minority_checked.set()

                # -- heal: the stale epoch is fenced ---------------------
                assert healed.wait(60)
                with pytest.raises(StaleEpochError):
                    fs.client.write_file(FENCED_PATH, b"stale" * 10)
                assert stats.stale_epoch_aborts == 1
                # the bytes are safe on the writer (the path stays
                # unsealed); nothing leaked to the majority
                assert normalize(FENCED_PATH) in fs.daemon.backend
                fenced.set()

                # -- rejoin through the protocol -------------------------
                snapshot = det.request_join(CONDUCTOR)
                fs.daemon.apply_membership_snapshot(snapshot)
                det.request_promotion(CONDUCTOR)
            else:
                # -- majority: convict behind quorum, keep serving -------
                _await(
                    lambda: det.view.state(MINORITY) == RankState.DEAD,
                    30, "conviction of the cut-off rank",
                )
                assert det.stats.convictions == 1
                assert det.view.epoch == 1
                assert det.has_quorum()
                assert det.elect_writer() == CONDUCTOR
                _await(
                    lambda: stats.rereplicated_records
                    + stats.rereplication_failed >= LOST_COPIES // 2,
                    30, "re-replication to finish",
                )
                assert stats.rereplication_failed == 0
                assert stats.rereplicated_records == LOST_COPIES // 2
                assert _read_dataset(fs, originals) == originals

                if comm.rank == CONDUCTOR:
                    assert minority_checked.wait(120)
                    plan.heal(cut=cut)
                    healed.set()
                    _await(
                        lambda: stats.fenced_rejects >= 1,
                        60, "the stale write to be fenced",
                    )
                    assert fenced.wait(60)

            # -- everyone: one writer, one epoch history -----------------
            _await(
                lambda: det.view.state(MINORITY) == RankState.ALIVE
                and det.view.epoch == 2,
                90, lambda: "the rejoined rank to be promoted everywhere "
                f"(rank {comm.rank}: view={det.view!r}, "
                f"convictions={det.stats.convictions})",
            )

            if comm.rank == MINORITY:
                # -- heal anti-entropy: reconverge, GC the split era -----
                _await(lambda: not fs.isolated, 60, "isolation to exit")
                assert det.stats.isolated_exits == 1
                _await(
                    lambda: stats.reconciled_records > 0,
                    60, "heal reconciliation to run",
                )
                assert stats.duplicate_replicas_dropped == SPLIT_DUPLICATES
                # mutations thaw: the same writer path now succeeds
                fs.client.write_file(OUT_PATH, b"healed" * 10)
                written.set()
            else:
                assert written.wait(120)
                assert fs.client.read_file(OUT_PATH) == b"healed" * 10
                # the fenced write never became globally discoverable
                assert fs.daemon.stat_any(FENCED_PATH) is None
                if comm.rank == CONDUCTOR:
                    assert det.stats.joins_served == 1
                    assert det.stats.promotions == 1

            assert det.elect_writer() == CONDUCTOR
            assert _read_dataset(fs, originals) == originals
            assert fs.scrub(repair=False).clean

            own = fs.export_ownership()
            _drain(comm)
            fs.shutdown()
            return {
                "rank": comm.rank,
                "epoch": det.view.epoch,
                "writer": CONDUCTOR,
                "rereplicated": stats.rereplicated_records,
                "frozen": stats.rereplications_frozen,
                "convictions": det.stats.convictions,
                "isolated_entries": det.stats.isolated_entries,
                "duplicates_dropped": stats.duplicate_replicas_dropped,
                "ownership": {
                    p: own["files"][p] for p in originals
                },
            }

        results = run_parallel(body, NODES, world=world, timeout=300)
        by_rank = {r["rank"]: r for r in results}

        # one membership history: conviction bump + promotion bump
        assert {r["epoch"] for r in results} == {2}
        # every lost copy was restored by the majority, none elsewhere
        majority = [by_rank[0], by_rank[1]]
        assert sum(r["rereplicated"] for r in majority) == LOST_COPIES
        assert by_rank[MINORITY]["rereplicated"] == 0
        assert by_rank[MINORITY]["frozen"] == 0  # denied, never fired
        assert by_rank[MINORITY]["convictions"] == 0
        assert by_rank[MINORITY]["isolated_entries"] == 1
        assert all(r["convictions"] == 1 for r in majority)
        assert all(r["duplicates_dropped"] == 0 for r in majority)
        assert by_rank[MINORITY]["duplicates_dropped"] == SPLIT_DUPLICATES
        # placements reconverged: identical ownership on every rank
        reference = by_rank[0]["ownership"]
        assert by_rank[1]["ownership"] == reference
        assert by_rank[MINORITY]["ownership"] == reference


#: flap-drill thresholds: the isolation damper absorbs every minority
#: episode, and the flap damper raises the conviction threshold past
#: the final (otherwise convicting) outage.
MCFG_FLAP = MembershipConfig(
    heartbeat_interval=0.05,
    suspect_after=0.3,
    dead_after=2.0,
    isolation_damper=30.0,
    flap_damper=2.0,
    flap_window=60.0,
)

FLAP_CYCLES = 3
FLAP_UP = 0.45  # cut duration: past suspect_after, far from dead_after
FLAP_DOWN = 0.45
#: the final outage: would convict at the base threshold (2.0) but not
#: at the flap-raised one (2.0 + 2.0 per recent flap).
FINAL_OUTAGE = 2.6


class TestFlappingLink:
    """A flapping link must cause suspicion churn only: the hysteresis
    dampers keep convictions, epochs and re-replication all at zero."""

    @seeds
    def test_flapping_is_damped_to_zero_churn(
        self, seed, prepared_dataset, originals
    ):
        config = DaemonConfig(**FAST, extra_partition_budget=1)
        plan = FaultPlan(seed)
        world = ChaosWorld(NODES, plan)
        storm_done = threading.Event()

        def body(comm):
            fs = FanStore(
                prepared_dataset, comm=comm, config=config,
                membership=MCFG_FLAP,
            )
            det = fs.membership
            stats = fs.daemon.stats
            assert _read_dataset(fs, originals) == originals
            comm.barrier()

            if comm.rank == CONDUCTOR:
                for _ in range(FLAP_CYCLES):
                    cut = plan.partition([0, 1], [MINORITY])
                    time.sleep(FLAP_UP)
                    plan.heal(cut=cut)
                    time.sleep(FLAP_DOWN)
                cut = plan.partition([0, 1], [MINORITY])
                time.sleep(FINAL_OUTAGE)
                plan.heal(cut=cut)
                storm_done.set()
            else:
                assert storm_done.wait(120)

            # stabilize: everyone hears everyone again
            _await(
                lambda: all(
                    det.view.state(r) == RankState.ALIVE
                    for r in range(NODES)
                ),
                30, "the flapped link to stabilize",
            )
            comm.barrier()

            # zero churn: no convictions, no epochs, no re-replication
            assert det.stats.convictions == 0
            assert det.view.epoch == 0
            assert stats.rereplicated_records == 0
            assert stats.rereplications_frozen == 0
            assert det.stats.isolated_entries == 0
            if comm.rank == MINORITY:
                # every quorum-loss episode died in the damper
                assert det.stats.damped_flaps >= 1
            else:
                # the churn was visible — and absorbed — as suspicion
                assert det.stats.suspicions >= 1
                assert det.stats.recoveries >= 1
            assert det.elect_writer() == CONDUCTOR
            assert _read_dataset(fs, originals) == originals

            comm.barrier()
            fs.shutdown()  # epoch 0: the normal collective teardown
            return {
                "convictions": det.stats.convictions,
                "epoch": det.view.epoch,
                "suspicions": det.stats.suspicions,
            }

        results = run_parallel(body, NODES, world=world, timeout=300)
        assert {r["epoch"] for r in results} == {0}
        assert all(r["convictions"] == 0 for r in results)
        # the drill is only meaningful if the flapping actually bit
        assert sum(r["suspicions"] for r in results) >= FLAP_CYCLES
