"""Data loaders: global view, sharding, determinism, prefetch."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ReproError
from repro.training.loader import (
    AsyncLoader,
    SyncLoader,
    list_training_files,
)


@pytest.fixture()
def client(single_store):
    return single_store.client


@pytest.fixture()
def files(client):
    return [p for p in list_training_files(client) if p.startswith("cls")]


class TestListTrainingFiles:
    def test_recursive_and_sorted(self, client):
        files = list_training_files(client)
        assert files == sorted(files)
        assert len(files) == 15

    def test_subdirectory_scope(self, client):
        files = list_training_files(client, "cls0000")
        assert all(f.startswith("cls0000/") for f in files)

    def test_empty_raises(self, client):
        with pytest.raises(ReproError):
            list_training_files(client, "val/nothing-here") if client.exists(
                "val/nothing-here"
            ) else (_ for _ in ()).throw(ReproError("x"))


class TestSyncLoader:
    def test_batches_have_requested_size(self, client, files):
        loader = SyncLoader(client, files, batch_size=4, epochs=1)
        batches = list(loader)
        assert len(batches) == len(loader) == 3  # 12 files / 4
        assert all(len(b) == 4 for b in batches)

    def test_bytes_read_accounted(self, client, files):
        loader = SyncLoader(client, files, batch_size=4)
        batch = next(iter(loader))
        assert batch.bytes_read == sum(
            client.stat(p).st_size for p in batch.paths
        )

    def test_decoder_applied(self, client, files):
        loader = SyncLoader(
            client,
            files,
            batch_size=3,
            decoder=lambda raw, path: (len(raw), path),
        )
        batch = next(iter(loader))
        assert all(
            sample == (client.stat(path).st_size, path)
            for sample, path in zip(batch.samples, batch.paths)
        )

    def test_epoch_reshuffles_deterministically(self, client, files):
        loader_a = SyncLoader(client, files, batch_size=4, epochs=2, seed=9)
        loader_b = SyncLoader(client, files, batch_size=4, epochs=2, seed=9)
        paths_a = [b.paths for b in loader_a]
        paths_b = [b.paths for b in loader_b]
        assert paths_a == paths_b  # same seed → identical order
        first_epoch = [p for b in paths_a[:3] for p in b]
        second_epoch = [p for b in paths_a[3:] for p in b]
        assert first_epoch != second_epoch  # epochs shuffle differently
        assert sorted(first_epoch) == sorted(second_epoch)

    def test_rank_sharding_partitions_global_batch(self, client, files):
        world = 3
        shards = [
            next(
                iter(
                    SyncLoader(
                        client,
                        files,
                        batch_size=6,
                        rank=r,
                        world_size=world,
                        seed=0,
                    )
                )
            ).paths
            for r in range(world)
        ]
        merged = [p for shard in shards for p in shard]
        assert len(merged) == 6
        assert len(set(merged)) == 6  # disjoint cover of the global batch

    def test_validation(self, client, files):
        with pytest.raises(ReproError):
            SyncLoader(client, files, batch_size=0)
        with pytest.raises(ReproError):
            SyncLoader(client, files, batch_size=2, rank=5, world_size=2)


class TestAsyncLoader:
    def test_same_batches_as_sync(self, client, files):
        sync = SyncLoader(client, files, batch_size=4, epochs=2, seed=3)
        async_ = AsyncLoader(client, files, batch_size=4, epochs=2, seed=3)
        assert [b.paths for b in sync] == [b.paths for b in async_]

    def test_prefetch_overlaps_consumer_sleep(self, client, files):
        """While the consumer 'computes', the producer should already
        have the next batch ready: total time ≈ max(io, compute), not
        the sum (Figure 5(b))."""
        loader = AsyncLoader(client, files, batch_size=4, epochs=3, depth=2)
        compute = 0.02
        start = time.perf_counter()
        n = 0
        for _ in loader:
            time.sleep(compute)
            n += 1
        elapsed = time.perf_counter() - start
        assert n == 9
        # generous bound: sum-of-both would approach n*(compute+io);
        # overlap keeps it near n*compute plus one io.
        assert elapsed < n * compute * 2.5

    def test_producer_exception_surfaces(self, client, files):
        def bad_decoder(raw, path):
            raise ValueError("decoder exploded")

        loader = AsyncLoader(
            client, files, batch_size=4, decoder=bad_decoder
        )
        with pytest.raises(ValueError, match="decoder exploded"):
            list(loader)

    def test_depth_validation(self, client, files):
        with pytest.raises(ReproError):
            AsyncLoader(client, files, batch_size=2, depth=0)

    def test_no_thread_leak(self, client, files):
        before = threading.active_count()
        for _ in AsyncLoader(client, files, batch_size=4, epochs=1):
            pass
        time.sleep(0.05)
        assert threading.active_count() <= before + 1
