"""Ablation — synchronous vs asynchronous I/O (§VI-A, Figure 5).

Functional: the same training epoch driven by the SyncLoader vs the
AsyncLoader over a real FanStore, with a fixed simulated compute per
batch — async should approach max(io, compute) while sync pays
io + compute. Modeled: where the sync/async selection budgets diverge
(Eq. 1 vs Eq. 2) as compute shrinks.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.report import PaperComparison
from repro.selection.model import (
    CompressorSelector,
    IoPerformance,
    SelectionInputs,
)
from repro.training.loader import AsyncLoader, SyncLoader, list_training_files
from repro.util.units import MB

COMPUTE_PER_BATCH = 0.02
BATCHES = 6


def _epoch(loader_cls, store, files, **kwargs):
    loader = loader_cls(
        store.client, files, batch_size=len(files) // BATCHES, epochs=1,
        **kwargs,
    )
    n = 0
    for _ in loader:
        time.sleep(COMPUTE_PER_BATCH)  # the "Compute" box of Figure 5
        n += 1
    return n


def test_ablation_sync_vs_async_functional(benchmark, em_store, emit_report):
    files = list_training_files(em_store.client)

    n = benchmark.pedantic(
        _epoch, args=(AsyncLoader, em_store, files), kwargs={"depth": 2},
        rounds=3, iterations=1,
    )
    assert n == BATCHES
    async_s = benchmark.stats.stats.mean

    t0 = time.perf_counter()
    rounds = 3
    for _ in range(rounds):
        _epoch(SyncLoader, em_store, files)
    sync_s = (time.perf_counter() - t0) / rounds

    compute_total = BATCHES * COMPUTE_PER_BATCH
    report = PaperComparison(
        "Ablation (sync vs async I/O)",
        "one epoch over FanStore with fixed per-batch compute",
        columns=["strategy", "epoch s", "io visible"],
    )
    report.add_row("sync (Fig 5a)", f"{sync_s:.3f}",
                   f"{sync_s - compute_total:.3f} s")
    report.add_row("async/prefetch (Fig 5b)", f"{async_s:.3f}",
                   f"{async_s - compute_total:.3f} s")
    report.add_note("async hides the read behind the previous batch's "
                    "compute; visible I/O shrinks toward zero")
    emit_report(report)

    assert async_s < sync_s
    # async's visible I/O is a small fraction of sync's
    assert (async_s - compute_total) < 0.6 * (sync_s - compute_total)


def test_ablation_budget_divergence_modeled(benchmark, emit_report):
    """Eq. 2's budget exceeds Eq. 1's by exactly the compute headroom;
    sweep T_iter to show the async advantage growing."""

    def budgets():
        rows = []
        for t_iter in (0.2, 0.5, 1.0, 2.0):
            common = dict(
                c_batch=256,
                s_batch_uncompressed=410 * MB,
                perf_uncompressed=IoPerformance(3158, 6663 * MB),
                perf_compressed=IoPerformance(9469, 4969 * MB),
                parallelism=4,
                t_iter=t_iter,
            )
            sync = CompressorSelector(
                SelectionInputs(io_mode="sync", **common)
            ).budget_per_file(2.1)
            async_ = CompressorSelector(
                SelectionInputs(io_mode="async", **common)
            ).budget_per_file(2.1)
            rows.append((t_iter, sync, async_))
        return rows

    rows = benchmark(budgets)
    report = PaperComparison(
        "Ablation (Eq.1 vs Eq.2 budgets)",
        "per-file decompression budget vs iteration time",
        columns=["T_iter s", "sync budget µs", "async budget µs"],
    )
    for t_iter, sync, async_ in rows:
        report.add_row(t_iter, round(sync * 1e6, 1), round(async_ * 1e6, 1))
    report.add_note("sync budget is T_iter-independent (read savings "
                    "only); async budget scales with compute headroom")
    emit_report(report)

    sync_budgets = [r[1] for r in rows]
    async_budgets = [r[2] for r in rows]
    assert max(sync_budgets) - min(sync_budgets) < 1e-9
    assert async_budgets == sorted(async_budgets)
    assert async_budgets[-1] > 10 * sync_budgets[-1]