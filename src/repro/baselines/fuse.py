"""The FUSE-over-SSD baseline (Table III's "SSD-fuse" row).

A FUSE mount routes every VFS operation user→kernel→user: two context
switches per request plus data copies in 128 KiB transfer units. The
paper measures this path 2.9–4.4× slower than FanStore's interception,
which stays in user space.

The calibrated device model lives in
:func:`repro.simnet.devices.fuse_over_ssd`; this module adds the
operation-level accounting (how much of each read is crossing overhead
vs data movement) that the ablation benchmark reports, and a functional
``FuseLikeClient`` wrapper that imposes the same *structural* behaviour
(chunked reads through an extra buffer) on a real FanStore client so
the overhead mechanism can be demonstrated, not just asserted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fanstore.client import FanStoreClient
from repro.simnet.devices import StorageModel, fuse_over_ssd, ssd
from repro.util.units import KIB


@dataclass(frozen=True)
class FuseCostBreakdown:
    """Where one FUSE read's time goes."""

    file_bytes: int
    crossings: int  # kernel<->user round trips
    crossing_seconds: float
    data_seconds: float
    setup_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.crossing_seconds + self.data_seconds + self.setup_seconds

    @property
    def overhead_fraction(self) -> float:
        total = self.total_seconds
        return (self.crossing_seconds + self.setup_seconds) / total if total else 0.0


def read_cost_breakdown(
    file_bytes: int, model: StorageModel | None = None
) -> FuseCostBreakdown:
    """Decompose the modeled FUSE read time into its mechanisms."""
    model = model or fuse_over_ssd()
    crossings = max((file_bytes + model.chunk_size - 1) // model.chunk_size, 1)
    return FuseCostBreakdown(
        file_bytes=file_bytes,
        crossings=crossings,
        crossing_seconds=crossings * model.per_chunk,
        data_seconds=file_bytes / model.read_bandwidth,
        setup_seconds=model.per_op_latency,
    )


class FuseLikeClient:
    """A FanStore client forced through FUSE's structural path:
    fixed-size transfer units, each round-tripping through an
    intermediate buffer. Used by the interposition ablation to measure
    the *mechanical* cost difference on this host."""

    TRANSFER_UNIT = 128 * KIB

    def __init__(self, client: FanStoreClient) -> None:
        self._client = client

    def read_file(self, path: str) -> bytes:
        fd = self._client.open(path)
        try:
            chunks: list[bytes] = []
            while True:
                # Each transfer unit is copied twice (kernel buffer, then
                # the user buffer), like the FUSE data path.
                chunk = self._client.read(fd, self.TRANSFER_UNIT)
                if not chunk:
                    break
                staging = bytearray(chunk)  # the extra copy
                chunks.append(bytes(staging))
            return b"".join(chunks)
        finally:
            self._client.close(fd)

    def stat(self, path: str):
        return self._client.stat(path)


__all__ = [
    "FuseCostBreakdown",
    "read_cost_breakdown",
    "FuseLikeClient",
    "fuse_over_ssd",
    "ssd",
]
