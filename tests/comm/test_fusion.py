"""The gradient fusion buffer (§II-A's buffered allreduce)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.fusion import (
    FusionBuffer,
    bucketed_allreduce,
    modeled_allreduce_seconds,
)
from repro.comm.launcher import run_parallel
from repro.errors import CommError
from repro.simnet.network import fdr_infiniband
from repro.util.units import MB


class TestFusionBuffer:
    def test_averages_across_ranks(self):
        def body(comm):
            buf = FusionBuffer(comm, capacity_bytes=1 << 20)
            buf.add(np.full(4, float(comm.rank)))
            buf.add(np.full((2, 3), float(comm.rank * 10)))
            out = buf.flush()
            return [o.copy() for o in out]

        results = run_parallel(body, 4, timeout=30)
        expected_a = np.full(4, np.mean([0, 1, 2, 3]))
        expected_b = np.full((2, 3), np.mean([0, 10, 20, 30]))
        for out in results:
            np.testing.assert_allclose(out[0], expected_a)
            np.testing.assert_allclose(out[1], expected_b)
            assert out[1].shape == (2, 3)

    def test_capacity_triggers_eager_reduction(self):
        def body(comm):
            buf = FusionBuffer(comm, capacity_bytes=64)  # 8 doubles
            for _ in range(6):
                buf.add(np.ones(4))  # 32 bytes each → reduce every 2
            buf.flush()
            return buf.stats.allreduce_calls

        calls = run_parallel(body, 2, timeout=30)
        assert all(c == 3 for c in calls)

    def test_single_giant_bucket_one_call(self):
        def body(comm):
            buf = FusionBuffer(comm, capacity_bytes=1 << 30)
            for _ in range(10):
                buf.add(np.ones(16))
            buf.flush()
            return buf.stats.allreduce_calls

        assert run_parallel(body, 2, timeout=30) == [1, 1]

    def test_order_preserved(self):
        def body(comm):
            buf = FusionBuffer(comm, capacity_bytes=40)
            for i in range(5):
                buf.add(np.full(3, float(i)))
            out = buf.flush()
            return [float(o[0]) for o in out]

        for result in run_parallel(body, 3, timeout=30):
            assert result == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_stats_accounting(self):
        def body(comm):
            buf = FusionBuffer(comm, capacity_bytes=1 << 20)
            buf.add(np.ones(8))
            buf.flush()
            return (buf.stats.tensors, buf.stats.bytes_reduced)

        for tensors, nbytes in run_parallel(body, 2, timeout=30):
            assert tensors == 1
            assert nbytes == 64

    def test_bad_capacity(self):
        from repro.comm.communicator import World

        with pytest.raises(CommError):
            FusionBuffer(World(1).comm(0), 0)

    def test_empty_flush(self):
        from repro.comm.communicator import World

        buf = FusionBuffer(World(1).comm(0), 100)
        assert buf.flush() == []


class TestBucketedAllreduce:
    @pytest.mark.parametrize("bucket_bytes", [8, 64, 1 << 20])
    def test_matches_monolithic(self, bucket_bytes):
        def body(comm):
            rng = np.random.default_rng(comm.rank)
            flat = rng.standard_normal(37)
            mono = comm.allreduce(flat, np.add) / comm.size
            bucketed = bucketed_allreduce(comm, flat, bucket_bytes)
            return np.allclose(mono, bucketed), len(bucketed)

        results = run_parallel(body, 3, timeout=30)
        assert all(ok for ok, _ in results)
        assert all(n == 37 for _, n in results)


class TestModeledSchedule:
    def test_tuning_curve_has_interior_minimum(self):
        """Tiny buckets pay per-bucket latency; one giant bucket
        forfeits overlap — the optimum sits strictly between."""
        net = fdr_infiniband()
        sizes = [1 << k for k in range(12, 28)]
        times = [
            modeled_allreduce_seconds(net, 100 * MB, 16, s) for s in sizes
        ]
        best = times.index(min(times))
        assert 0 < best < len(sizes) - 1

    def test_single_node_free(self):
        assert modeled_allreduce_seconds(fdr_infiniband(), 1 * MB, 1, 1024) == 0.0

    def test_bad_bucket(self):
        with pytest.raises(CommError):
            modeled_allreduce_seconds(fdr_infiniband(), 1 * MB, 4, 0)
