"""Hypothesis property tests on the from-scratch codecs and filters.

The stdlib codecs are assumed correct; the hand-written ones (RLE, LZW,
Huffman, fastlz, and all four filters) carry the proof burden here:
round-trip identity on arbitrary byte strings, plus structural
invariants (header integrity, inverse symmetry, idempotent backward).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors.base import read_uvarint, write_uvarint
from repro.compressors.filters import (
    BitshuffleFilter,
    DeltaFilter,
    TransposeFilter,
    XorFilter,
)
from repro.compressors.huffman import HuffmanCodec
from repro.compressors.lz77 import Lz77Codec
from repro.compressors.lzw import LzwCodec
from repro.compressors.rle import RleCodec

# Byte strings biased toward compressible structure (runs, repeats) as
# well as raw entropy.
payloads = st.one_of(
    st.binary(max_size=2048),
    st.builds(
        lambda chunk, reps: chunk * reps,
        st.binary(min_size=1, max_size=64),
        st.integers(min_value=1, max_value=64),
    ),
    st.builds(
        lambda b, n: bytes([b]) * n,
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=4096),
    ),
)

CODECS = [RleCodec(), LzwCodec(12), LzwCodec(14), HuffmanCodec(),
          Lz77Codec(1), Lz77Codec(3), Lz77Codec(9)]
FILTERS = [DeltaFilter(), XorFilter(), BitshuffleFilter(), TransposeFilter(4),
           TransposeFilter(7)]


@pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
@settings(max_examples=40, deadline=None)
@given(data=payloads)
def test_codec_roundtrip(codec, data):
    assert codec.decompress(codec.compress(data)) == data


@pytest.mark.parametrize("flt", FILTERS, ids=lambda f: f.name)
@settings(max_examples=60, deadline=None)
@given(data=payloads)
def test_filter_roundtrip(flt, data):
    assert flt.backward(flt.forward(data)) == data


@pytest.mark.parametrize("flt", FILTERS, ids=lambda f: f.name)
@settings(max_examples=30, deadline=None)
@given(data=st.binary(max_size=512))
def test_filter_preserves_length_up_to_header(flt, data):
    out = flt.forward(data)
    # delta/xor are length-preserving; bitshuffle pads to 8 + 1 header
    # byte; shuffleN adds 1 header byte.
    assert len(out) >= len(data)
    assert len(out) <= len(data) + 9


@settings(max_examples=100, deadline=None)
@given(value=st.integers(min_value=0, max_value=2**63 - 1))
def test_uvarint_roundtrip(value):
    encoded = write_uvarint(value)
    decoded, offset = read_uvarint(encoded)
    assert decoded == value
    assert offset == len(encoded)


@settings(max_examples=30, deadline=None)
@given(
    value=st.integers(min_value=0, max_value=2**40),
    suffix=st.binary(max_size=16),
)
def test_uvarint_offset_points_past_encoding(value, suffix):
    encoded = write_uvarint(value) + suffix
    decoded, offset = read_uvarint(encoded)
    assert decoded == value
    assert encoded[offset:] == suffix


@settings(max_examples=40, deadline=None)
@given(data=payloads)
def test_rle_never_catastrophically_expands(data):
    """RLE's worst case is the run-2/single-literal alternation
    (``\\x00\\x00\\x01…``): 4 output bytes per 3 input bytes, plus the
    length header."""
    out = RleCodec().compress(data)
    assert len(out) <= (4 * len(data)) // 3 + 16


@settings(max_examples=40, deadline=None)
@given(data=payloads)
def test_lz77_levels_agree(data):
    """Every effort level decodes every other level's output (the token
    format is level-independent)."""
    fast = Lz77Codec(1)
    best = Lz77Codec(9)
    assert best.decompress(fast.compress(data)) == data
    assert fast.decompress(best.compress(data)) == data


@settings(max_examples=40, deadline=None)
@given(data=payloads)
def test_lz77_higher_level_not_worse(data):
    """Deeper match search never produces a larger stream on repetitive
    inputs than the single-probe level... within one token of slack
    (greedy parsing can tie)."""
    fast = len(Lz77Codec(1).compress(data))
    best = len(Lz77Codec(9).compress(data))
    assert best <= fast + 3


@settings(max_examples=40, deadline=None)
@given(data=st.binary(min_size=1, max_size=1024))
def test_huffman_beats_raw_on_skewed_input(data):
    """On a highly skewed stream (one dominant symbol), Huffman output
    plus its 128-byte table is below the raw size once input is large."""
    skewed = data + bytes(4096)
    out = HuffmanCodec().compress(skewed)
    assert len(out) < len(skewed)


@settings(max_examples=60, deadline=None)
@given(data=payloads)
def test_mtf_roundtrip(data):
    from repro.compressors.filters import MtfFilter

    f = MtfFilter()
    assert f.backward(f.forward(data)) == data


@settings(max_examples=30, deadline=None)
@given(data=st.binary(min_size=32, max_size=512))
def test_mtf_skews_repetitive_input_toward_zero(data):
    """On run-heavy input MTF emits mostly zeros — the property the
    bzip2-style pipeline exploits."""
    from repro.compressors.filters import MtfFilter

    runs = bytes(b for b in data for _ in range(8))
    transformed = MtfFilter().forward(runs)
    zero_fraction = transformed.count(0) / len(transformed)
    assert zero_fraction >= 0.8
