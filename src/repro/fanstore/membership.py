"""Cluster membership: failure detection, gossip, and live rejoin.

FanStore's replication (§IV-C2, Figure 2) keeps data *available* after
a node loss, but availability alone decays: every request rediscovers
the corpse through the full retry/backoff ladder, the replication
factor silently drops from n to n−1 forever, and a relaunched rank has
no way back into the metadata view built by the load-time allgather.
This module is the active layer that detects, repairs, and re-admits:

- :class:`ClusterView` — a versioned membership map (global ``epoch``
  plus per-rank ``ALIVE``/``SUSPECT``/``DEAD`` state with a per-rank
  version counter). Views merge commutatively (higher version wins;
  ties resolve to the more severe state; epochs max), so gossiping them
  on heartbeats makes every rank converge on the same view without any
  coordinator.
- :class:`FailureDetector` — a heartbeat protocol over the existing
  :class:`~repro.comm.communicator.Communicator`, on its own tag space
  (``TAG_MEMBER``), with an injectable clock so threshold edges are
  unit-testable without sleeping. No heartbeat for ``suspect_after``
  seconds ⇒ SUSPECT (routing deprioritizes, nothing is repaired — a
  flapping rank recovers by just heartbeating again); ``dead_after``
  seconds ⇒ DEAD, the view epoch bumps, and the ``on_dead`` callback
  fires exactly once per corpse (the daemon hangs re-replication off
  it). Convictions learned from a peer's gossiped view fire the same
  callback, so repair work starts everywhere, not only where the
  timeout happened first.
- the **rejoin handshake** — a relaunched rank calls
  :meth:`FailureDetector.request_join` against any live peer: the peer
  marks it SUSPECT, replies with the current view plus a metadata
  snapshot (provided by the daemon through ``join_snapshot``), and the
  joiner re-stages its partitions. :meth:`request_promotion` then asks
  the peer to perform a *verification read* (``verify_read`` — a real
  daemon fetch, digest-checked) against the joiner; only a verified
  read promotes SUSPECT→ALIVE, bumps the epoch, and gossips the
  re-admission to everyone.

Message kinds on ``TAG_MEMBER`` (replies on the two dedicated reply
tags so they never collide with the daemon's reply band):

=========  ==========================  ==================================
kind       payload                     reply
=========  ==========================  ==================================
hb         ClusterView snapshot        —
join       joining rank                (view, snapshot) on TAG_MEMBER_JOIN
promote    joining rank                (ok, view|reason) on TAG_MEMBER_PROMOTE
=========  ==========================  ==================================

**Partitions and quorum.** A network split looks exactly like death
from either side, and a detector that convicts on silence alone would
have *both* components convict each other, re-replicate the "lost"
partitions, and elect one writer per side — split-brain. The detector
is therefore quorum-aware (``MembershipConfig.quorum``, on by default
for worlds of 3+; a 2-rank world cannot form a majority, so it keeps
the fail-fast behavior): SUSPECT→DEAD promotions, their epoch bumps,
and writer election (:meth:`FailureDetector.elect_writer`) are only
allowed while this rank can hear a strict majority of the non-DEAD
membership. A minority component first freezes convictions (counted in
``quorum_denied_convictions``), and if the silence persists past
``isolation_damper`` it enters an explicit **ISOLATED** mode
(:attr:`FailureDetector.isolated`): reads keep serving from local
partitions and the degraded shared FS, but membership mutations
(promotions) and re-replication are frozen until quorum contact is
re-established — and held for ``isolation_damper`` again before the
mode clears, so a flapping link cannot thrash the cluster in and out
of isolation (episodes the damper absorbed count as ``damped_flaps``).
A per-rank conviction damper (``flap_damper``) adds hysteresis on the
majority side: each recent flap a rank exhibited raises its conviction
threshold, so a flapping link never triggers a re-replication storm.
On heal the ``on_reconnected`` callback hands the merged view to the
daemon, which runs anti-entropy reconciliation (route caches, circuit
breakers, frozen re-replication, digest scrub).

Known limitation (documented, tested for the common cases): with
*simultaneous* multi-rank death, ranks that learn of the deaths in
different orders can transiently compute different re-replication
plans; the per-corpse plans are self-correcting (each later plan treats
earlier reassignments as lost copies too), and within one evaluation
pass corpses are always convicted in ascending rank order.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Callable

from repro.comm.communicator import ANY_SOURCE, Communicator
from repro.errors import (
    CommClosedError,
    CommError,
    MembershipError,
    RankDeadError,
)
from repro.util.service import ServiceMixin

#: dedicated membership tag space (the daemon owns 0x0FA0/0x0FA1 and
#: the reply band at 0x1000+; membership traffic must never collide).
TAG_MEMBER = 0x0FB0
TAG_MEMBER_JOIN = 0x0FB1
TAG_MEMBER_PROMOTE = 0x0FB2


class RankState(IntEnum):
    """Per-rank health, ordered by severity (merge ties pick the max)."""

    ALIVE = 0
    SUSPECT = 1
    DEAD = 2


@dataclass
class MembershipStats:
    """What the detector observed, for tests and benchmarks.

    Like :class:`~repro.fanstore.daemon.DaemonStats`, these fields
    double as the storage cells of the unified metrics registry
    (``membership.<field>``) when a registry is handed to the
    detector — see :meth:`bind`."""

    heartbeats_sent: int = 0
    heartbeats_received: int = 0
    suspicions: int = 0  # ALIVE → SUSPECT transitions
    recoveries: int = 0  # SUSPECT → ALIVE without a conviction (flap)
    convictions: int = 0  # transitions to DEAD observed (local or gossip)
    joins_served: int = 0
    promotions: int = 0  # verified rejoins this rank promoted
    quorum_denied_convictions: int = 0  # overdue corpses left SUSPECT: no majority
    isolated_entries: int = 0  # times this rank entered ISOLATED mode
    isolated_exits: int = 0  # times quorum contact ended an isolation
    damped_flaps: int = 0  # minority episodes absorbed before the damper fired

    def bind(self, metrics) -> None:
        """Register every field as ``membership.<field>``, backed by
        this object's attributes (zero hot-path overhead)."""
        for name in self.__dataclass_fields__:
            metrics.bind_counter(f"membership.{name}", self, name)


@dataclass(frozen=True)
class MembershipConfig:
    """Failure-detector tunables.

    The thresholds are wall-clock seconds of heartbeat silence. With a
    polling detector the effective detection latency is bounded by
    ``dead_after`` plus one poll period, so keep
    ``suspect_after >= 2 * heartbeat_interval`` and
    ``dead_after > suspect_after`` (validated here).
    """

    heartbeat_interval: float = 0.2
    suspect_after: float = 0.8
    dead_after: float = 2.5
    #: bound on each join/promotion handshake round trip.
    join_timeout: float = 10.0
    #: quorum awareness: convictions, epoch bumps, and writer election
    #: require hearing a strict majority of the non-DEAD membership.
    #: Only effective in worlds of 3+ ranks — a 2-rank world cannot
    #: distinguish peer death from a cut link, so it keeps the
    #: fail-fast conviction behavior regardless of this flag.
    quorum: bool = True
    #: hysteresis (seconds) for the ISOLATED mode edge, both ways: the
    #: minority condition must persist this long before the mode is
    #: entered, and quorum contact must persist this long before it is
    #: left. Flapping links shorter than this never change modes.
    isolation_damper: float = 0.5
    #: extra silence (seconds) required per recent flap before a rank
    #: may be convicted, capped at ``4 * dead_after`` total. 0 disables
    #: the conviction damper (the pre-partition-tolerance behavior).
    flap_damper: float = 0.0
    #: how far back (seconds) a rank's flaps count toward its damper.
    flap_window: float = 30.0

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise MembershipError(
                f"heartbeat_interval must be > 0, got {self.heartbeat_interval}"
            )
        if self.suspect_after < self.heartbeat_interval:
            raise MembershipError(
                "suspect_after must be >= heartbeat_interval "
                f"({self.suspect_after} < {self.heartbeat_interval})"
            )
        if self.dead_after <= self.suspect_after:
            raise MembershipError(
                "dead_after must be > suspect_after "
                f"({self.dead_after} <= {self.suspect_after})"
            )
        if self.isolation_damper < 0:
            raise MembershipError(
                f"isolation_damper must be >= 0, got {self.isolation_damper}"
            )
        if self.flap_damper < 0:
            raise MembershipError(
                f"flap_damper must be >= 0, got {self.flap_damper}"
            )
        if self.flap_window <= 0:
            raise MembershipError(
                f"flap_window must be > 0, got {self.flap_window}"
            )


class ClusterView:
    """Versioned membership map; merges are commutative and idempotent.

    Per-rank entries carry a version counter bumped on every local
    transition; merging takes, per rank, the greater entry under the
    ``(version, severity)`` total order, and the max epoch — except
    that an equal-epoch merge carrying a conviction we had not seen
    bumps past both inputs (see :meth:`merge`). The *epoch* counts
    membership changes
    that affect routing/ownership — DEAD convictions and verified
    re-admissions — and is what invalidates the daemon's negative
    route cache and stale fencing tokens.
    """

    __slots__ = ("size", "epoch", "states", "versions")

    def __init__(
        self,
        size: int,
        *,
        epoch: int = 0,
        states: list[RankState] | None = None,
        versions: list[int] | None = None,
    ) -> None:
        if size < 1:
            raise MembershipError(f"view size must be >= 1, got {size}")
        self.size = size
        self.epoch = epoch
        self.states = list(states) if states else [RankState.ALIVE] * size
        self.versions = list(versions) if versions else [0] * size
        if len(self.states) != size or len(self.versions) != size:
            raise MembershipError("view state/version arrays must match size")

    # -- queries ----------------------------------------------------------

    def state(self, rank: int) -> RankState:
        return self.states[rank]

    def alive_ranks(self) -> list[int]:
        return [r for r in range(self.size) if self.states[r] == RankState.ALIVE]

    def non_dead_ranks(self) -> list[int]:
        return [r for r in range(self.size) if self.states[r] != RankState.DEAD]

    def dead_ranks(self) -> list[int]:
        return [r for r in range(self.size) if self.states[r] == RankState.DEAD]

    # -- transitions ------------------------------------------------------

    def set_state(
        self, rank: int, state: RankState, *, bump_epoch: bool = False
    ) -> None:
        """Local transition: bump the rank's version (so it wins merges
        against staler observations) and optionally the view epoch."""
        self.states[rank] = state
        self.versions[rank] += 1
        if bump_epoch:
            self.epoch += 1

    def merge(self, other: "ClusterView") -> list[tuple[int, RankState, RankState]]:
        """Fold a gossiped view in; returns ``(rank, old, new)`` for
        every rank whose state changed.

        Conflict resolution is a documented total order, so both merge
        directions land on the same result. Per rank, entries compare
        lexicographically by ``(version, state severity)`` and the
        greater entry wins; on a full tie the entries are identical
        (severity *is* the state), so keeping ours is not a choice at
        all. Epochs normally take the max — with one deliberate
        exception: two **parallel histories** at the *same* epoch with
        *different* DEAD sets (both sides of a split convicting
        independently). Taking max() there would let two divergent
        membership histories share an epoch number, and everything
        keyed by epoch — the daemon's negative route cache, fencing
        tokens — would treat stale state as current across the heal. So
        when a merge at equal epochs newly *convicts* a rank (its state
        becomes DEAD), the merged epoch is bumped *past* both inputs.
        In the split-heal case each side learns the other's corpse, so
        both merge orders bump and the result is symmetric.

        Only the conviction direction bumps. A DEAD rank coming *back*
        at the same epoch is not a parallel history — it is the rejoin
        handshake propagating by gossip (the serving peer re-admitted
        the joiner as SUSPECT at a higher version), and the promotion
        that completes the rejoin performs its own epoch bump. Bumping
        on re-admission too would double-count the rejoin wherever the
        handshake raced ahead of gossip: observed on slow runners as a
        healed cluster settling one epoch past the handshake's own
        count. Ordinary SUSPECT churn never involves DEAD and never
        bumps."""
        if other.size != self.size:
            raise MembershipError(
                f"cannot merge views of size {other.size} into {self.size}"
            )
        changed: list[tuple[int, RankState, RankState]] = []
        for r in range(self.size):
            theirs_v, ours_v = other.versions[r], self.versions[r]
            theirs_s, ours_s = other.states[r], self.states[r]
            if (theirs_v, theirs_s) > (ours_v, ours_s):
                if theirs_s != ours_s:
                    changed.append((r, ours_s, theirs_s))
                self.states[r] = theirs_s
                self.versions[r] = theirs_v
        dead_divergence = other.epoch == self.epoch and any(
            new == RankState.DEAD for _, _, new in changed
        )
        if other.epoch > self.epoch:
            self.epoch = other.epoch
        elif dead_divergence:
            self.epoch += 1
        return changed

    def clone(self) -> "ClusterView":
        return ClusterView(
            self.size,
            epoch=self.epoch,
            states=list(self.states),
            versions=list(self.versions),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClusterView):
            return NotImplemented
        return (
            self.size == other.size
            and self.epoch == other.epoch
            and self.states == other.states
        )

    def __repr__(self) -> str:
        body = ",".join(
            f"{r}:{self.states[r].name}v{self.versions[r]}"
            for r in range((self.size))
        )
        return f"ClusterView(epoch={self.epoch}, {body})"


def ring_successor(start: int, alive: set[int], size: int) -> int | None:
    """First member of ``alive`` clockwise after ``start`` (exclusive);
    the deterministic reassignment primitive — every rank computes the
    same successor from the same view, no coordination needed."""
    for i in range(1, size + 1):
        candidate = (start + i) % size
        if candidate in alive:
            return candidate
    return None


class FailureDetector(ServiceMixin):
    """Heartbeat failure detector + gossip + rejoin endpoint, per rank.

    Drive it either incrementally (:meth:`step`, with an injectable
    ``clock`` — how the threshold-edge unit tests run, no sleeping) or
    as a background thread (:meth:`start`/:meth:`stop` — how the store
    wires it). All callbacks fire outside the view lock, in the calling
    thread of the step that observed the transition.

    Callbacks (all optional):

    - ``on_dead(rank, view_snapshot)`` — fired exactly once per corpse
      per detector, whether convicted locally or learned via gossip;
    - ``on_alive(rank)`` — fired on every DEAD→ALIVE re-admission;
    - ``on_isolated()`` — fired when this rank enters ISOLATED mode
      (lost quorum past the damper);
    - ``on_reconnected(view_snapshot)`` — fired when quorum contact
      ends an isolation (the daemon hangs anti-entropy healing off it);
    - ``verify_read(rank) -> bool`` — peer-side promotion gate: perform
      a digest-verified read against the joiner;
    - ``join_snapshot() -> Any`` — peer-side join payload provider (the
      daemon returns its metadata snapshot).
    """

    def __init__(
        self,
        comm: Communicator,
        config: MembershipConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        on_dead: Callable[[int, ClusterView], None] | None = None,
        on_alive: Callable[[int], None] | None = None,
        on_isolated: Callable[[], None] | None = None,
        on_reconnected: Callable[[ClusterView], None] | None = None,
        verify_read: Callable[[int], bool] | None = None,
        join_snapshot: Callable[[], Any] | None = None,
        metrics=None,
    ) -> None:
        self.comm = comm
        self.rank = comm.rank
        self.size = comm.size
        self.config = config or MembershipConfig()
        self.clock = clock
        self.on_dead = on_dead
        self.on_alive = on_alive
        self.on_isolated = on_isolated
        self.on_reconnected = on_reconnected
        self.verify_read = verify_read
        self.join_snapshot = join_snapshot
        self.stats = MembershipStats()
        if metrics is not None:
            # fold the stats bag into the shared registry, plus the view
            # epoch and isolation flag (ints read under the GIL — no
            # lock needed for metrics-grade gauges)
            self.stats.bind(metrics)
            metrics.bind_gauge(
                "membership.view_epoch", fn=lambda: self._view.epoch
            )
            metrics.bind_gauge(
                "membership.isolated", fn=lambda: int(self._isolated)
            )
        self._lock = threading.RLock()
        self._view = ClusterView(self.size)
        now = clock()
        self._last_heard = {r: now for r in range(self.size) if r != self.rank}
        self._last_beat = now - self.config.heartbeat_interval  # beat on first step
        self._convicted: set[int] = set()  # corpses whose on_dead already ran
        #: clock() timestamp at which each DEAD conviction landed here —
        #: the detection-latency numerator for the membership benchmark.
        self.detected_at: dict[int, float] = {}
        self._isolated = False
        self._minority_since: float | None = None  # quorum lost, damper arming
        self._quorum_since: float | None = None  # quorum regained, damper arming
        self._denied: set[int] = set()  # overdue corpses frozen for lack of quorum
        self._flaps: dict[int, list[float]] = {}  # recent flap times per rank
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._halted = False  # set once our own comm reports us dead

    # -- introspection ----------------------------------------------------

    @property
    def view(self) -> ClusterView:
        """A snapshot of this rank's current view (safe to keep)."""
        with self._lock:
            return self._view.clone()

    def is_dead(self, rank: int) -> bool:
        with self._lock:
            return self._view.states[rank] == RankState.DEAD

    @property
    def isolated(self) -> bool:
        """Whether this rank is in ISOLATED mode: it lost quorum contact
        for longer than the damper. Convictions, promotions, writer
        election, and re-replication are frozen until quorum returns."""
        with self._lock:
            return self._isolated

    def has_quorum(self) -> bool:
        """Whether this rank currently hears a strict majority of the
        non-DEAD membership (always True when quorum awareness is
        inactive: ``config.quorum`` off, or a world of fewer than 3)."""
        with self._lock:
            return self._in_quorum(self.clock())

    def elect_writer(self) -> int | None:
        """The rank that may write checkpoints/logs under this view:
        the lowest non-DEAD rank — but only from inside a majority
        component. A minority (or isolated) rank returns None and must
        not write, so a split cluster can never elect two writers: at
        most one component has quorum."""
        with self._lock:
            if self._isolated or not self._in_quorum(self.clock()):
                return None
            alive = self._view.non_dead_ranks()
        return min(alive) if alive else None

    def _in_quorum(self, now: float) -> bool:
        """Lock held. Reachable = self plus every non-DEAD rank heard
        within ``suspect_after``: a rank silent long enough to suspect
        cannot vouch for our majority. The window is deliberately
        *stricter* than the conviction threshold — if it were
        ``dead_after``, a rank cut off from everyone would convict
        whichever peer crossed the threshold first while the other
        (silent just as long) still padded its quorum."""
        if not self.config.quorum or self.size < 3:
            return True
        reachable = 1  # self
        members = 0
        for r in range(self.size):
            if self._view.states[r] == RankState.DEAD:
                continue
            members += 1
            if r == self.rank:
                continue
            if now - self._last_heard[r] < self.config.suspect_after:
                reachable += 1
        return 2 * reachable > members

    # -- one protocol round ------------------------------------------------

    def step(self) -> ClusterView:
        """Drain incoming membership traffic, heartbeat if due, evaluate
        timeouts; returns the post-step view snapshot. Raises nothing on
        a dead/closed world — the detector of a crashed rank just stops
        observing, like its process would."""
        events: list[tuple[str, int, ClusterView | None]] = []
        try:
            self._drain(events)
            self._maybe_beat()
            self._evaluate(events)
        except (RankDeadError, CommClosedError):
            # our rank is the corpse (or teardown): nothing to detect.
            # The halt flag permanently stops the background loop — a
            # revived mailbox must NOT resurrect this incarnation's
            # thread, or it would steal heartbeats from the relaunched
            # rank's fresh detector.
            self._halted = True
        self._fire(events)
        return self.view

    def _drain(self, events: list) -> None:
        while True:
            got = self.comm.try_recv(ANY_SOURCE, TAG_MEMBER)
            if got is None:
                return
            payload, source, _tag = got
            try:
                kind, body = payload
            except (TypeError, ValueError):
                continue  # garbage on the membership tag: ignore
            if kind == "hb":
                self._on_heartbeat(source, body, events)
            elif kind == "join":
                self._serve_join(int(body), events)
            elif kind == "promote":
                self._serve_promotion(int(body), events)

    def _on_heartbeat(
        self, source: int, gossiped: ClusterView, events: list
    ) -> None:
        now = self.clock()
        with self._lock:
            self.stats.heartbeats_received += 1
            self._last_heard[source] = now
            self._denied.discard(source)  # heard again: no longer overdue
            # A heartbeat is live evidence about its *sender*: a SUSPECT
            # sender recovers on the spot (the flap case). A DEAD sender
            # does not — re-admission goes through the rejoin handshake.
            if self._view.states[source] == RankState.SUSPECT:
                self._view.set_state(source, RankState.ALIVE)
                self.stats.recoveries += 1
                self._note_flap(source, now)
            changed = self._view.merge(gossiped)
            for rank, old, new in changed:
                if rank == self.rank:
                    continue  # peers gossiping about us: no self-callbacks
                if new == RankState.DEAD:
                    events.append(("dead", rank, self._view.clone()))
                elif old == RankState.DEAD and new != RankState.DEAD:
                    # re-admitted elsewhere: restart its liveness clock
                    # so it is not instantly re-suspected here
                    self._last_heard[rank] = now
                    self._note_flap(rank, now)
                    events.append(("alive", rank, None))

    def _maybe_beat(self) -> None:
        now = self.clock()
        with self._lock:
            if now - self._last_beat < self.config.heartbeat_interval:
                return
            self._last_beat = now
            view = self._view.clone()
            targets = [
                r for r in range(self.size)
                if r != self.rank and view.states[r] != RankState.DEAD
            ]
        for dest in targets:
            self.comm.send(("hb", view), dest, TAG_MEMBER)
            self.stats.heartbeats_sent += 1

    def _evaluate(self, events: list) -> None:
        now = self.clock()
        with self._lock:
            in_quorum = self._in_quorum(now)
            self._damp_isolation(now, in_quorum, events)
            frozen = self._isolated or not in_quorum
            # ascending rank order: simultaneous corpses are convicted
            # in the same order on every rank within one pass
            for rank in sorted(self._last_heard):
                state = self._view.states[rank]
                if state == RankState.DEAD:
                    continue
                silent = now - self._last_heard[rank]
                if silent >= self._conviction_threshold(rank, now):
                    if frozen:
                        # minority side of a split: the silence is just
                        # as likely *our* unreachability — no conviction,
                        # no epoch bump, no re-replication until quorum
                        if rank not in self._denied:
                            self._denied.add(rank)
                            self.stats.quorum_denied_convictions += 1
                        if state == RankState.ALIVE:
                            self._view.set_state(rank, RankState.SUSPECT)
                            self.stats.suspicions += 1
                        continue
                    self._view.set_state(rank, RankState.DEAD, bump_epoch=True)
                    events.append(("dead", rank, self._view.clone()))
                elif silent >= self.config.suspect_after and state == RankState.ALIVE:
                    self._view.set_state(rank, RankState.SUSPECT)
                    self.stats.suspicions += 1

    def _conviction_threshold(self, rank: int, now: float) -> float:
        """Lock held. The silence needed to convict ``rank``: the base
        ``dead_after``, plus ``flap_damper`` seconds of hysteresis per
        flap the rank showed within ``flap_window`` — a link that keeps
        coming back earns increasing distrust of its *silences*, not
        re-replication storms. Capped at ``4 * dead_after`` so a truly
        dead flapper is still convicted in bounded time."""
        cfg = self.config
        if cfg.flap_damper <= 0:
            return cfg.dead_after
        cutoff = now - cfg.flap_window
        flaps = sum(1 for t in self._flaps.get(rank, ()) if t >= cutoff)
        return min(cfg.dead_after + cfg.flap_damper * flaps,
                   4 * cfg.dead_after)

    def _note_flap(self, rank: int, now: float) -> None:
        """Lock held. Record a recovery/re-admission of ``rank`` for the
        conviction damper, pruning entries past the window."""
        if self.config.flap_damper <= 0:
            return
        history = self._flaps.setdefault(rank, [])
        history.append(now)
        cutoff = now - self.config.flap_window
        while history and history[0] < cutoff:
            history.pop(0)

    def _damp_isolation(self, now: float, in_quorum: bool, events: list) -> None:
        """Lock held. The ISOLATED mode edge, hysteresis both ways: the
        minority condition must persist ``isolation_damper`` seconds to
        enter, quorum contact must persist as long to leave. Leaving
        restarts every liveness clock — nothing heard *during* the cut
        may count toward a conviction — and emits the ``reconnected``
        event the daemon's anti-entropy healing hangs off."""
        damper = self.config.isolation_damper
        if in_quorum:
            if self._minority_since is not None and not self._isolated:
                # episode ended before the damper fired: a flapping
                # link, absorbed without any mode change
                self.stats.damped_flaps += 1
            self._minority_since = None
            if not self._isolated:
                return
            if self._quorum_since is None:
                self._quorum_since = now
            if now - self._quorum_since >= damper:
                self._isolated = False
                self._quorum_since = None
                self._denied.clear()
                for r in self._last_heard:
                    self._last_heard[r] = now
                self.stats.isolated_exits += 1
                events.append(("reconnected", -1, self._view.clone()))
        else:
            self._quorum_since = None
            if self._isolated:
                return
            if self._minority_since is None:
                self._minority_since = now
            if now - self._minority_since >= damper:
                self._isolated = True
                self._minority_since = None
                self.stats.isolated_entries += 1
                events.append(("isolated", -1, None))

    def _fire(self, events: list) -> None:
        for kind, rank, view in events:
            if kind == "dead":
                with self._lock:
                    if rank in self._convicted:
                        continue
                    self._convicted.add(rank)
                    self.detected_at[rank] = self.clock()
                    self.stats.convictions += 1
                if self.on_dead is not None:
                    self.on_dead(rank, view)
            elif kind == "alive":
                with self._lock:
                    self._convicted.discard(rank)
                    self.detected_at.pop(rank, None)
                if self.on_alive is not None:
                    self.on_alive(rank)
            elif kind == "isolated":
                if self.on_isolated is not None:
                    self.on_isolated()
            elif kind == "reconnected":
                if self.on_reconnected is not None:
                    self.on_reconnected(view)

    # -- peer side of the rejoin handshake ---------------------------------

    def _serve_join(self, joiner: int, events: list) -> None:
        """A relaunched rank announced itself: admit it as SUSPECT (it
        must earn ALIVE through a verified read) and ship it the current
        view plus the daemon's metadata snapshot. An ISOLATED peer
        refuses — its view and snapshot are minority history; the
        joiner must be admitted by the majority component."""
        with self._lock:
            refused = self._isolated
            if not refused:
                if self._view.states[joiner] == RankState.DEAD:
                    self._view.set_state(joiner, RankState.SUSPECT)
                self._last_heard[joiner] = self.clock()
                self.stats.joins_served += 1
                view = self._view.clone()
        if refused:
            self.comm.send((None, "peer is isolated (no quorum)"),
                           joiner, TAG_MEMBER_JOIN)
            return
        snapshot = self.join_snapshot() if self.join_snapshot is not None else None
        self.comm.send((view, snapshot), joiner, TAG_MEMBER_JOIN)

    def _serve_promotion(self, joiner: int, events: list) -> None:
        """Promotion gate: only a digest-verified read actually served
        by the joiner flips it SUSPECT→ALIVE (and bumps the epoch).
        An ISOLATED peer refuses outright — a minority component must
        not mutate membership."""
        with self._lock:
            refused = self._isolated
        if refused:
            self.comm.send((False, "peer is isolated (no quorum)"),
                           joiner, TAG_MEMBER_PROMOTE)
            return
        ok = True
        if self.verify_read is not None:
            try:
                ok = bool(self.verify_read(joiner))
            except Exception:  # noqa: BLE001 - a failed read is a rejection
                ok = False
        if not ok:
            self.comm.send((False, "verification read failed"),
                           joiner, TAG_MEMBER_PROMOTE)
            return
        with self._lock:
            now = self.clock()
            self._view.set_state(joiner, RankState.ALIVE, bump_epoch=True)
            self._last_heard[joiner] = now
            self._convicted.discard(joiner)
            self.detected_at.pop(joiner, None)
            self._note_flap(joiner, now)  # rejoin churn feeds the damper
            self.stats.promotions += 1
            view = self._view.clone()
        if self.on_alive is not None:
            self.on_alive(joiner)
        self.comm.send((True, view), joiner, TAG_MEMBER_PROMOTE)

    # -- joiner side of the rejoin handshake -------------------------------

    def request_join(self, peer: int) -> Any:
        """Announce this (relaunched) rank to ``peer`` and return the
        peer's metadata snapshot after merging its view. The peer's view
        arrives with this rank still SUSPECT — promotion is a separate,
        verified step."""
        self.comm.send(("join", self.rank), peer, TAG_MEMBER)
        try:
            view, snapshot = self.comm.recv(
                peer, TAG_MEMBER_JOIN, timeout=self.config.join_timeout
            )
        except CommError as exc:
            raise MembershipError(
                f"rank {self.rank}: join via rank {peer} got no answer ({exc})"
            ) from exc
        if view is None:
            raise MembershipError(
                f"rank {self.rank}: join refused by rank {peer}: {snapshot}"
            )
        with self._lock:
            self._view.merge(view)
            now = self.clock()
            for r in self._last_heard:
                self._last_heard[r] = now
            # everything the peer's view convicted is settled history
            # for this incarnation: never re-fire on_dead for it
            self._convicted.update(self._view.dead_ranks())
        return snapshot

    def request_promotion(self, peer: int) -> ClusterView:
        """Ask ``peer`` to verification-read this rank and promote it;
        returns the post-promotion view (merged locally)."""
        self.comm.send(("promote", self.rank), peer, TAG_MEMBER)
        try:
            ok, body = self.comm.recv(
                peer, TAG_MEMBER_PROMOTE, timeout=self.config.join_timeout
            )
        except CommError as exc:
            raise MembershipError(
                f"rank {self.rank}: promotion via rank {peer} timed out ({exc})"
            ) from exc
        if not ok:
            raise MembershipError(
                f"rank {self.rank}: promotion rejected by rank {peer}: {body}"
            )
        with self._lock:
            self._view.merge(body)
        return self.view

    # -- background mode ---------------------------------------------------

    def start(self) -> None:
        """Run :meth:`step` on a daemon thread (no-op when running)."""
        if self._thread is not None:
            return
        self._stop.clear()
        poll = self.config.heartbeat_interval / 2

        def _loop() -> None:
            while not self._stop.is_set():
                try:
                    self.step()
                except (RankDeadError, CommClosedError):
                    return  # crashed rank / torn-down world: stop observing
                if self._halted:
                    return  # step() saw our own death: stop observing
                if self._stop.wait(poll):
                    return

        self._thread = threading.Thread(
            target=_loop, name=f"fanstore-membership-{self.rank}", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float | None = 5.0) -> None:
        """Stop the background loop (idempotent)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=timeout)
        self._thread = None

    @property
    def running(self) -> bool:
        """Whether the background loop is live (Service contract)."""
        thread = self._thread
        return thread is not None and thread.is_alive()
