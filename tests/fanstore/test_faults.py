"""Checkpoint/resume (§V-E)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import DataIntegrityError, FanStoreError
from repro.fanstore.faults import CheckpointManager


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        mgr.save(3, {"weights": [1.0, 2.0]})
        ckpt = mgr.load(3)
        assert ckpt.epoch == 3
        assert ckpt.payload == {"weights": [1.0, 2.0]}

    def test_epoch_numbered_names(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        path = mgr.save(12, {})
        assert path.name == "checkpoint-000012.ckpt"

    def test_latest_picks_highest_epoch(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        assert mgr.latest() is None
        for e in (1, 5, 3):
            mgr.save(e, {"epoch_marker": e})
        assert mgr.latest().epoch == 5

    def test_epochs_sorted(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        for e in (7, 2, 9):
            mgr.save(e, {})
        assert mgr.epochs() == [2, 7, 9]

    def test_missing_epoch_raises(self, tmp_path):
        with pytest.raises(FanStoreError):
            CheckpointManager(tmp_path).load(99)

    def test_epoch_range_validated(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        with pytest.raises(FanStoreError):
            mgr.save(-1, {})
        with pytest.raises(FanStoreError):
            mgr.save(1_000_000, {})

    def test_corrupted_epoch_field_detected(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        path = mgr.save(4, {})
        path.write_text('{"epoch": 5, "state": {}}')
        with pytest.raises(FanStoreError):
            mgr.load(4)

    def test_no_tmp_files_left_behind(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        mgr.save(1, {"big": list(range(100))})
        assert not list(tmp_path.glob("*.tmp"))


class TestAtomicity:
    def test_racing_saves_on_one_epoch_never_corrupt(self, tmp_path):
        """Every rank of a relaunched job may save the same epoch at
        once; unique tmp names mean the survivor is always one complete
        payload, never an interleaving of two writers."""
        mgr = CheckpointManager(tmp_path)
        payloads = [{"rank": r, "params": [float(r)] * 64} for r in range(8)]
        threads = [
            threading.Thread(target=mgr.save, args=(5, p)) for p in payloads
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not list(tmp_path.glob("*.tmp"))
        assert mgr.load(5).payload in payloads

    def test_failed_save_removes_its_tmp(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        with pytest.raises(TypeError):
            mgr.save(1, {"bad": object()})  # not JSON-serializable
        assert not list(tmp_path.glob("*.tmp"))
        assert mgr.epochs() == []


class TestPayloadDigests:
    """Checkpoints carry a sha256 of their content, verified at load."""

    def _flip_state(self, path):
        """Corrupt the saved state without breaking the JSON framing."""
        blob = json.loads(path.read_text())
        blob["state"]["weights"][0] += 1.0
        path.write_text(json.dumps(blob))

    def test_save_records_digest(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        path = mgr.save(1, {"weights": [1.0]})
        assert len(json.loads(path.read_text())["sha256"]) == 64

    def test_bit_flipped_payload_raises_typed_error(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        path = mgr.save(2, {"weights": [1.0, 2.0]})
        self._flip_state(path)
        with pytest.raises(DataIntegrityError) as exc_info:
            mgr.load(2)
        assert str(path) in str(exc_info.value)
        assert exc_info.value.filename == str(path)

    def test_truncated_file_raises_fanstore_error(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        path = mgr.save(3, {"weights": [1.0]})
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(FanStoreError):
            mgr.load(3)

    def test_pre_digest_checkpoints_still_load(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        path = mgr._path_for(4)
        path.write_text('{"epoch": 4, "state": {"weights": [9.0]}}')
        assert mgr.load(4).payload == {"weights": [9.0]}

    def test_latest_falls_back_past_a_corrupt_newest(self, tmp_path):
        """The newest checkpoint is the likeliest casualty of a crash;
        resume must step back to the previous epoch, not die."""
        mgr = CheckpointManager(tmp_path)
        mgr.save(5, {"weights": [5.0]})
        path6 = mgr.save(6, {"weights": [6.0]})
        self._flip_state(path6)
        resumed = mgr.latest()
        assert resumed.epoch == 5
        assert resumed.payload == {"weights": [5.0]}

    def test_latest_raises_when_every_checkpoint_is_corrupt(self, tmp_path):
        """All resume points lost: restarting from scratch silently
        would throw the run away — the failure must be loud."""
        mgr = CheckpointManager(tmp_path)
        for epoch in (1, 2):
            self._flip_state(mgr.save(epoch, {"weights": [float(epoch)]}))
        with pytest.raises(FanStoreError):
            mgr.latest()

    def test_latest_none_when_fresh_unchanged(self, tmp_path):
        assert CheckpointManager(tmp_path).latest() is None


class TestPruning:
    def test_keep_last(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep_last=2)
        for e in range(5):
            mgr.save(e, {})
        assert mgr.epochs() == [3, 4]

    def test_keep_last_validation(self, tmp_path):
        with pytest.raises(FanStoreError):
            CheckpointManager(tmp_path, keep_last=0)

    def test_foreign_files_ignored(self, tmp_path):
        (tmp_path / "notes.txt").write_text("not a checkpoint")
        mgr = CheckpointManager(tmp_path)
        mgr.save(1, {})
        assert mgr.epochs() == [1]


class TestCrashDurability:
    def test_gc_orphans_removes_crashed_saver_tmps(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        mgr.save(1, {"w": [1]})
        # a saver that died between tmp-write and rename leaves exactly
        # this shape behind (pid + uuid suffix on the final name)
        orphan = tmp_path / (
            "checkpoint-000002.ckpt.12345."
            + "ab" * 16 + ".tmp"
        )
        orphan.write_bytes(b"half a checkpoint")
        assert mgr.gc_orphans() == 1
        assert not orphan.exists()
        assert mgr.epochs() == [1]  # the real checkpoint untouched

    def test_gc_orphans_spares_foreign_tmp_files(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        foreign = tmp_path / "scratch.tmp"
        foreign.write_bytes(b"someone else's")
        assert mgr.gc_orphans() == 0
        assert foreign.exists()

    def test_save_survives_simulated_crash_before_rename(self, tmp_path):
        from repro.fanstore.crash import CrashPlan, SimulatedCrashError

        mgr = CheckpointManager(tmp_path)
        mgr.save(1, {"w": [1, 2]})
        with CrashPlan().crash_at("apply.tmp_written"):
            with pytest.raises(SimulatedCrashError):
                mgr.save(2, {"w": [3, 4]})
        # the old resume point is intact, the torn save never surfaced
        assert mgr.epochs() == [1]
        assert mgr.load(1).payload == {"w": [1, 2]}
        assert mgr.gc_orphans() == 1  # and the orphan is collectable
