"""The FanStore facade (§V-A).

Ties the pieces together the way a user launches the real system:
prepare once, then on every node construct a ``FanStore`` with that
node's communicator — the constructor loads partitions, exchanges
metadata, and starts the daemon service; the object then exposes the
POSIX client plus lifecycle management.

Single-node usage needs no communicator::

    prepared = prepare_dataset("raw_data/", "packed/", compressor="lz4hc")
    with FanStore(prepared) as fs:
        names = fs.client.listdir("train")
        first = fs.client.read_file(f"train/{names[0]}")

Multi-node usage, inside :func:`repro.comm.run_parallel`::

    def node_main(comm):
        opts = FanStoreOptions(comm=comm)
        with FanStore(prepared, opts) as fs:
            ...  # every rank sees the identical namespace

Construction settings live on :class:`FanStoreOptions`; the named
constructors :meth:`FanStore.with_membership` and
:meth:`FanStore.rejoined` cover the two non-default lifecycles (the
self-healing layer, and relaunching a dead rank). The pre-options
keyword arguments (``FanStore(prepared, comm=..., config=...)``) still
work but raise :class:`DeprecationWarning`.

``shutdown`` (or context exit) is collective when a communicator is
present: a barrier guarantees no peer still needs this daemon's data
before the service loop stops. ``FanStore`` conforms to the shared
:class:`repro.util.service.Service` contract — the shutdown-ordering
rules for composing it with scrubbers and failure detectors live in
that module's docstring.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from pathlib import Path

from repro.comm.communicator import Communicator
from repro.compressors.registry import CompressorRegistry
from repro.errors import FanStoreError
from repro.fanstore.backend import DiskBackend, PartitionBackend, RamBackend
from repro.fanstore.client import FanStoreClient
from repro.fanstore.crash import DiskFaultInjector
from repro.fanstore.daemon import DaemonConfig, DaemonStats, FanStoreDaemon
from repro.fanstore.journal import JournalConfig
from repro.fanstore.membership import FailureDetector, MembershipConfig
from repro.fanstore.pipeline import PipelineConfig
from repro.fanstore.prepare import PreparedDataset
from repro.fanstore.scrub import ScrubReport, Scrubber
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.util.service import ServiceMixin

#: shutdown-barrier bound: generous (peers may still be draining
#: epochs), but finite — shutdown must never hang unbounded.
_SHUTDOWN_BARRIER_TIMEOUT = 60.0


@dataclass(frozen=True)
class FanStoreOptions:
    """Everything configurable about one :class:`FanStore` instance.

    Replaces the constructor's keyword sprawl with one value that can
    be built once and shared across ranks/tests (it is frozen; derive
    variants with :func:`dataclasses.replace`). All fields default to
    the single-node, in-RAM, observability-quiet configuration.
    """

    #: communicator for the multi-node mesh (None = single node).
    comm: Communicator | None = None
    #: daemon tunables (:class:`DaemonConfig`); None = defaults.
    config: DaemonConfig | None = None
    #: directory for a :class:`DiskBackend`; ignored when ``backend``
    #: is given, None = in-RAM backend.
    local_dir: Path | str | None = None
    #: explicit storage backend instance (overrides ``local_dir``).
    backend: RamBackend | DiskBackend | PartitionBackend | None = None
    #: compressor registry; None = the default suite.
    registry: CompressorRegistry | None = None
    #: POSIX mount prefix stripped by :meth:`FanStore.resolve`.
    mount_point: str = "/fanstore"
    #: opt into the self-healing layer: ``True`` for the default
    #: :class:`MembershipConfig`, or a config instance.
    membership: MembershipConfig | bool | None = None
    #: construct as a relaunched incarnation, syncing from this peer.
    rejoin_peer: int | None = None
    #: share an existing metrics registry (None = the daemon makes its
    #: own per-rank registry, reachable as :attr:`FanStore.metrics`).
    metrics: MetricsRegistry | None = None
    #: crash-consistent durability: with a disk-resident backend every
    #: local-store mutation is write-ahead journalled (intent → atomic
    #: apply → commit) and the constructor runs restart recovery before
    #: loading. On by default wherever it applies — it is a no-op for
    #: RAM backends (nothing survives the process there anyway).
    journal: bool = True
    #: journal tunables (:class:`~repro.fanstore.journal.JournalConfig`);
    #: None = defaults.
    journal_config: JournalConfig | None = None
    #: deterministic ENOSPC/EMFILE + free-space fault injection shared
    #: by the backend write path and the journal's low-watermark probe
    #: (:class:`~repro.fanstore.crash.DiskFaultInjector`); None = off.
    disk_injector: DiskFaultInjector | None = None
    #: pipelined-scheduler knobs (worker pool, in-flight bound, request
    #: batching — :class:`~repro.fanstore.pipeline.PipelineConfig`).
    #: None defers to ``config.pipeline``; a value here overrides it.
    pipeline: PipelineConfig | None = None


#: constructor keywords accepted pre-FanStoreOptions; each maps 1:1
#: onto an options field.
_LEGACY_KWARGS = frozenset(
    f for f in FanStoreOptions.__dataclass_fields__ if f != "metrics"
)


class FanStore(ServiceMixin):
    """One node's view of the shared compressed object store."""

    def __init__(
        self,
        prepared: PreparedDataset | Path | str,
        options: FanStoreOptions | None = None,
        **legacy,
    ) -> None:
        """See :class:`FanStoreOptions` for the knobs, and
        :meth:`with_membership` / :meth:`rejoined` for the named
        lifecycles. ``**legacy`` accepts the pre-options keywords
        (``comm=``, ``config=``, ...) with a DeprecationWarning."""
        if legacy:
            unknown = set(legacy) - _LEGACY_KWARGS
            if unknown:
                raise TypeError(
                    f"FanStore() got unexpected keyword argument(s) "
                    f"{sorted(unknown)}"
                )
            warnings.warn(
                "passing FanStore construction settings as keyword "
                f"arguments ({', '.join(sorted(legacy))}) is deprecated; "
                "build a FanStoreOptions instead",
                DeprecationWarning,
                stacklevel=2,
            )
            options = replace(options or FanStoreOptions(), **legacy)
        opts = options if options is not None else FanStoreOptions()
        self.options = opts
        if isinstance(prepared, (str, Path)):
            prepared = PreparedDataset.load(prepared)
        self.prepared = prepared
        self.mount_point = opts.mount_point.rstrip("/") or "/fanstore"
        backend = opts.backend
        if backend is None:
            backend = (
                DiskBackend(opts.local_dir)
                if opts.local_dir is not None else RamBackend()
            )
        comm = opts.comm
        journal_dir = None
        if opts.journal and isinstance(backend, DiskBackend):
            journal_dir = backend.root / "journal"
        config = opts.config
        if opts.pipeline is not None:
            config = replace(config or DaemonConfig(), pipeline=opts.pipeline)
        self.daemon = FanStoreDaemon(
            comm,
            config=config,
            backend=backend,
            registry=opts.registry,
            metrics=opts.metrics,
            journal_dir=journal_dir,
            journal_config=opts.journal_config,
            disk_injector=opts.disk_injector,
        )
        self.client = FanStoreClient(self.daemon)
        self.membership: FailureDetector | None = None
        self._active = False
        self._rejoined = opts.rejoin_peer is not None
        membership = opts.membership
        if self._rejoined and comm is None:
            raise FanStoreError("rejoin_peer requires a communicator")
        if self._rejoined:
            membership = membership or True
        if self._rejoined:
            self.daemon.load_rejoin(prepared)
        else:
            self.daemon.load(prepared)
        self.daemon.start()
        if membership and comm is not None:
            cfg = membership if isinstance(membership, MembershipConfig) else None
            self.membership = FailureDetector(
                comm, cfg, metrics=self.daemon.metrics
            )
            self.daemon.attach_membership(self.membership)
        if self._rejoined:
            assert self.membership is not None and opts.rejoin_peer is not None
            snapshot = self.membership.request_join(opts.rejoin_peer)
            if snapshot is not None:
                self.daemon.apply_membership_snapshot(snapshot)
            self.membership.request_promotion(opts.rejoin_peer)
        if self.membership is not None:
            self.membership.start()
        self._active = True

    # -- named constructors --------------------------------------------------

    @classmethod
    def with_membership(
        cls,
        prepared: PreparedDataset | Path | str,
        comm: Communicator,
        *,
        membership: MembershipConfig | bool = True,
        options: FanStoreOptions | None = None,
    ) -> "FanStore":
        """A store with the self-healing layer on: failure detection,
        dead-route avoidance, automatic re-replication. ``options``
        carries any further settings (its ``comm``/``membership`` fields
        are overridden by the arguments here)."""
        opts = replace(
            options or FanStoreOptions(), comm=comm, membership=membership
        )
        return cls(prepared, opts)

    @classmethod
    def rejoined(
        cls,
        prepared: PreparedDataset | Path | str,
        comm: Communicator,
        peer: int,
        *,
        options: FanStoreOptions | None = None,
    ) -> "FanStore":
        """A *relaunched* incarnation of a dead rank: partitions are
        re-staged off the shared FS (never a collective — the original
        cohort's collective sequence has moved on), metadata comes from
        ``peer``'s join snapshot, and construction only returns after
        ``peer`` verified a read against this store and promoted it
        back to ALIVE. Implies membership."""
        opts = replace(
            options or FanStoreOptions(), comm=comm, rejoin_peer=peer
        )
        return cls(prepared, opts)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """No-op while active (the constructor already started
        everything); after a :meth:`shutdown`, restarts the daemon
        service loop and the failure detector. Part of the
        :class:`~repro.util.service.Service` contract."""
        if self._active:
            return
        self.daemon.start()
        if self.membership is not None:
            self.membership.start()
        self._active = True

    def stop(self) -> None:
        """Alias of :meth:`shutdown` (the Service-contract spelling)."""
        self.shutdown()

    @property
    def running(self) -> bool:
        """Whether this store is serving (constructed and not shut
        down)."""
        return self._active

    def shutdown(self) -> None:
        """Collective teardown: barrier (everyone done reading), then
        stop the service loop. Safe to call twice.

        The barrier is skipped once membership history exists (a death,
        a rejoin, or this store *being* a rejoined incarnation):
        collectives need the full original cohort, which by definition
        no longer exists — callers in that regime sequence their own
        teardown (see the membership drill for the pairwise pattern)."""
        if not self._active:
            return
        self._active = False
        if self.membership is not None:
            self.membership.stop()
        view = self.daemon.current_view()
        collective_safe = not self._rejoined and (
            view is None or view.epoch == 0
        )
        if self.daemon.comm is not None and collective_safe:
            # explicit bound: a peer wedged mid-teardown must not hang
            # this rank forever (its daemon still answers until stop())
            self.daemon.comm.barrier(timeout=_SHUTDOWN_BARRIER_TIMEOUT)
        self.daemon.stop()

    # -- introspection ---------------------------------------------------------

    @property
    def rank(self) -> int:
        return self.daemon.rank

    @property
    def size(self) -> int:
        return self.daemon.size

    @property
    def num_files(self) -> int:
        return len(self.daemon.metadata)

    @property
    def metrics(self) -> MetricsRegistry:
        """This rank's unified metrics registry (``daemon.*``,
        ``cache.*``, ``codec.*``, ``membership.*``, ... — the catalogue
        is in ``docs/observability.md``)."""
        return self.daemon.metrics

    @property
    def health(self):
        """This rank's per-peer health tracker (latency EWMA/quantiles
        + circuit breakers; :class:`repro.fanstore.health.HealthTracker`)."""
        return self.daemon.health

    @property
    def journal(self):
        """This rank's write-ahead journal
        (:class:`repro.fanstore.journal.Journal`), or None when the
        backend is not disk-resident / journalling was disabled."""
        return self.daemon.journal

    @property
    def tracer(self) -> Tracer:
        """This rank's request tracer; export its finished spans with
        :meth:`~repro.obs.tracing.Tracer.export_jsonl`."""
        return self.daemon.tracer

    @property
    def isolated(self) -> bool:
        """Whether this rank is on the minority side of a network
        partition (membership ISOLATED mode: convictions, re-replication
        and writer election frozen; reads keep serving degraded). Always
        False without a membership detector."""
        return self.membership is not None and self.membership.isolated

    def stats(self) -> DaemonStats:
        """The legacy counter bag.

        .. deprecated::
            The fields now live in :attr:`metrics` as ``daemon.<field>``
            (same storage — see :meth:`DaemonStats.bind`). Kept so
            pre-observability callers compile; new code should read the
            registry."""
        warnings.warn(
            "FanStore.stats() is deprecated; read FanStore.metrics "
            "(names daemon.<field>) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.daemon.stats

    def export_ownership(self) -> dict:
        """This rank's post-membership ownership map (view epoch,
        per-path home + replicas) — feed it to ``fanstore-inspect
        --ownership`` so offline repair consults the *current* owners."""
        return self.daemon.export_ownership()

    def resolve(self, path: str) -> str:
        """Strip the mount point from an absolute path (§V-A: directory
        ``dir/cate1/file1`` is accessible as ``/fs/dir/cate1/file1``)."""
        if path.startswith(self.mount_point + "/"):
            return path[len(self.mount_point) + 1 :]
        if path == self.mount_point:
            return ""
        return path

    def verify_integrity(self, sample: int | None = None) -> int:
        """End-to-end read check: decompress (up to ``sample``) files
        through the full client path and compare sizes against their
        stat records; returns the number verified. Because the read path
        digest-checks every compressed payload (and self-repairs via the
        failover ladder), this also exercises verify-on-read. For a
        digest sweep that does *not* decompress — and that reports
        instead of raising — see :meth:`scrub`."""
        checked = 0
        for record in self.daemon.metadata.walk_files():
            if sample is not None and checked >= sample:
                break
            if record.home_rank != self.rank and self.daemon.comm is None:
                continue
            data = self.client.read_file(record.path)
            if len(data) != record.stat.st_size:
                raise FanStoreError(
                    f"{record.path}: integrity check failed "
                    f"({len(data)} != {record.stat.st_size})"
                )
            checked += 1
        return checked

    def scrubber(
        self,
        *,
        repair: bool = True,
        deep: bool = False,
        batch: int = 32,
        rate_limit_bytes_per_s: float | None = None,
        interval_s: float = 0.0,
    ) -> Scrubber:
        """A :class:`~repro.fanstore.scrub.Scrubber` over this rank's
        records — drive it incrementally (``step()``), in one pass
        (``run()``), or as a background thread (``start()``)."""
        return Scrubber(
            self.daemon,
            repair=repair,
            deep=deep,
            batch=batch,
            rate_limit_bytes_per_s=rate_limit_bytes_per_s,
            interval_s=interval_s,
        )

    def scrub(
        self,
        sample: int | None = None,
        *,
        repair: bool = True,
        deep: bool = False,
    ) -> ScrubReport:
        """One full digest sweep over the records staged on this rank,
        healing mismatches through the failover ladder when ``repair``
        is set; returns the :class:`~repro.fanstore.scrub.ScrubReport`."""
        return self.scrubber(repair=repair, deep=deep).run(sample)
