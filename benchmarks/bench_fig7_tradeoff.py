"""Figure 7 — the 180-configuration ratio/decompression-cost tradeoff.

Runs the real suite (all 180 configurations) over sampled EM (tif) and
Tokamak (npz) files, exactly the §VII-D methodology, and reports the
Pareto front plus the two clusters the paper describes: fast
decompressors at ratio 1–3 within ~an order of magnitude of memcpy, and
high-ratio compressors (3–4+) two to three orders of magnitude slower.
"""

from __future__ import annotations

import pytest

from repro.bench.report import PaperComparison
from repro.compressors.lzbench import pareto_front, run_suite
from repro.datasets.synthetic import sample_files

#: enough bytes to be meaningful, small enough for pure-Python codecs.
SAMPLE_SIZE = 16 * 1024
SAMPLES_PER_DATASET = 3


@pytest.fixture(scope="module", params=["em", "tokamak"])
def dataset_samples(request):
    size = SAMPLE_SIZE if request.param == "em" else 1200
    return request.param, sample_files(
        request.param, SAMPLES_PER_DATASET, size=size, seed=21
    )


def test_fig7_tradeoff_space(benchmark, dataset_samples, emit_report):
    name, samples = dataset_samples

    results = benchmark.pedantic(
        lambda: run_suite(samples, verify=True), rounds=1, iterations=1
    )
    assert len(results) == 180

    by_name = {r.compressor: r for r in results}
    memcpy_cost = by_name["memcpy"].decompress_cost_per_file
    front = pareto_front(results)

    report = PaperComparison(
        f"Figure 7 ({name})",
        "ratio vs decompression cost: Pareto front of 180 configurations",
        columns=["config", "ratio", "d.cost µs/file", "× memcpy"],
    )
    for r in front[:12]:
        report.add_row(
            r.compressor,
            round(r.ratio, 2),
            round(r.decompress_cost_per_file * 1e6, 1),
            round(r.decompress_cost_per_file / memcpy_cost, 1),
        )
    best_ratio = max(results, key=lambda r: r.ratio)
    fastest = min(results, key=lambda r: r.decompress_cost_per_file)
    report.add_note(
        f"fastest: {fastest.compressor} at ratio {fastest.ratio:.2f}; "
        f"highest ratio: {best_ratio.compressor} at {best_ratio.ratio:.2f}"
    )
    report.add_note(
        "paper: fast cluster at ratio 1-3 within ~10x of memcpy; "
        "high-ratio cluster 100-1000x slower (native codecs — our "
        "pure-Python members shift absolute costs, not the shape)"
    )
    emit_report(report)

    # Shape assertions. (1) the front is non-trivial (tiny tokamak
    # files leave little room between memcpy and the best ratio, so the
    # front can legitimately collapse to two points there):
    assert len(front) >= (3 if name == "em" else 2)
    # (2) somebody compresses this dataset meaningfully:
    assert best_ratio.ratio > 1.5
    # (3) the highest-ratio configuration decompresses slower than the
    # fastest one — the tradeoff exists:
    assert (
        best_ratio.decompress_cost_per_file
        > fastest.decompress_cost_per_file
    )
    # (4) a C-backed fast decompressor sits within ~2 orders of
    # magnitude of memcpy even in Python:
    zlib1 = by_name["zlib-1"]
    assert zlib1.decompress_cost_per_file < 150 * max(memcpy_cost, 1e-7)
