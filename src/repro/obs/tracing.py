"""Distributed request tracing across the daemon mesh.

One ``client.read()`` can touch several ranks: the home rank (possibly
through retries), any announced replicas, and — degraded mode — the
shared file system, with repair and re-replication hops layered on top.
This module makes that journey reconstructable:

- a :class:`Tracer` per rank hands out :class:`Span` context managers.
  Spans nest through a thread-local stack (the daemon's service thread
  and the client threads each carry their own), so a repair triggered
  inside a served fetch parents correctly without plumbing.
- the *trace context* — ``(trace_id, span_id)`` — rides inside daemon
  request bodies (:mod:`repro.fanstore.daemon` appends it as an
  optional third element, so old two-element senders keep working), and
  the serving rank *adopts* it: its span carries the requester's trace
  id with the requester's RPC span as parent. One trace therefore
  threads through every rank it touched.
- finished spans collect in a bounded per-tracer buffer and export as
  JSONL; :func:`load_spans` / :func:`assemble_trace` /
  :func:`format_trace` rebuild and render the tree from the files of
  all ranks (what the chaos trace drill asserts on).

Sampling: creating spans on a ~20 µs hot read would dominate it, so by
default (``sample=0.0``) the tracer only creates spans when an active
parent exists — i.e. when someone upstream *decided* to trace (a
sampled root, a user-opened root span, or a remote context arriving in
a request). ``sample=1.0`` traces every root the daemon opens; the
drills run there.

Ids are cheap on purpose: ``{rank:x}-{counter:x}``, unique within a
process because each tracer owns its counter — no ``os.urandom`` on
the read path.
"""

from __future__ import annotations

import itertools
import json
import random
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Iterable

from repro.obs.metrics import ObservabilityError


class TraceContext:
    """The cross-rank propagation unit: which trace, which parent."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def as_wire(self) -> tuple[str, str]:
        """The tuple stamped into daemon request bodies."""
        return (self.trace_id, self.span_id)

    @classmethod
    def from_wire(cls, wire: Any) -> "TraceContext | None":
        """Parse a wire tuple; hostile or malformed input yields None
        (the daemon must never crash on a bad header)."""
        if (
            isinstance(wire, (tuple, list)) and len(wire) == 2
            and all(isinstance(x, str) for x in wire)
        ):
            return cls(wire[0], wire[1])
        return None

    def __repr__(self) -> str:
        return f"TraceContext({self.trace_id}, {self.span_id})"


class Span:
    """One timed, tagged operation within a trace.

    Use as a context manager (``with tracer.span("fetch.degraded")``);
    an exception propagating through marks ``error`` with the exception
    type name. Tags are plain JSON-able values.
    """

    __slots__ = (
        "tracer", "trace_id", "span_id", "parent_id", "name", "rank",
        "tags", "start_s", "_t0", "duration_s", "error",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        name: str,
        **tags: Any,
    ) -> None:
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.rank = tracer.rank
        self.tags = dict(tags)
        self.start_s = time.time()
        self._t0 = time.perf_counter()
        self.duration_s: float | None = None
        self.error: str | None = None

    def context(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id)

    def tag(self, **tags: Any) -> "Span":
        self.tags.update(tags)
        return self

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and self.error is None:
            self.error = exc_type.__name__
        self.duration_s = time.perf_counter() - self._t0
        self.tracer._pop(self)

    def to_dict(self) -> dict:
        return {
            "kind": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "rank": self.rank,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "error": self.error,
            "tags": self.tags,
        }


class _NullSpan:
    """The not-tracing fast path: every operation is a no-op."""

    __slots__ = ()

    def context(self) -> None:
        return None

    def tag(self, **tags: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def __bool__(self) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Per-rank span factory with thread-local nesting and sampling.

    ``n_active`` is a plain int the daemon reads on its hot path to
    decide whether the observed (traced) branch is worth entering; it
    counts open spans across *all* threads of this tracer, so it can
    transiently over-trigger — harmless, the span creation itself still
    checks the thread-local stack.
    """

    def __init__(
        self,
        rank: int = 0,
        *,
        sample: float = 0.0,
        seed: int | None = None,
        max_spans: int = 20_000,
    ) -> None:
        if not 0.0 <= sample <= 1.0:
            raise ObservabilityError(f"sample {sample} outside [0, 1]")
        self.rank = rank
        self.sample = sample
        self.n_active = 0
        self._tls = threading.local()
        self._ids = itertools.count(1)
        self._id_lock = threading.Lock()
        self._rng = random.Random(0x7ACE ^ rank if seed is None else seed)
        self._finished: "deque[Span]" = deque(maxlen=max_spans)

    # -- stack plumbing ----------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)
        self.n_active += 1

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # mis-nested exit: drop it and everything above
            del stack[stack.index(span):]
        self.n_active = max(0, self.n_active - 1)
        self._finished.append(span)

    def _next_id(self) -> str:
        with self._id_lock:
            return f"{self.rank:x}-{next(self._ids):x}"

    # -- span creation -----------------------------------------------------

    def current_context(self) -> TraceContext | None:
        """The innermost open span's context on this thread, if any."""
        stack = getattr(self._tls, "stack", None)
        if stack:
            return stack[-1].context()
        return None

    def span(self, name: str, **tags: Any) -> Span | _NullSpan:
        """A child of the current span — or :data:`NULL_SPAN` when this
        thread is not inside a trace (child sites never start one)."""
        stack = getattr(self._tls, "stack", None)
        if not stack:
            return NULL_SPAN
        parent = stack[-1]
        return Span(self, parent.trace_id, self._next_id(),
                    parent.span_id, name, **tags)

    def root(self, name: str, **tags: Any) -> Span:
        """Unconditionally start a new trace (drills, user code)."""
        return Span(self, f"t{self._next_id()}", self._next_id(), None,
                    name, **tags)

    def maybe_root(self, name: str, **tags: Any) -> Span | _NullSpan:
        """The daemon's entry-point policy: continue the thread's open
        trace if any, else start a new one when sampling says so, else
        trace nothing."""
        stack = getattr(self._tls, "stack", None)
        if stack:
            parent = stack[-1]
            return Span(self, parent.trace_id, self._next_id(),
                        parent.span_id, name, **tags)
        if self.sample > 0.0 and (
            self.sample >= 1.0 or self._rng.random() < self.sample
        ):
            return self.root(name, **tags)
        return NULL_SPAN

    def adopt(self, wire: Any, name: str, **tags: Any) -> Span | _NullSpan:
        """Server side: a span in the *requester's* trace, parented to
        the requester's RPC span. Malformed wire contexts trace
        nothing (and crash nothing)."""
        ctx = TraceContext.from_wire(wire)
        if ctx is None:
            return NULL_SPAN
        return Span(self, ctx.trace_id, self._next_id(), ctx.span_id,
                    name, **tags)

    # -- export ------------------------------------------------------------

    def finished(self) -> list[Span]:
        """Completed spans, oldest first (bounded buffer)."""
        return list(self._finished)

    def export_jsonl(self, path: Path | str, *, append: bool = False) -> Path:
        """Dump finished spans as JSONL; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a" if append else "w", encoding="utf-8") as fh:
            for span in self.finished():
                fh.write(
                    json.dumps(span.to_dict(), sort_keys=True, default=str)
                    + "\n"
                )
        return path


# -- offline reconstruction ---------------------------------------------------


def load_spans(paths: Iterable[Path | str]) -> list[dict]:
    """Span dicts from JSONL files (metric lines interleaved in the
    same file are skipped)."""
    spans: list[dict] = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as fh:
            for raw in fh:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    obj = json.loads(raw)
                except json.JSONDecodeError:
                    continue
                if isinstance(obj, dict) and obj.get("kind") == "span":
                    spans.append(obj)
    return spans


def trace_ids(spans: Iterable[dict]) -> list[str]:
    """Distinct trace ids, in first-seen order."""
    seen: dict[str, None] = {}
    for s in spans:
        seen.setdefault(s["trace_id"], None)
    return list(seen)


def assemble_trace(spans: Iterable[dict], trace_id: str) -> dict:
    """Rebuild one trace as a tree: ``{"span": dict, "children":
    [...]}`` rooted at the parentless span. Spans whose parent is
    missing (e.g. a rank's buffer rolled over) attach to the root."""
    mine = [s for s in spans if s["trace_id"] == trace_id]
    if not mine:
        raise ObservabilityError(f"no spans for trace {trace_id}")
    nodes = {s["span_id"]: {"span": s, "children": []} for s in mine}
    roots = []
    orphans = []
    for s in sorted(mine, key=lambda s: s["start_s"]):
        parent = s.get("parent_id")
        if parent is None:
            roots.append(nodes[s["span_id"]])
        elif parent in nodes:
            nodes[parent]["children"].append(nodes[s["span_id"]])
        else:
            orphans.append(nodes[s["span_id"]])
    if not roots:
        raise ObservabilityError(f"trace {trace_id} has no root span")
    roots[0]["children"].extend(orphans)
    return roots[0]


def format_trace(tree: dict, *, indent: int = 0) -> str:
    """Render an assembled trace tree for humans (fanstore-top
    ``--traces``)."""
    span = tree["span"]
    dur = span.get("duration_s")
    dur_text = f"{dur * 1e3:.2f}ms" if dur is not None else "?"
    tag_text = " ".join(
        f"{k}={v}" for k, v in sorted((span.get("tags") or {}).items())
    )
    err = f" ERROR({span['error']})" if span.get("error") else ""
    line = (
        f"{'  ' * indent}{span['name']} rank={span['rank']} "
        f"{dur_text}{err}" + (f" [{tag_text}]" if tag_text else "")
    )
    lines = [line]
    for child in tree["children"]:
        lines.append(format_trace(child, indent=indent + 1))
    return "\n".join(lines)
