"""Typed request/reply envelopes for the daemon wire protocol (v2).

The daemon's wire bodies accreted into positional 2/3/4/5-tuples —
``(subject, reply_tag[, trace_ctx[, deadline[, epoch]]])`` — that every
new feature had to thread by hand. This module replaces them with one
typed :class:`Request` envelope carrying every field by name, encoded
as a *self-identifying* tuple:

    (WIRE_MAGIC, WIRE_VERSION, subject, reply_tag,
     trace_ctx, deadline, epoch, batch)

``WIRE_MAGIC`` contains NUL bytes, which :func:`~repro.fanstore.
metadata.normalize` never produces in a path, so a v2 envelope can
never be mistaken for a legacy tuple whose first element is a subject
path. Versions above :data:`WIRE_VERSION` decode their known prefix
(fields are only ever appended), so a v2 server keeps serving v3
clients.

Legacy positional bodies still decode through :func:`decode_request` —
a compatibility shim that emits a :class:`DeprecationWarning` — so
pre-envelope senders keep working for one deprecation cycle.

Replies stay legacy-shaped on the wire (``(True, data)``,
``(False, subject_or_None)``, ``(OVERLOAD, retry_after)``,
``(FENCED, server_epoch)``) so pre-envelope *clients* parse new
servers' answers unchanged; :class:`Reply` gives them names. Two new
markers cover the batched path: ``EXPIRED`` (the server dropped one
batch item whose deadline had lapsed) and ``FAILED`` (one batch item
errored — only its waiter falls back, the rest of the batch is
unaffected). A batch reply is ``(BATCH, (encoded item replies...))``
in request-item order.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any

from repro.comm.deadline import wire_deadline
from repro.errors import WireFormatError

#: first element of every v2 envelope. The embedded NULs keep it out of
#: the normalized-path value space, so version dispatch is collision-free.
WIRE_MAGIC = "\x00fanstore-wire\x00"

#: the envelope revision this module encodes. Decoders accept any
#: version >= 2 by reading the known 8-field prefix.
WIRE_VERSION = 2

#: reply marker: the request was shed by admission control; the second
#: element is the server's suggested back-off in seconds. Never a valid
#: ``ok`` bool, so legacy callers cannot mistake it for data.
OVERLOAD = "__overloaded__"

#: reply marker: a mutating request carried a fencing token older than
#: the server's membership view epoch; the second element is the
#: server's epoch.
FENCED = "__stale_epoch__"

#: reply marker (batch items only): the item's deadline had expired when
#: the server got to it, so it was dropped rather than served.
EXPIRED = "__deadline_expired__"

#: reply marker (batch items only): this item failed in a way that has
#: no batched representation (integrity failure, malformed subject);
#: its waiter retries through the classic single-request ladder.
FAILED = "__item_failed__"

#: first element of a batched reply; the second is a tuple of encoded
#: per-item replies in request order.
BATCH = "__batch_reply__"


@dataclass(frozen=True)
class Request:
    """One daemon request body, fields by name.

    ``subject`` is the request's object (a normalized path for
    ``fetch``/``stat``, a FileRecord for ``write_meta``, ``None`` for a
    batch envelope). ``reply_tag`` is the caller-chosen tag the answer
    comes back on. ``trace_ctx`` is the sender's tracing wire context
    (or None), ``deadline`` the absolute ``time.monotonic()`` expiry (or
    None), ``epoch`` the sender's membership-view fencing token (or
    None). ``batch`` is a tuple of ``(kind, subject, deadline)`` item
    triples when this envelope carries a batched flush, else None.
    """

    subject: Any
    reply_tag: int
    trace_ctx: tuple | None = None
    deadline: float | None = None
    epoch: int | None = None
    batch: tuple | None = None

    def encode(self) -> tuple:
        """The versioned wire tuple for this envelope."""
        return (
            WIRE_MAGIC,
            WIRE_VERSION,
            self.subject,
            self.reply_tag,
            self.trace_ctx,
            self.deadline,
            self.epoch,
            self.batch,
        )


def _decode_legacy(body: Any) -> Request:
    """Compatibility shim for pre-envelope positional bodies
    (2/3/4/5-tuples). Deprecated: senders should build a
    :class:`Request` and put ``request.encode()`` on the wire."""
    warnings.warn(
        "legacy positional daemon wire bodies are deprecated; send "
        "repro.fanstore.wire.Request(...).encode() instead",
        DeprecationWarning,
        stacklevel=3,
    )
    try:
        subject, reply_tag, *rest = body
    except (TypeError, ValueError) as exc:
        raise WireFormatError(f"unparseable wire body: {body!r}") from exc
    if len(rest) > 3:
        raise WireFormatError(
            f"legacy wire body has {2 + len(rest)} fields; at most 5 "
            "(subject, reply_tag, trace_ctx, deadline, epoch) are defined"
        )
    trace_ctx = rest[0] if rest else None
    deadline = wire_deadline(rest[1]) if len(rest) > 1 else None
    epoch = rest[2] if len(rest) > 2 else None
    return Request(
        subject=subject,
        reply_tag=reply_tag,
        trace_ctx=trace_ctx,
        deadline=deadline,
        epoch=epoch,
        batch=None,
    )


def decode_request(body: Any) -> Request:
    """Decode one wire body — v2 envelope or legacy positional tuple —
    into a validated :class:`Request`.

    Hostile headers surface as :class:`WireFormatError` (the server
    counts them malformed), never as a crash: the deadline is sanitized
    through :func:`~repro.comm.deadline.wire_deadline`, the reply tag
    and epoch are type-checked, and a batch must be a tuple.
    """
    if (
        isinstance(body, tuple)
        and len(body) >= 2
        and body[0] == WIRE_MAGIC
    ):
        version = body[1]
        if not isinstance(version, int) or version < WIRE_VERSION:
            raise WireFormatError(
                f"bad envelope version: {version!r} (oldest supported is "
                f"{WIRE_VERSION})"
            )
        if len(body) < 8:
            raise WireFormatError(
                f"v{version} envelope has {len(body)} fields; "
                "8 (magic, version, subject, reply_tag, trace_ctx, "
                "deadline, epoch, batch) are required"
            )
        # forward compatibility: fields are append-only, so a newer
        # sender's extras are ignorable rather than fatal
        _, _, subject, reply_tag, trace_ctx, deadline, epoch, batch = body[:8]
        request = Request(
            subject=subject,
            reply_tag=reply_tag,
            trace_ctx=trace_ctx,
            deadline=wire_deadline(deadline),
            epoch=epoch,
            batch=batch,
        )
    else:
        request = _decode_legacy(body)
    if (
        isinstance(request.reply_tag, bool)
        or not isinstance(request.reply_tag, int)
        or request.reply_tag < 0
    ):
        raise WireFormatError(f"bad reply tag: {request.reply_tag!r}")
    if request.epoch is not None and (
        isinstance(request.epoch, bool) or not isinstance(request.epoch, int)
    ):
        raise WireFormatError(f"bad fencing epoch: {request.epoch!r}")
    if request.batch is not None and not isinstance(request.batch, tuple):
        raise WireFormatError(f"bad batch payload: {request.batch!r}")
    return request


@dataclass(frozen=True)
class Reply:
    """One reply, named. ``encode()`` produces the exact legacy wire
    shapes, so pre-envelope clients keep parsing new servers."""

    status: str
    value: Any = None

    OK = "ok"
    MISS = "miss"
    OVERLOAD = "overload"
    FENCED = "fenced"
    EXPIRED = "expired"
    FAILED = "failed"

    def encode(self) -> tuple:
        head = {
            Reply.OK: True,
            Reply.MISS: False,
            Reply.OVERLOAD: OVERLOAD,
            Reply.FENCED: FENCED,
            Reply.EXPIRED: EXPIRED,
            Reply.FAILED: FAILED,
        }.get(self.status)
        if head is None:
            raise WireFormatError(f"unknown reply status: {self.status!r}")
        return (head, self.value)


def decode_reply(raw: Any) -> Reply:
    """Decode one (item) reply tuple into a :class:`Reply`."""
    if not isinstance(raw, tuple) or len(raw) != 2:
        raise WireFormatError(f"unparseable reply: {raw!r}")
    head, value = raw
    if head is True:
        return Reply(Reply.OK, value)
    if head is False:
        return Reply(Reply.MISS, value)
    status = {
        OVERLOAD: Reply.OVERLOAD,
        FENCED: Reply.FENCED,
        EXPIRED: Reply.EXPIRED,
        FAILED: Reply.FAILED,
    }.get(head)
    if status is None:
        raise WireFormatError(f"unknown reply marker: {head!r}")
    return Reply(status, value)


def encode_batch_reply(replies: list[Reply]) -> tuple:
    """The wire form of a batched reply: per-item replies, request
    order."""
    return (BATCH, tuple(reply.encode() for reply in replies))


def decode_batch_reply(raw: Any) -> list[Reply] | None:
    """Decode a batched reply; ``None`` when ``raw`` is not one (an
    envelope-level shed or fence — the caller falls back per item)."""
    if (
        not isinstance(raw, tuple)
        or len(raw) != 2
        or raw[0] != BATCH
        or not isinstance(raw[1], tuple)
    ):
        return None
    return [decode_reply(item) for item in raw[1]]
