"""The resilient read path under injected faults: retry on lost
replies, failover to ring replicas, and degraded shared-FS re-reads
when a rank dies — every byte still correct, every recovery counted.

Seeds are pinned (see ``CHAOS_SEEDS``) so a CI failure replays exactly;
the CI chaos job runs each seed as its own matrix entry via
``-k seedNNN``.
"""

from __future__ import annotations

import pytest

from repro.comm.chaos import ChaosWorld, FaultPlan
from repro.comm.launcher import run_parallel
from repro.errors import CommClosedError, RankDeadError
from repro.fanstore.daemon import _REPLY_TAG_BASE, DaemonConfig
from repro.fanstore.metadata import normalize
from repro.fanstore.store import FanStore

CHAOS_SEEDS = (101, 202, 303)
seeds = pytest.mark.parametrize(
    "seed", CHAOS_SEEDS, ids=[f"seed{s}" for s in CHAOS_SEEDS]
)

RANKS = 3
DEAD = 2
#: tags used by the tests' own coordination traffic (outside both the
#: daemon's request tag and its reply band)
_TAG_PARK = 0x0DED
_TAG_GO = 0x0660
_TAG_DONE = 0x0D0E

#: tight budgets so a dead rank costs milliseconds, not 30 s timeouts
FAST = dict(
    request_timeout=0.4,
    max_retries=1,
    retry_backoff_base=0.01,
    retry_backoff_max=0.05,
)


@pytest.fixture(scope="module")
def originals(raw_dataset_dir):
    """store path → raw bytes, for byte-identity assertions."""
    expected = {}
    train = raw_dataset_dir / "train"
    for p in sorted(train.rglob("*")):
        if p.is_file():
            expected[normalize(str(p.relative_to(train)))] = p.read_bytes()
    for p in sorted((raw_dataset_dir / "val").iterdir()):
        if p.is_file():
            expected[f"val/{p.name}"] = p.read_bytes()
    return expected


def _read_everything(fs) -> dict[str, bytes]:
    return {
        rec.path: fs.client.read_file(rec.path)
        for rec in fs.daemon.metadata.walk_files()
    }


def _body_with_dead_rank(prepared, world, config, originals):
    """Shared drill body: load everywhere, kill ``DEAD`` before the
    reads, survivors read the full namespace and verify bytes."""

    def body(comm):
        fs = FanStore(prepared, comm=comm, config=config)
        comm.barrier()  # everyone loaded and serving
        if comm.rank == DEAD:
            try:  # park like a rank waiting on work; the kill lands here
                comm.recv(source=0, tag=_TAG_PARK, timeout=60)
            except (RankDeadError, CommClosedError):
                pass
            return None
        if comm.rank == 0:
            world.kill(DEAD)
            comm.send("go", 1, _TAG_GO)
        else:
            comm.recv(source=0, tag=_TAG_GO, timeout=60)
        data = _read_everything(fs)
        assert data == originals
        stats = fs.daemon.stats
        # survivors skip the collective shutdown barrier (it would wait
        # on the corpse); instead they drain pairwise — a rank must keep
        # serving until the other survivor finished reading too — then
        # stop their own service loops directly
        other = 1 - comm.rank
        comm.send("done", other, _TAG_DONE)
        comm.recv(other, _TAG_DONE, timeout=60)
        fs.daemon.stop()
        return (stats.retries, stats.failovers, stats.degraded_reads)

    return body


class TestRetry:
    @seeds
    def test_dropped_fetch_reply_is_retried(
        self, seed, prepared_dataset, originals
    ):
        """One lost reply must cost one retry, never a failed read."""
        plan = FaultPlan(seed).drop(min_tag=_REPLY_TAG_BASE, times=1)
        world = ChaosWorld(RANKS, plan)
        config = DaemonConfig(**FAST)

        def body(comm):
            with FanStore(prepared_dataset, comm=comm, config=config) as fs:
                data = _read_everything(fs)
                assert data == originals
                return (fs.daemon.stats.retries, fs.daemon.stats.failovers)

        results = run_parallel(body, RANKS, world=world, timeout=120)
        assert plan.stats.dropped == 1
        assert sum(r for r, _ in results) >= 1  # the lost reply was re-asked
        assert all(f == 0 for _, f in results)  # home rank stayed up


class TestReplicaFailover:
    @seeds
    def test_dead_home_rank_served_by_ring_replica(
        self, seed, prepared_dataset, originals
    ):
        """With one extra partition, rank 0 holds rank 2's block; after
        rank 2 dies, rank 1's reads of that block fail over to rank 0 —
        no shared-FS traffic."""
        config = DaemonConfig(extra_partition_budget=1, **FAST)
        world = ChaosWorld(RANKS, FaultPlan(seed))
        body = _body_with_dead_rank(
            prepared_dataset, world, config, originals
        )
        results = run_parallel(body, RANKS, world=world, timeout=120)
        assert results[DEAD] is None
        retries1, failovers1, degraded1 = results[1]
        # rank 1 does not hold rank 2's block (it replicated rank 0's),
        # so its reads of the dead rank's files took the replica tier
        assert failovers1 >= 1
        assert degraded1 == 0
        assert retries1 >= 1  # the attempts against the corpse
        # rank 0 holds the replica itself: every read was local
        assert results[0][2] == 0

    @seeds
    def test_replica_locations_announced_at_load(
        self, seed, prepared_dataset
    ):
        config = DaemonConfig(extra_partition_budget=1, **FAST)
        world = ChaosWorld(RANKS, FaultPlan(seed))

        def body(comm):
            with FanStore(prepared_dataset, comm=comm, config=config) as fs:
                table = fs.daemon.metadata
                located = 0
                for rec in table.walk_files():
                    if rec.is_broadcast:
                        continue
                    holders = table.replica_ranks(rec.path)
                    # budget 1 on the ring: the home rank's right
                    # neighbor holds the copy, and every rank knows it
                    assert holders == ((rec.home_rank + 1) % comm.size,)
                    located += 1
                return located

        assert run_parallel(body, RANKS, world=world, timeout=120) == [12] * 3


class TestDegradedReads:
    @seeds
    def test_dead_rank_with_no_replicas_degrades_to_shared_fs(
        self, seed, prepared_dataset, originals
    ):
        """Acceptance drill: drop the first fetch reply *and* kill one
        rank, with zero replication — every read still correct, via
        retry for the drop and shared-FS re-reads for the dead rank's
        partition, all surfaced in DaemonStats."""
        plan = FaultPlan(seed).drop(min_tag=_REPLY_TAG_BASE, times=1, dest=0)
        world = ChaosWorld(RANKS, plan)
        config = DaemonConfig(**FAST)
        body = _body_with_dead_rank(
            prepared_dataset, world, config, originals
        )
        results = run_parallel(body, RANKS, world=world, timeout=120)
        assert results[DEAD] is None
        survivors = [results[0], results[1]]
        # each survivor re-read the dead rank's 4 train files off the
        # shared FS (val is broadcast; everything else has a live home)
        for retries, failovers, degraded in survivors:
            assert retries >= 1
            assert failovers == 4
            assert degraded == 4

    def test_control_run_without_chaos_is_clean(
        self, prepared_dataset, originals
    ):
        """The same read workload with chaos disabled: identical bytes,
        zero retries, zero failovers, zero degraded reads."""
        config = DaemonConfig(**FAST)

        def body(comm):
            with FanStore(prepared_dataset, comm=comm, config=config) as fs:
                data = _read_everything(fs)
                assert data == originals
                s = fs.daemon.stats
                return (s.retries, s.failovers, s.degraded_reads)

        results = run_parallel(body, RANKS, timeout=120)
        assert results == [(0, 0, 0)] * RANKS
