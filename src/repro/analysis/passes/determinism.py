"""*determinism*: seeded-replay modules must replay.

The chaos, corruption, and simnet layers promise that a seed reproduces
a run bit-for-bit (the CI seed matrices depend on it). Three sources of
hidden nondeterminism are banned inside those modules:

- the **module-level** ``random`` RNG (``random.random()``,
  ``random.choice`` …) — shared, unseeded process state; use a
  ``random.Random(seed)`` instance;
- wall-clock reads (``time.time``/``time.time_ns``,
  ``datetime.now``/``utcnow``) — replay timing must come from the
  injected clock or the event loop;
- iteration over unordered collections (``for x in {…}`` / ``set(…)``,
  unsorted ``os.listdir``/``Path.iterdir``) — set order varies with
  hash randomization, directory order with the filesystem.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.core import Finding, LintPass, Project, SourceFile

#: modules under the seeded-replay contract
_SCOPE_RE = re.compile(r"(chaos|corrupt|simnet|crash)")

_SEEDED_FACTORIES = {"Random", "SystemRandom", "seed"}


def _in_scope(src: SourceFile) -> bool:
    return _SCOPE_RE.search(src.display.replace("\\", "/")) is not None


class DeterminismPass(LintPass):
    rule = "determinism"
    title = "no unseeded RNG, wall clock, or unordered iteration in replay modules"

    def run(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        for src in project:
            if not _in_scope(src) or src.parse_error is not None:
                continue
            findings.extend(self._check(src))
        return findings

    def _check(self, src: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                fn = node.func
                if (
                    isinstance(fn, ast.Attribute)
                    and isinstance(fn.value, ast.Name)
                ):
                    base, attr = fn.value.id, fn.attr
                    if base == "random" and attr not in _SEEDED_FACTORIES:
                        findings.append(
                            self.finding(
                                src,
                                node,
                                f"random.{attr}() uses the shared unseeded "
                                "module RNG; draw from a "
                                "random.Random(seed) instance",
                            )
                        )
                    elif base == "time" and attr in ("time", "time_ns"):
                        findings.append(
                            self.finding(
                                src,
                                node,
                                f"time.{attr}() reads the wall clock in a "
                                "seeded-replay module; use the injected "
                                "clock",
                            )
                        )
                    elif base == "datetime" and attr in ("now", "utcnow"):
                        findings.append(
                            self.finding(
                                src,
                                node,
                                f"datetime.{attr}() reads the wall clock in "
                                "a seeded-replay module",
                            )
                        )
            elif isinstance(node, (ast.For, ast.comprehension)):
                it = node.iter
                what = self._unordered(it)
                if what is not None:
                    line = getattr(it, "lineno", getattr(node, "lineno", 1))
                    findings.append(
                        self.finding(
                            src,
                            line,
                            f"iterates {what} whose order is "
                            "nondeterministic; wrap in sorted()",
                        )
                    )
        return findings

    @staticmethod
    def _unordered(it: ast.expr) -> str | None:
        if isinstance(it, ast.Set):
            return "a set literal"
        if not isinstance(it, ast.Call):
            return None
        fn = it.func
        if isinstance(fn, ast.Name) and fn.id == "set":
            return "set(...)"
        if isinstance(fn, ast.Attribute):
            if fn.attr == "iterdir":
                return ".iterdir()"
            if (
                fn.attr == "listdir"
                and isinstance(fn.value, ast.Name)
                and fn.value.id == "os"
            ):
                return "os.listdir(...)"
        return None
