"""Deterministic storage-fault injection — the disk analog of
:mod:`repro.comm.chaos`.

The chaos layer breaks the *wire* (drops, delays, dead ranks); this
module breaks the *bytes at rest*: partition files on the shared FS,
manifests, checkpoint payloads, and staged backend copies. The rule API
deliberately mirrors :class:`~repro.comm.chaos.FaultPlan` — seeded,
chainable, occurrence-bounded, first match wins — so a corruption drill
reads like a chaos drill:

    plan = (StorageFaultPlan(seed=11)
            .bit_flip(pattern="part-*.fst", times=2)
            .truncate(pattern="manifest.json"))
    events = plan.apply_dataset(prepared)

Four fault shapes cover the real-world failure modes the digest layer
must catch:

- **bit_flip** — silent media/DMA corruption: one bit, anywhere;
- **truncate** — a file cut short (interrupted copy, full disk);
- **zero_page** — a page-sized hole of zeros (lost page write);
- **torn_write** — a write that only partially hit disk: the prefix is
  intact, a partial garbage tail follows, the rest is gone.

Determinism: which files match, which offsets are hit, and which bits
flip depend only on the seed and rule order, so a failing integrity
test replays byte-for-byte. Every mutation is recorded as a
:class:`CorruptionEvent` for assertions.

Two targeted helpers bypass the rule engine for tests that need to
corrupt *one specific record*: :func:`corrupt_record` (the payload
bytes inside a partition file on the shared FS) and
:func:`corrupt_backend` (a daemon's staged copy — the shared-FS
original stays good, so the repair ladder can heal it).
"""

from __future__ import annotations

import os
import random
import threading
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Iterable

from repro.errors import FanStoreError, FileNotFoundInStoreError
from repro.fanstore.layout import read_partition
from repro.fanstore.metadata import normalize
from repro.fanstore.prepare import MANIFEST_NAME, PreparedDataset

#: sentinel actions a rule can take on a matched file.
BIT_FLIP = "bit_flip"
TRUNCATE = "truncate"
ZERO_PAGE = "zero_page"
TORN_WRITE = "torn_write"

_PAGE = 4096


@dataclass
class CorruptionStats:
    """What the plan actually did, for test assertions."""

    bit_flips: int = 0
    truncations: int = 0
    zero_pages: int = 0
    torn_writes: int = 0
    skipped: int = 0  # matched files too small to mutate (empty)

    @property
    def total(self) -> int:
        return (self.bit_flips + self.truncations
                + self.zero_pages + self.torn_writes)


@dataclass(frozen=True)
class CorruptionEvent:
    """One applied mutation: enough to reproduce or undo it by hand."""

    action: str
    path: Path
    offset: int  # first mutated byte (truncate: new length)
    length: int  # mutated span (truncate: bytes removed)


@dataclass
class _Rule:
    """One fault rule: filename predicate + action + occurrence budget."""

    action: str
    pattern: str = "*"
    times: int | None = 1  # matches to consume; None = unlimited
    probability: float = 1.0
    offset: int | None = None  # None = seeded-random position
    length: int = 1  # bit_flip: bits to flip; zero_page: page size
    used: int = field(default=0, compare=False)

    def matches(self, name: str, rng: random.Random) -> bool:
        if self.times is not None and self.used >= self.times:
            return False
        if not fnmatch(name, self.pattern):
            return False
        if self.probability < 1.0 and rng.random() >= self.probability:
            return False
        self.used += 1
        return True


class StorageFaultPlan:
    """A seeded, replayable schedule of at-rest storage faults.

    Rules are consulted in registration order for every file offered to
    :meth:`apply`; the first match wins (one mutation per file per
    pass, like one fault per message in the chaos layer). All mutation
    is behind one lock so concurrent callers observe one consistent
    counter/RNG stream.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._rules: list[_Rule] = []
        self._lock = threading.Lock()
        self.stats = CorruptionStats()
        self.events: list[CorruptionEvent] = []

    # -- rule registration (chainable) ------------------------------------

    def bit_flip(
        self,
        *,
        pattern: str = "*",
        times: int | None = 1,
        probability: float = 1.0,
        offset: int | None = None,
        flips: int = 1,
    ) -> "StorageFaultPlan":
        """Flip ``flips`` bits (silent media corruption)."""
        if flips < 1:
            raise ValueError(f"flips must be >= 1, got {flips}")
        self._rules.append(_Rule(BIT_FLIP, pattern, times, probability,
                                 offset, flips))
        return self

    def truncate(
        self,
        *,
        pattern: str = "*",
        times: int | None = 1,
        probability: float = 1.0,
        keep_bytes: int | None = None,
    ) -> "StorageFaultPlan":
        """Cut the file short (interrupted copy / full disk); by default
        at a seeded-random point, or to exactly ``keep_bytes``."""
        self._rules.append(_Rule(TRUNCATE, pattern, times, probability,
                                 keep_bytes))
        return self

    def zero_page(
        self,
        *,
        pattern: str = "*",
        times: int | None = 1,
        probability: float = 1.0,
        offset: int | None = None,
        page_size: int = _PAGE,
    ) -> "StorageFaultPlan":
        """Zero one page-aligned page (lost page write)."""
        if page_size < 1:
            raise ValueError(f"page_size must be >= 1, got {page_size}")
        self._rules.append(_Rule(ZERO_PAGE, pattern, times, probability,
                                 offset, page_size))
        return self

    def torn_write(
        self,
        *,
        pattern: str = "*",
        times: int | None = 1,
        probability: float = 1.0,
        offset: int | None = None,
    ) -> "StorageFaultPlan":
        """Partial write: intact prefix, garbage tail fragment, rest
        gone — the crash-mid-write shape atomic renames exist for."""
        self._rules.append(_Rule(TORN_WRITE, pattern, times, probability,
                                 offset))
        return self

    # -- application ------------------------------------------------------

    def apply(self, paths: Iterable[Path | str]) -> list[CorruptionEvent]:
        """Offer each file to the rules (first match mutates it);
        returns the events of this pass."""
        applied: list[CorruptionEvent] = []
        for p in paths:
            event = self.apply_to(Path(p))
            if event is not None:
                applied.append(event)
        return applied

    def apply_dataset(
        self, prepared: PreparedDataset, *, include_manifest: bool = True
    ) -> list[CorruptionEvent]:
        """Offer every file of a prepared dataset: scattered partitions,
        the broadcast partition, and (optionally) the manifest."""
        targets: list[Path] = list(prepared.partition_paths())
        bcast = prepared.broadcast_path()
        if bcast is not None:
            targets.append(bcast)
        if include_manifest:
            targets.append(prepared.root / MANIFEST_NAME)
        return self.apply(targets)

    def apply_to(self, path: Path) -> CorruptionEvent | None:
        """Offer one file; mutates it in place when a rule matches."""
        with self._lock:
            rule = self._decide(path.name)
            if rule is None or not path.exists():
                return None
            # lint: allow[blocking-under-lock,durable-write] fault injector tears bytes on purpose — atomicity here would defeat the drill; the lock keeps seeded RNG draws and file mutation atomic so drills replay
            data = bytearray(path.read_bytes())
            event = self._mutate(rule, path, data)
            if event is None:
                self.stats.skipped += 1
                return None
            self.events.append(event)
            return event

    def _decide(self, name: str) -> _Rule | None:
        for rule in self._rules:
            if rule.matches(name, self._rng):
                return rule
        return None

    def _mutate(
        self, rule: _Rule, path: Path, data: bytearray
    ) -> CorruptionEvent | None:
        if not data:
            return None  # nothing to corrupt in an empty file
        rng = self._rng
        if rule.action == BIT_FLIP:
            first = len(data)
            for _ in range(max(1, rule.length)):
                pos = rule.offset if rule.offset is not None else rng.randrange(len(data))
                pos = min(pos, len(data) - 1)
                data[pos] ^= 1 << rng.randrange(8)
                first = min(first, pos)
            # lint: allow[blocking-under-lock,durable-write] fault injector tears bytes on purpose — atomicity here would defeat the drill; the lock keeps seeded RNG draws and file mutation atomic so drills replay
            path.write_bytes(bytes(data))
            self.stats.bit_flips += 1
            return CorruptionEvent(BIT_FLIP, path, first, max(1, rule.length))
        if rule.action == TRUNCATE:
            keep = rule.offset if rule.offset is not None else rng.randrange(len(data))
            keep = max(0, min(keep, len(data) - 1))
            # lint: allow[blocking-under-lock,durable-write] fault injector tears bytes on purpose — atomicity here would defeat the drill; the lock keeps seeded RNG draws and file mutation atomic so drills replay
            path.write_bytes(bytes(data[:keep]))
            self.stats.truncations += 1
            return CorruptionEvent(TRUNCATE, path, keep, len(data) - keep)
        if rule.action == ZERO_PAGE:
            page = max(1, rule.length)
            pos = rule.offset if rule.offset is not None else rng.randrange(len(data))
            start = (min(pos, len(data) - 1) // page) * page
            end = min(start + page, len(data))
            data[start:end] = bytes(end - start)
            # lint: allow[blocking-under-lock,durable-write] fault injector tears bytes on purpose — atomicity here would defeat the drill; the lock keeps seeded RNG draws and file mutation atomic so drills replay
            path.write_bytes(bytes(data))
            self.stats.zero_pages += 1
            return CorruptionEvent(ZERO_PAGE, path, start, end - start)
        # TORN_WRITE: keep a prefix, follow it with a short garbage
        # fragment (the blocks that hit disk out of order), drop the rest
        split = rule.offset if rule.offset is not None else rng.randrange(len(data))
        split = max(0, min(split, len(data) - 1))
        lost = len(data) - split
        fragment = rng.randbytes(rng.randrange(lost)) if lost > 1 else b""
        # lint: allow[blocking-under-lock,durable-write] fault injector tears bytes on purpose — atomicity here would defeat the drill; the lock keeps seeded RNG draws and file mutation atomic so drills replay
        path.write_bytes(bytes(data[:split]) + fragment)
        self.stats.torn_writes += 1
        return CorruptionEvent(TORN_WRITE, path, split, lost)


# -- targeted helpers ------------------------------------------------------


def corrupt_record(
    prepared: PreparedDataset, path: str, *, seed: int = 0
) -> CorruptionEvent:
    """Flip one payload bit of one record *inside its partition file* on
    the shared FS — the surgical strike integrity tests need: exactly
    this record's digest breaks, every other record stays verifiable.

    Mutates the dataset in place; corrupt a **copy** of the prepared
    directory when other tests share it.
    """
    norm = normalize(path)
    rng = random.Random(seed)
    targets = list(prepared.partition_paths())
    bcast = prepared.broadcast_path()
    if bcast is not None:
        targets.append(bcast)
    for part in targets:
        if not part.exists():
            continue
        for entry in read_partition(part, with_data=False):
            if entry.path != norm:
                continue
            if entry.compressed_size <= 0:
                raise FanStoreError(
                    f"{norm}: empty payload has no bits to flip"
                )
            offset = entry.data_offset + rng.randrange(entry.compressed_size)
            # lint: allow[durable-write] surgical in-place bit flip IS the fault being injected; an atomic rewrite would change every byte's identity
            with open(part, "r+b") as fh:
                fh.seek(offset)
                byte = fh.read(1)[0]
                fh.seek(offset)
                fh.write(bytes([byte ^ (1 << rng.randrange(8))]))
                fh.flush()
                os.fsync(fh.fileno())
            return CorruptionEvent(BIT_FLIP, part, offset, 1)
    raise FileNotFoundInStoreError(norm)


def corrupt_backend(backend, path: str, *, seed: int = 0) -> bytes:
    """Flip one bit of a daemon's *staged* copy of ``path`` (node-local
    corruption). The shared-FS partition file is untouched, so the
    verify-on-read repair ladder has a good copy to heal from. Returns
    the corrupted bytes as stored.
    """
    norm = normalize(path)
    data = bytearray(backend.get(norm))
    if not data:
        raise FanStoreError(f"{norm}: empty payload has no bits to flip")
    rng = random.Random(seed)
    data[rng.randrange(len(data))] ^= 1 << rng.randrange(8)
    corrupted = bytes(data)
    backend.put(norm, corrupted)
    return corrupted
