"""Fault injection — what the recovery ladder costs (robustness
hardening around §V-E's checkpoint/resume story).

The same 3-rank store reads its full namespace under four regimes:
clean, a lossy interconnect (dropped daemon replies, recovered by
retry), a dead rank whose partition survives on a ring replica, and a
dead rank with no replicas (degraded shared-FS re-reads). DaemonStats
counts every recovery; wall time is the end-to-end read pass, so the
deltas against the clean row are the price of each tier.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.report import PaperComparison
from repro.comm.chaos import ChaosWorld, FaultPlan
from repro.comm.launcher import run_parallel
from repro.datasets.synthetic import generate_dataset
from repro.errors import CommClosedError, RankDeadError
from repro.fanstore.daemon import _REPLY_TAG_BASE, DaemonConfig
from repro.fanstore.prepare import prepare_dataset
from repro.fanstore.store import FanStore, FanStoreOptions

RANKS = 3
DEAD = 2
LOST_REPLIES = 3
_TAG_PARK = 0x0DED
_TAG_GO = 0x0660
_TAG_DONE = 0x0D0E

#: tight budgets so a fault costs tenths of a second, not 30 s timeouts
FAST = dict(
    request_timeout=0.3,
    max_retries=2,
    retry_backoff_base=0.01,
    retry_backoff_max=0.05,
)


@pytest.fixture(scope="module")
def fault_dataset(tmp_path_factory):
    raw = tmp_path_factory.mktemp("fault-raw")
    generate_dataset("em", raw, num_files=15, avg_file_size=8_000,
                     num_dirs=3, seed=29)
    return prepare_dataset(
        raw, tmp_path_factory.mktemp("fault-packed"),
        num_partitions=RANKS, compressor="zlib-1", threads=2,
    )


def _counters(stats):
    return (stats.retries, stats.failovers, stats.degraded_reads)


def _read_all(fs):
    for rec in fs.daemon.metadata.walk_files():
        fs.client.read_file(rec.path)


def _run_healthy(prepared, plan=None):
    """Everyone stays alive: clean run or a lossy interconnect."""
    config = DaemonConfig(**FAST)

    def body(comm):
        with FanStore(prepared, FanStoreOptions(comm=comm, config=config)) as fs:
            _read_all(fs)
            return _counters(fs.daemon.stats)

    if plan is None:
        return run_parallel(body, RANKS, timeout=120)
    world = ChaosWorld(RANKS, plan)
    return run_parallel(body, RANKS, world=world, timeout=120)


def _run_dead_rank(prepared, budget):
    """Kill DEAD before the reads; survivors take the failover tiers."""
    world = ChaosWorld(RANKS, FaultPlan(seed=29))
    config = DaemonConfig(extra_partition_budget=budget, **FAST)

    def body(comm):
        fs = FanStore(prepared, FanStoreOptions(comm=comm, config=config))
        comm.barrier()
        if comm.rank == DEAD:
            try:
                comm.recv(source=0, tag=_TAG_PARK, timeout=60)
            except (RankDeadError, CommClosedError):
                pass
            return (0, 0, 0)
        if comm.rank == 0:
            world.kill(DEAD)
            comm.send("go", 1, _TAG_GO)
        else:
            comm.recv(source=0, tag=_TAG_GO, timeout=60)
        _read_all(fs)
        counters = _counters(fs.daemon.stats)
        # survivors skip the collective shutdown barrier (it would wait
        # on the corpse): drain pairwise, then stop serving
        other = 1 - comm.rank
        comm.send("done", other, _TAG_DONE)
        comm.recv(other, _TAG_DONE, timeout=60)
        fs.daemon.stop()
        return counters

    return run_parallel(body, RANKS, world=world, timeout=120)


def test_fault_injection_cost(benchmark, fault_dataset, emit_report):
    regimes = [
        ("clean", lambda: _run_healthy(fault_dataset)),
        (f"{LOST_REPLIES} lost replies", lambda: _run_healthy(
            fault_dataset,
            FaultPlan(seed=29).drop(min_tag=_REPLY_TAG_BASE,
                                    times=LOST_REPLIES),
        )),
        ("dead rank + replica", lambda: _run_dead_rank(fault_dataset, 1)),
        ("dead rank, no replica", lambda: _run_dead_rank(fault_dataset, 0)),
    ]

    def run_all():
        out = {}
        for name, fn in regimes:
            start = time.perf_counter()
            results = fn()
            out[name] = (time.perf_counter() - start, results)
        return out

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    report = PaperComparison(
        "Fault injection (recovery ladder cost)",
        "full-namespace read on 3 ranks: wall time + recovery counters",
        columns=["regime", "wall s", "retries", "failovers",
                 "degraded reads"],
    )
    totals = {}
    for name, (wall, results) in rows.items():
        retries = sum(r for r, _, _ in results)
        failovers = sum(f for _, f, _ in results)
        degraded = sum(d for _, _, d in results)
        totals[name] = (retries, failovers, degraded)
        report.add_row(name, round(wall, 2), retries, failovers, degraded)
    report.add_note("every regime returns correct bytes; the ladder "
                    "trades latency (bounded by request_timeout x "
                    "attempts) for availability, never correctness")
    emit_report(report)

    assert totals["clean"] == (0, 0, 0)
    # each lost reply costs exactly one retry, and the home stays up
    assert totals[f"{LOST_REPLIES} lost replies"][0] == LOST_REPLIES
    assert totals[f"{LOST_REPLIES} lost replies"][1:] == (0, 0)
    # with a ring replica the dead rank's block never touches the FS
    retries, failovers, degraded = totals["dead rank + replica"]
    assert failovers >= 1 and degraded == 0
    # without one, every read of the dead partition degrades
    retries, failovers, degraded = totals["dead rank, no replica"]
    assert degraded > 0 and failovers == degraded
