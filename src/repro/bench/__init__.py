"""Benchmark harness utilities: paper-vs-measured reporting."""

from repro.bench.report import PaperComparison, ordering_preserved, ratio_check

__all__ = ["PaperComparison", "ratio_check", "ordering_preserved"]
