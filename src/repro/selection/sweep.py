"""Selection sensitivity sweeps: the operating envelope of §VI-B.

The paper evaluates its algorithm at three operating points; production
use needs the whole map — *which compressor wins as iteration time,
file size, or hardware changes, and where are the crossovers?* These
helpers sweep Equations 1–3 across parameter ranges and locate the
boundaries (e.g. the T_iter below which lzsse8 stops qualifying on a
V100-class machine — the §VII-E3 situation made into a curve).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

from repro.errors import SelectionError
from repro.selection.model import (
    CompressorCandidate,
    CompressorSelector,
    SelectionInputs,
)


@dataclass(frozen=True)
class EnvelopePoint:
    """One cell of the operating map."""

    t_iter: float
    winner: str | None  # strict winner or fallback name; None = raw
    strict: bool
    budget_per_file: float  # at the winner's ratio (or 2.0 if none)


def sweep_t_iter(
    base: SelectionInputs,
    candidates: Sequence[CompressorCandidate],
    t_iters: Sequence[float],
) -> list[EnvelopePoint]:
    """The selection outcome as iteration time varies (faster models /
    better accelerators shrink T_iter; §VII-E3 is the fast end)."""
    if not t_iters:
        raise SelectionError("need at least one t_iter")
    points = []
    for t_iter in t_iters:
        inputs = dataclasses.replace(base, t_iter=t_iter)
        selector = CompressorSelector(inputs)
        result = selector.select(candidates)
        choice = result.choice
        ratio = choice.ratio if choice else 2.0
        points.append(
            EnvelopePoint(
                t_iter=t_iter,
                winner=choice.name if choice else None,
                strict=result.selected is not None,
                budget_per_file=selector.budget_per_file(ratio),
            )
        )
    return points


def crossover_t_iter(
    base: SelectionInputs,
    candidates: Sequence[CompressorCandidate],
    *,
    lo: float = 1e-3,
    hi: float = 100.0,
    tolerance: float = 1e-3,
) -> float | None:
    """Smallest T_iter at which a *strict* winner exists (async mode),
    located by bisection; None when even ``hi`` admits nobody.

    For async I/O the budget grows monotonically with T_iter, so the
    qualification boundary is a single point.
    """
    if base.io_mode != "async":
        raise SelectionError("crossover_t_iter applies to async inputs")

    def qualifies(t_iter: float) -> bool:
        inputs = dataclasses.replace(base, t_iter=t_iter)
        return CompressorSelector(inputs).select(candidates).selected is not None

    if not qualifies(hi):
        return None
    if qualifies(lo):
        return lo
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if qualifies(mid):
            hi = mid
        else:
            lo = mid
    return hi


def winner_map(
    base: SelectionInputs,
    candidates: Sequence[CompressorCandidate],
    t_iters: Sequence[float],
) -> dict[str, list[float]]:
    """Group the sweep by winner: name → the T_iters it wins at."""
    regions: dict[str, list[float]] = {}
    for point in sweep_t_iter(base, candidates, t_iters):
        key = point.winner or "(raw)"
        regions.setdefault(key, []).append(point.t_iter)
    return regions
