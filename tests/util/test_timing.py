"""Wall-clock measurement helpers."""

from __future__ import annotations

import time

import pytest

from repro.util.timing import Timer, measure_throughput


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert 0.005 < t.elapsed < 1.0

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed > first


class TestMeasureThroughput:
    def test_counts_calls_and_bytes(self):
        calls = []

        def fn():
            calls.append(1)
            return 100

        cps, bps = measure_throughput(fn, min_time=0.01, min_calls=5)
        assert len(calls) >= 5
        assert cps > 0
        assert bps / cps == pytest.approx(100.0)  # bytes per call

    def test_respects_max_calls(self):
        count = [0]

        def fn():
            count[0] += 1
            return 1

        measure_throughput(fn, min_time=60.0, min_calls=1, max_calls=50)
        assert count[0] == 50

    def test_min_calls_enforced_even_when_slow(self):
        count = [0]

        def fn():
            count[0] += 1
            time.sleep(0.005)
            return 1

        measure_throughput(fn, min_time=0.0, min_calls=3)
        assert count[0] >= 3
