"""Ablation — global data view vs the chunk-permute workaround (§III).

The paper's core design argument: "a global dataset view … is key to
preserving model performance", and the chunked alternative's
"time-divided variance" has unclear convergence effects. This ablation
trains the same model twice on real data through FanStore:

- **global view**: every rank samples from the full dataset each epoch
  (FanStore's deterministic global shuffle);
- **chunked view**: each rank samples only its local chunk, permuting
  chunks every few epochs (§III's workaround).

Because chunks correlate with data statistics (class directories map to
partitions), the chunked gradient estimates are biased between
permutations — visible as a worse final loss on a class-skewed task.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.chunked import ChunkedStore
from repro.bench.report import PaperComparison
from repro.comm.launcher import run_parallel
from repro.datasets.synthetic import generate_dataset
from repro.fanstore.prepare import prepare_dataset
from repro.fanstore.store import FanStore, FanStoreOptions
from repro.training.loader import SyncLoader, list_training_files
from repro.training.models import MLP
from repro.training.trainer import DataParallelTrainer, make_array_collate

RANKS = 4
FEATURES = 8
CLASSES = 4
EPOCHS = 12
BATCH = 8
LR = 0.15
PERMUTE_EVERY = 4


def decoder(raw: bytes, path: str):
    arr = np.frombuffer(raw[8 : 8 + FEATURES * 2], dtype=np.uint16)
    x = arr.astype(np.float64)
    x = (x - x.mean()) / (x.std() + 1e-9)
    label = int(path.split("/")[0].removeprefix("cls")) % CLASSES
    return x[:FEATURES], label


@pytest.fixture(scope="module")
def skewed_dataset(tmp_path_factory):
    """One class directory per partition — the worst case for chunked
    sampling (each node sees one class between permutations)."""
    raw = tmp_path_factory.mktemp("gv-raw")
    generate_dataset("em", raw, num_files=4 * RANKS, avg_file_size=4_096,
                     num_dirs=CLASSES, seed=29)
    return prepare_dataset(
        raw, tmp_path_factory.mktemp("gv-packed"),
        num_partitions=RANKS, compressor="zlib-1", threads=2,
    )


def _train_global(prepared):
    def body(comm):
        with FanStore(prepared, FanStoreOptions(comm=comm)) as fs:
            files = list_training_files(fs.client)
            loader = SyncLoader(
                fs.client, files, batch_size=BATCH, epochs=EPOCHS,
                rank=comm.rank, world_size=comm.size, seed=1,
                decoder=decoder,
            )
            trainer = DataParallelTrainer(
                MLP([FEATURES, 16, CLASSES], seed=3), loader,
                make_array_collate((FEATURES,), CLASSES),
                comm=comm, lr=LR,
            )
            report = trainer.train()
            return report.losses

    return run_parallel(body, RANKS, timeout=180)[0]


def _train_chunked(prepared):
    """Same model/optimizer, but batches drawn only from each rank's
    local chunk, permuted every PERMUTE_EVERY epochs."""

    def body(comm):
        with FanStore(prepared, FanStoreOptions(comm=comm)) as fs:
            local = {
                rec.path: fs.client.read_file(rec.path)
                for rec in fs.daemon.metadata.local_records(comm.rank)
            }
            store = ChunkedStore(comm, local, permute_every=PERMUTE_EVERY)
            model = MLP([FEATURES, 16, CLASSES], seed=3)
            collate = make_array_collate((FEATURES,), CLASSES)
            losses = []
            iters_per_epoch = max(
                len(list_training_files(fs.client)) // BATCH, 1
            )
            from repro.training.loader import Batch

            step = 0
            for epoch in range(EPOCHS):
                for _ in range(iters_per_epoch):
                    per_rank = max(BATCH // comm.size, 1)
                    picks = store.sample_batch(per_rank, seed=1000 + step)
                    batch = Batch(
                        epoch=epoch, iteration=step,
                        samples=[decoder(data, path) for path, data in picks],
                        paths=[p for p, _ in picks],
                        bytes_read=sum(len(d) for _, d in picks),
                    )
                    x, labels = collate(batch)
                    loss, grads = model.loss_and_gradients(x, labels)
                    grads = comm.allreduce(grads, np.add) / comm.size
                    loss = comm.allreduce(loss, lambda a, b: a + b) / comm.size
                    model.apply_gradients(grads, LR)
                    losses.append(float(loss))
                    step += 1
                store.end_epoch()
            return losses

    return run_parallel(body, RANKS, timeout=180)[0]


def test_ablation_global_view_vs_chunked(benchmark, skewed_dataset,
                                         emit_report):
    global_losses = benchmark.pedantic(
        _train_global, args=(skewed_dataset,), rounds=1, iterations=1
    )
    chunked_losses = _train_chunked(skewed_dataset)

    tail = max(len(global_losses) // 4, 1)
    global_final = float(np.mean(global_losses[-tail:]))
    chunked_final = float(np.mean(chunked_losses[-tail:]))

    report = PaperComparison(
        "Ablation (global view vs chunked)",
        "real training on a class-skewed dataset, 4 ranks",
        columns=["strategy", "first loss", "final loss (tail mean)"],
    )
    report.add_row("global view (FanStore)", f"{global_losses[0]:.3f}",
                   f"{global_final:.3f}")
    report.add_row(
        f"chunked, permute every {PERMUTE_EVERY} epochs",
        f"{chunked_losses[0]:.3f}", f"{chunked_final:.3f}",
    )
    report.add_note("chunk boundaries align with class boundaries here — "
                    "the worst case §III warns about; the chunked run's "
                    "per-permutation gradient bias slows convergence")
    emit_report(report)

    # Both learn something…
    assert global_final < global_losses[0]
    # …but the global view converges at least as well as chunked.
    assert global_final <= chunked_final * 1.05