"""Figure 6 — FanStore vs TFRecord read throughput.

The paper measures FanStore reading ImageNet/EM/RS datasets 5–10×
faster than TFRecord on SKX and POWER9. The mechanism: FanStore serves
random per-file reads from an indexed in-RAM store, while a TFRecord
stream must be scanned sequentially (and CRC-verified) to assemble a
shuffled batch. Both paths run for real on this host.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.tfrecord import TFRecordReader, write_tfrecord
from repro.bench.report import PaperComparison
from repro.datasets.synthetic import sample_files
from repro.training.loader import list_training_files

BATCH = 16


@pytest.fixture(scope="module")
def tfrecord_path(tmp_path_factory):
    # 96 records ≈ a (scaled-down) shard; the paper's datasets hold
    # 10^5-10^6 records per namespace, so scan costs dominate harder
    # there than here.
    records = sample_files("em", 96, size=24 * 1024, seed=11)
    path = tmp_path_factory.mktemp("tfr") / "em.tfrecord"
    offsets = write_tfrecord(path, records)
    return path, offsets, len(records)


def _random_batch_fanstore(store, files, rng):
    total = 0
    for idx in rng.integers(0, len(files), BATCH):
        total += len(store.client.read_file(files[idx]))
    return total


def _random_batch_tfrecord_scan(path, n_records, rng):
    """Shuffled access without an index: scan from the file start for
    every record — TFRecord's structural cost for random access."""
    reader = TFRecordReader(path)
    total = 0
    for idx in rng.integers(0, n_records, BATCH):
        total += len(reader.read_nth_sequential(int(idx)))
    return total


def test_fig6_fanstore_vs_tfrecord(benchmark, em_store_raw, tfrecord_path,
                                   emit_report):
    path, _offsets, n_records = tfrecord_path
    files = list_training_files(em_store_raw.client)
    rng = np.random.default_rng(0)

    fanstore_result = benchmark.pedantic(
        _random_batch_fanstore,
        args=(em_store_raw, files, rng),
        rounds=8,
        iterations=1,
    )
    assert fanstore_result > 0

    import time

    t0 = time.perf_counter()
    rounds = 3
    for _ in range(rounds):
        _random_batch_tfrecord_scan(path, n_records, rng)
    tfrecord_s = (time.perf_counter() - t0) / rounds

    reader = TFRecordReader(path)
    offsets = _offsets
    t0 = time.perf_counter()
    for _ in range(rounds):
        for idx in rng.integers(0, n_records, BATCH):
            reader.read_at(offsets[int(idx)])
    indexed_s = (time.perf_counter() - t0) / rounds

    fan_s = benchmark.stats.stats.mean
    fan_fps = BATCH / fan_s
    tfr_fps = BATCH / tfrecord_s
    idx_fps = BATCH / indexed_s
    speedup = fan_fps / tfr_fps

    report = PaperComparison(
        "Figure 6", "FanStore vs TFRecord shuffled-read throughput (files/s)",
        columns=["reader", "files/s", "vs scan"],
    )
    report.add_row("FanStore (indexed, in-RAM)", round(fan_fps), f"{speedup:.1f}x")
    report.add_row("TFRecord (sequential scan)", round(tfr_fps), "1.0x")
    report.add_row(
        "TFRecord + external offset index", round(idx_fps),
        f"{idx_fps / tfr_fps:.1f}x",
    )
    report.add_note("paper: FanStore 5-10x over TFRecord (ImageNet/EM/RS, "
                    "SKX and POWER9)")
    report.add_note(
        "measured on this host at 96 records/shard; the paper's shards "
        "hold 10^5-10^6 records, widening the scan gap further"
    )
    emit_report(report)

    # The shape criterion: FanStore must beat scan-based TFRecord by a
    # clear factor (the paper's 5-10x band at production record counts).
    assert speedup > 3.0
