"""Calibrated performance profiles of the paper's named compressors.

The selection algorithm (§VI-B) consumes two quantities per compressor:
decompression throughput (files/s, via a per-file cost) and compression
ratio (per dataset). The paper measured these with native lzbench on
Intel Skylake (SKX) and POWER9; native codecs like lzsse8 cannot be run
here, so this module records the paper's published constants (Tables IV
and VII, Figure 7) as *profiles* behind a cost model

    cost(file) = overhead + size / bandwidth            (seconds)

whose two parameters are fitted to the paper's numbers at both file
scales it reports (1.6 MB EM files in Table VII(a)/(c) and 1.2 KB
tokamak files in Table VII(b)) — one (overhead, bandwidth) pair is
consistent with both, which is what makes the model credible.

These profiles drive the *modeled* reproduction of Tables V–VII and
Figures 8–9. The *functional* byte path uses the real suite via
:data:`repro.compressors.registry.PAPER_ALIASES`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from repro.errors import UnknownCompressorError
from repro.util.units import MB

#: canonical dataset keys (Table II rows).
DATASET_KEYS = ("em", "tokamak", "lung", "astro", "imagenet", "language")


@dataclass(frozen=True)
class PaperProfile:
    """Published characteristics of one paper compressor.

    ``decompress_bandwidth`` / ``compress_bandwidth`` are bytes/s on the
    SKX reference; ``per_file_overhead_s`` is the size-independent call
    cost; ``arch_scale`` multiplies bandwidth per architecture ("skx",
    "power9"); ``ratios`` maps dataset key → compression ratio.
    """

    name: str
    per_file_overhead_s: float
    decompress_bandwidth: float
    compress_bandwidth: float
    ratios: Mapping[str, float]
    arch_scale: Mapping[str, float] = field(
        default_factory=lambda: MappingProxyType({"skx": 1.0, "power9": 1.0})
    )

    def decompress_cost(self, file_size: int, arch: str = "skx") -> float:
        """Seconds to decompress one file of ``file_size`` *original* bytes."""
        scale = self.arch_scale.get(arch, 1.0)
        return self.per_file_overhead_s + file_size / (
            self.decompress_bandwidth * scale
        )

    def decompress_throughput(self, file_size: int, arch: str = "skx") -> float:
        """``Tpt_decom`` in files/s for files of ``file_size`` bytes."""
        return 1.0 / self.decompress_cost(file_size, arch)

    def ratio_for(self, dataset: str) -> float:
        try:
            return self.ratios[dataset]
        except KeyError:
            raise UnknownCompressorError(
                f"profile {self.name!r} has no ratio for dataset {dataset!r}"
            ) from None


def _ratios(**kwargs: float) -> Mapping[str, float]:
    missing = set(DATASET_KEYS) - set(kwargs)
    if missing:
        raise ValueError(f"missing dataset ratios: {missing}")
    return MappingProxyType(dict(kwargs))


# Calibration notes (sizes are original-file sizes):
#   Table VII(a), EM 1.6 MB on SKX:  lzsse8 619 µs, lz4hc 858 µs,
#     brotli 4741 µs, zling 17123 µs, lzma 41261 µs.
#   Table VII(b), tokamak 1.2 KB:    lzf 0.41 µs, lzsse8 0.43 µs,
#     brotli 5.23 µs.
#   Table VII(c), EM 1.6 MB on POWER9: lz4hc 942 µs, brotli 5650 µs,
#     lzma 43382 µs.
#   Figure 7(a): lzsse8 540 µs fastest on SKX; lzsse8 is SSE-specific so
#     its POWER9 scale is penalized (the paper picks lz4hc on POWER9).
PAPER_PROFILES: dict[str, PaperProfile] = {
    p.name: p
    for p in (
        PaperProfile(
            name="memcpy",
            per_file_overhead_s=0.1e-6,
            decompress_bandwidth=8_000 * MB,
            compress_bandwidth=8_000 * MB,
            ratios=_ratios(
                em=1.0, tokamak=1.0, lung=1.0, astro=1.0, imagenet=1.0, language=1.0
            ),
        ),
        PaperProfile(
            name="lz4fast",
            per_file_overhead_s=0.2e-6,
            decompress_bandwidth=4_200 * MB,
            compress_bandwidth=900 * MB,
            ratios=_ratios(
                em=1.3, tokamak=1.5, lung=2.1, astro=1.4, imagenet=1.0, language=1.6
            ),
        ),
        PaperProfile(
            name="lzf",
            per_file_overhead_s=0.13e-6,
            decompress_bandwidth=3_600 * MB,
            compress_bandwidth=400 * MB,
            ratios=_ratios(
                em=1.8, tokamak=2.4, lung=3.9, astro=2.0, imagenet=1.0, language=2.2
            ),
        ),
        PaperProfile(
            name="lzsse8",
            # 1.6 MB / (619 µs − overhead) ≈ 2 590 MB/s; 1.2 KB file cost
            # 0.43 µs ⇒ overhead ≈ 0.1 µs. SSE-specific: 2.2× slower on POWER9.
            per_file_overhead_s=0.1e-6,
            decompress_bandwidth=2_590 * MB,
            compress_bandwidth=18 * MB,
            arch_scale=MappingProxyType({"skx": 1.0, "power9": 0.45}),
            ratios=_ratios(
                em=2.3, tokamak=2.6, lung=5.7, astro=2.6, imagenet=1.0, language=2.8
            ),
        ),
        PaperProfile(
            name="lz4hc",
            # SKX: 1.6 MB / 858 µs ≈ 1 870 MB/s; POWER9 942 µs ⇒ scale 0.91.
            per_file_overhead_s=0.15e-6,
            decompress_bandwidth=1_870 * MB,
            compress_bandwidth=40 * MB,
            arch_scale=MappingProxyType({"skx": 1.0, "power9": 0.91}),
            ratios=_ratios(
                em=2.0, tokamak=3.0, lung=6.5, astro=2.2, imagenet=1.0, language=2.6
            ),
        ),
        PaperProfile(
            name="brotli",
            # SKX: 1.6 MB / 4 741 µs ≈ 338 MB/s; 1.2 KB cost 5.23 µs ⇒
            # overhead ≈ 1.6 µs. POWER9 5 650 µs ⇒ scale 0.84.
            per_file_overhead_s=1.6e-6,
            decompress_bandwidth=338 * MB,
            compress_bandwidth=3 * MB,
            arch_scale=MappingProxyType({"skx": 1.0, "power9": 0.84}),
            ratios=_ratios(
                em=3.4, tokamak=3.3, lung=9.0, astro=3.0, imagenet=1.0, language=3.6
            ),
        ),
        PaperProfile(
            name="zling",
            # SKX: 1.6 MB / 17 123 µs ≈ 93 MB/s.
            per_file_overhead_s=2.0e-6,
            decompress_bandwidth=93 * MB,
            compress_bandwidth=25 * MB,
            ratios=_ratios(
                em=3.1, tokamak=3.2, lung=8.6, astro=2.9, imagenet=1.0, language=3.4
            ),
        ),
        PaperProfile(
            name="lzma",
            # SKX: 1.6 MB / 41 261 µs ≈ 39 MB/s; POWER9 43 382 µs ⇒ 0.95.
            per_file_overhead_s=8.0e-6,
            decompress_bandwidth=39 * MB,
            compress_bandwidth=2 * MB,
            arch_scale=MappingProxyType({"skx": 1.0, "power9": 0.95}),
            ratios=_ratios(
                em=4.0, tokamak=3.6, lung=10.8, astro=3.4, imagenet=1.0, language=4.0
            ),
        ),
        PaperProfile(
            name="xz",
            per_file_overhead_s=9.0e-6,
            decompress_bandwidth=38 * MB,
            compress_bandwidth=2 * MB,
            ratios=_ratios(
                em=4.0, tokamak=3.4, lung=10.8, astro=3.4, imagenet=1.0, language=4.0
            ),
        ),
    )
}


def get_profile(name: str) -> PaperProfile:
    """Look up a paper profile by compressor name."""
    try:
        return PAPER_PROFILES[name]
    except KeyError:
        raise UnknownCompressorError(f"no paper profile named {name!r}") from None


def list_profiles() -> list[str]:
    """Names of all calibrated paper profiles."""
    return sorted(PAPER_PROFILES)
