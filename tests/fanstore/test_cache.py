"""The §IV-C3 cache: refcount pinning, FIFO eviction, both policies."""

from __future__ import annotations

import threading

import pytest

from repro.errors import FanStoreError
from repro.fanstore.cache import DecompressedCache


class TestPaperPolicy:
    """retain_unpinned=False: release at refcount zero (Figure 4)."""

    def test_open_miss_insert_close_releases(self):
        cache = DecompressedCache(1000)
        assert cache.open("f") is None
        cache.insert("f", b"data")
        assert "f" in cache
        cache.close("f")
        assert "f" not in cache
        assert cache.resident_bytes == 0

    def test_concurrent_opens_share_entry(self):
        cache = DecompressedCache(1000)
        cache.open("f")
        cache.insert("f", b"data")
        assert cache.open("f") == b"data"  # second thread: hit
        assert cache.refcount("f") == 2
        cache.close("f")
        assert "f" in cache  # still pinned by the other opener
        cache.close("f")
        assert "f" not in cache

    def test_racing_insert_first_wins(self):
        cache = DecompressedCache(1000)
        cache.open("f")
        cache.open("f")
        first = cache.insert("f", b"v1")
        second = cache.insert("f", b"v2")
        assert first == second == b"v1"
        assert cache.refcount("f") == 2

    def test_close_unopened_raises(self):
        cache = DecompressedCache(1000)
        with pytest.raises(FanStoreError):
            cache.close("ghost")

    def test_double_close_raises(self):
        cache = DecompressedCache(1000, retain_unpinned=True)
        cache.open("f")
        cache.insert("f", b"x")
        cache.close("f")
        with pytest.raises(FanStoreError):
            cache.close("f")

    def test_stats_counters(self):
        cache = DecompressedCache(1000)
        cache.open("a")  # miss
        cache.insert("a", b"1")
        cache.open("a")  # hit
        cache.close("a")
        cache.close("a")  # second close evicts
        assert cache.stats.opens == 2
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5
        assert cache.stats.evictions == 1


class TestRetentionPolicy:
    """retain_unpinned=True: the ablation's capacity-bounded FIFO."""

    def test_reopen_hits(self):
        cache = DecompressedCache(1000, retain_unpinned=True)
        cache.open("f")
        cache.insert("f", b"data")
        cache.close("f")
        assert "f" in cache
        assert cache.open("f") == b"data"

    def test_fifo_eviction_under_pressure(self):
        cache = DecompressedCache(100, retain_unpinned=True)
        for name in ("a", "b", "c"):
            cache.open(name)
            cache.insert(name, bytes(40))
            cache.close(name)
        # inserting c (40B) over a+b (80B) must evict "a" (oldest) only
        assert "a" not in cache
        assert "b" in cache and "c" in cache

    def test_pinned_entries_survive_pressure(self):
        cache = DecompressedCache(100, retain_unpinned=True)
        cache.open("pinned")
        cache.insert("pinned", bytes(60))  # stays pinned
        cache.open("x")
        cache.insert("x", bytes(60))  # needs eviction, but can't evict pinned
        assert "pinned" in cache
        assert cache.refcount("pinned") == 1

    def test_oversized_entry_flagged(self):
        cache = DecompressedCache(10, retain_unpinned=True)
        cache.open("big")
        cache.insert("big", bytes(100))
        assert cache.stats.rejected == 1
        assert cache.open("big") is not None  # still served


class TestQuarantine:
    """discard(): the integrity layer's hook — a path whose source
    bytes failed verification must never be served again."""

    def test_discard_unpinned_evicts_immediately(self):
        cache = DecompressedCache(1000, retain_unpinned=True)
        cache.open("f")
        cache.insert("f", b"data")
        cache.close("f")
        assert cache.discard("f") is True
        assert "f" not in cache
        assert cache.stats.quarantined == 1
        assert cache.open("f") is None  # re-verify on next open

    def test_discard_absent_is_noop(self):
        cache = DecompressedCache(1000)
        assert cache.discard("ghost") is False
        assert cache.stats.quarantined == 0

    def test_discard_pinned_dooms_instead_of_evicting(self):
        cache = DecompressedCache(1000)
        cache.open("f")
        cache.insert("f", b"bad")
        assert cache.discard("f") is True
        assert "f" in cache  # still resident for the open reader...
        assert cache.open("f") is None  # ...but never served again
        assert cache.refcount("f") == 1

    def test_doomed_entry_freed_at_last_close_even_when_retaining(self):
        cache = DecompressedCache(1000, retain_unpinned=True)
        cache.open("f")
        cache.insert("f", b"bad")
        cache.discard("f")
        cache.close("f")
        assert "f" not in cache  # retention does not apply to the doomed

    def test_doomed_replacement_counts_an_eviction(self):
        """Regression: the in-place replacement of quarantined bytes
        drops the old data from residency, so it must count as an
        eviction — quarantine-then-reload traffic used to undercount."""
        cache = DecompressedCache(1000)
        cache.open("f")
        cache.insert("f", b"corrupt!")
        cache.discard("f")  # pinned → doomed, not evicted
        assert cache.stats.evictions == 0
        cache.insert("f", b"repaired")  # old bytes leave residency here
        assert cache.stats.evictions == 1
        cache.close("f")
        cache.close("f")
        assert "f" not in cache
        # lifecycle total: the doomed replacement plus the final free
        assert cache.stats.evictions == 2

    def test_insert_replaces_doomed_bytes_in_place(self):
        """The repair path re-verifies and re-inserts while an old
        reader still holds the entry open: fresh bytes are served from
        then on, and the old reader's close() still balances."""
        cache = DecompressedCache(1000)
        cache.open("f")
        cache.insert("f", b"corrupt!")  # reader A pins the bad bytes
        cache.discard("f")
        assert cache.open("f") is None  # reader B misses (doomed)
        assert cache.insert("f", b"repaired-bytes") == b"repaired-bytes"
        assert cache.open("f") == b"repaired-bytes"  # reader C hits
        assert cache.refcount("f") == 3
        for _ in range(3):
            cache.close("f")
        assert "f" not in cache
        assert cache.resident_bytes == 0


class TestConcurrency:
    def test_parallel_open_close_stress(self):
        cache = DecompressedCache(1 << 20)
        errors = []

        def worker(tid):
            try:
                for i in range(200):
                    path = f"file-{i % 5}"
                    data = cache.open(path)
                    if data is None:
                        data = cache.insert(path, path.encode() * 10)
                    assert data == path.encode() * 10
                    cache.close(path)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # all refcounts returned to zero → everything released
        assert cache.resident_bytes == 0


def test_capacity_must_be_positive():
    with pytest.raises(FanStoreError):
        DecompressedCache(0)


def test_bind_metrics_reads_through_live_counters():
    """``cache.*`` registry metrics share storage with CacheStats and
    the hit-ratio gauge is computed at snapshot time."""
    from repro.obs import MetricsRegistry

    cache = DecompressedCache(1000)
    reg = MetricsRegistry()
    cache.bind_metrics(reg)
    cache.open("a")  # miss
    cache.insert("a", b"xy")
    assert cache.open("a") == b"xy"  # hit
    snap = reg.snapshot()
    assert snap.value("cache.opens") == 2
    assert snap.value("cache.hits") == 1
    assert snap.value("cache.misses") == 1
    assert snap.value("cache.hit_ratio") == pytest.approx(0.5)
    assert snap.value("cache.resident_bytes") == 2
