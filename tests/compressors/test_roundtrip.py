"""Round-trip correctness across the whole suite on varied payloads."""

from __future__ import annotations

import pytest

from repro.compressors.registry import default_registry

# A representative cross-section: every codec family × every filter
# family appears at least once (the exhaustive 180×9 sweep runs in the
# nightly-style property tests instead).
REPRESENTATIVES = [
    "memcpy",
    "rle",
    "huffman",
    "lzw-12",
    "lzw-14",
    "lzw-16",
    "fastlz-1",
    "fastlz-2",
    "fastlz-3",
    "fastlz-6",
    "fastlz-9",
    "fastlz-12",
    "zlib-1",
    "zlib-6",
    "zlib-9",
    "bz2-1",
    "bz2-9",
    "lzma-0",
    "lzma-6",
    "lzma-9",
    "delta+memcpy",
    "delta+rle",
    "delta+huffman",
    "delta+fastlz-3",
    "delta+zlib-6",
    "delta+lzma-0",
    "xor+rle",
    "xor+huffman",
    "xor+fastlz-9",
    "xor+zlib-1",
    "bitshuffle+memcpy",
    "bitshuffle+rle",
    "bitshuffle+huffman",
    "bitshuffle+fastlz-1",
    "bitshuffle+zlib-6",
    "shuffle4+memcpy",
    "shuffle4+rle",
    "shuffle4+lzw-12",
    "shuffle4+fastlz-6",
    "shuffle4+bz2-1",
    "shuffle4+lzma-0",
]


@pytest.mark.parametrize("name", REPRESENTATIVES)
def test_roundtrip_all_payloads(registry, sample_payloads, name):
    comp = registry.get(name)
    for kind, payload in sample_payloads.items():
        restored = comp.decompress(comp.compress(payload))
        assert restored == payload, f"{name} failed on {kind!r}"


def test_every_configuration_roundtrips_smoke(registry, sample_payloads):
    """Every one of the 180 configurations round-trips at least one
    non-trivial payload (small payload keeps this fast)."""
    payload = sample_payloads["text"][:512]
    for comp in registry:
        assert comp.decompress(comp.compress(payload)) == payload, comp.name


def test_suite_has_180_configurations(registry):
    assert len(registry) == 180


def test_ratio_convention(registry, sample_payloads):
    """ratio() is original/compressed: > 1 on compressible data for a
    real codec, exactly 1.0 on empty input."""
    zlib6 = registry.get("zlib-6")
    assert zlib6.ratio(sample_payloads["text"]) > 3.0
    assert zlib6.ratio(b"") == 1.0


def test_compressors_are_deterministic(registry, sample_payloads):
    payload = sample_payloads["smooth"]
    for name in ("fastlz-6", "huffman", "lzw-14", "delta+zlib-6"):
        comp = registry.get(name)
        assert comp.compress(payload) == comp.compress(payload)
