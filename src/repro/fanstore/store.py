"""The FanStore facade (§V-A).

Ties the pieces together the way a user launches the real system:
prepare once, then on every node construct a ``FanStore`` with that
node's communicator — the constructor loads partitions, exchanges
metadata, and starts the daemon service; the object then exposes the
POSIX client plus lifecycle management.

Single-node usage needs no communicator::

    prepared = prepare_dataset("raw_data/", "packed/", compressor="lz4hc")
    with FanStore(prepared) as fs:
        names = fs.client.listdir("train")
        first = fs.client.read_file(f"train/{names[0]}")

Multi-node usage, inside :func:`repro.comm.run_parallel`::

    def node_main(comm):
        with FanStore(prepared, comm=comm) as fs:
            ...  # every rank sees the identical namespace

``shutdown`` (or context exit) is collective when a communicator is
present: a barrier guarantees no peer still needs this daemon's data
before the service loop stops.
"""

from __future__ import annotations

from pathlib import Path

from repro.comm.communicator import Communicator
from repro.compressors.registry import CompressorRegistry
from repro.errors import FanStoreError
from repro.fanstore.backend import DiskBackend, PartitionBackend, RamBackend
from repro.fanstore.client import FanStoreClient
from repro.fanstore.daemon import DaemonConfig, FanStoreDaemon
from repro.fanstore.prepare import PreparedDataset
from repro.fanstore.scrub import ScrubReport, Scrubber


class FanStore:
    """One node's view of the shared compressed object store."""

    def __init__(
        self,
        prepared: PreparedDataset | Path | str,
        *,
        comm: Communicator | None = None,
        config: DaemonConfig | None = None,
        local_dir: Path | str | None = None,
        backend: RamBackend | DiskBackend | PartitionBackend | None = None,
        registry: CompressorRegistry | None = None,
        mount_point: str = "/fanstore",
    ) -> None:
        if isinstance(prepared, (str, Path)):
            prepared = PreparedDataset.load(prepared)
        self.prepared = prepared
        self.mount_point = mount_point.rstrip("/") or "/fanstore"
        if backend is None:
            backend = (
                DiskBackend(local_dir) if local_dir is not None else RamBackend()
            )
        self.daemon = FanStoreDaemon(
            comm, config=config, backend=backend, registry=registry
        )
        self.client = FanStoreClient(self.daemon)
        self._active = False
        self.daemon.load(prepared)
        self.daemon.start()
        self._active = True

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self) -> None:
        """Collective teardown: barrier (everyone done reading), then
        stop the service loop. Safe to call twice."""
        if not self._active:
            return
        self._active = False
        if self.daemon.comm is not None:
            self.daemon.comm.barrier()
        self.daemon.stop()

    def __enter__(self) -> "FanStore":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- introspection ---------------------------------------------------------

    @property
    def rank(self) -> int:
        return self.daemon.rank

    @property
    def size(self) -> int:
        return self.daemon.size

    @property
    def num_files(self) -> int:
        return len(self.daemon.metadata)

    def resolve(self, path: str) -> str:
        """Strip the mount point from an absolute path (§V-A: directory
        ``dir/cate1/file1`` is accessible as ``/fs/dir/cate1/file1``)."""
        if path.startswith(self.mount_point + "/"):
            return path[len(self.mount_point) + 1 :]
        if path == self.mount_point:
            return ""
        return path

    def verify_integrity(self, sample: int | None = None) -> int:
        """End-to-end read check: decompress (up to ``sample``) files
        through the full client path and compare sizes against their
        stat records; returns the number verified. Because the read path
        digest-checks every compressed payload (and self-repairs via the
        failover ladder), this also exercises verify-on-read. For a
        digest sweep that does *not* decompress — and that reports
        instead of raising — see :meth:`scrub`."""
        checked = 0
        for record in self.daemon.metadata.walk_files():
            if sample is not None and checked >= sample:
                break
            if record.home_rank != self.rank and self.daemon.comm is None:
                continue
            data = self.client.read_file(record.path)
            if len(data) != record.stat.st_size:
                raise FanStoreError(
                    f"{record.path}: integrity check failed "
                    f"({len(data)} != {record.stat.st_size})"
                )
            checked += 1
        return checked

    def scrubber(
        self,
        *,
        repair: bool = True,
        deep: bool = False,
        batch: int = 32,
        rate_limit_bytes_per_s: float | None = None,
        interval_s: float = 0.0,
    ) -> Scrubber:
        """A :class:`~repro.fanstore.scrub.Scrubber` over this rank's
        records — drive it incrementally (``step()``), in one pass
        (``run()``), or as a background thread (``start()``)."""
        return Scrubber(
            self.daemon,
            repair=repair,
            deep=deep,
            batch=batch,
            rate_limit_bytes_per_s=rate_limit_bytes_per_s,
            interval_s=interval_s,
        )

    def scrub(
        self,
        sample: int | None = None,
        *,
        repair: bool = True,
        deep: bool = False,
    ) -> ScrubReport:
        """One full digest sweep over the records staged on this rank,
        healing mismatches through the failover ladder when ``repair``
        is set; returns the :class:`~repro.fanstore.scrub.ScrubReport`."""
        return self.scrubber(repair=repair, deep=deep).run(sample)
