"""Lossless compressor suite.

From-scratch codecs (RLE, LZW, canonical Huffman, an LZ4-family LZ77),
stdlib codecs (zlib, bz2, lzma) at every level, and reversible filters
(delta, xor, bitshuffle, byte-shuffle) composed into the 180 named
configurations the paper evaluates with lzbench. The registry assigns
each configuration the 2-byte id stored per file in FanStore partitions.

Calibrated profiles of the paper's native compressors (lzsse8, lz4hc,
brotli, …) live in :mod:`repro.compressors.profiles` and drive the
modeled experiments; :data:`~repro.compressors.registry.PAPER_ALIASES`
maps those names onto real suite members for the functional byte path.
"""

from repro.compressors.base import Codec, Compressor, Filter
from repro.compressors.filters import (
    BitshuffleFilter,
    DeltaFilter,
    MtfFilter,
    TransposeFilter,
    XorFilter,
)
from repro.compressors.huffman import HuffmanCodec
from repro.compressors.lz77 import Lz77Codec
from repro.compressors.lzbench import (
    BenchResult,
    bench_compressor,
    format_results,
    pareto_front,
    run_suite,
)
from repro.compressors.lossy import (
    SzLikeCodec,
    ZfpLikeCodec,
    max_abs_error,
    psnr,
)
from repro.compressors.lzw import LzwCodec
from repro.compressors.null import NullCodec
from repro.compressors.profiles import (
    DATASET_KEYS,
    PAPER_PROFILES,
    PaperProfile,
    get_profile,
    list_profiles,
)
from repro.compressors.registry import (
    PAPER_ALIASES,
    RAW_ID,
    RAW_NAME,
    CompressorRegistry,
    build_default_registry,
    default_registry,
    get_compressor,
    list_compressors,
)
from repro.compressors.rle import RleCodec
from repro.compressors.stdlib import Bz2Codec, LzmaCodec, ZlibCodec

__all__ = [
    "Codec",
    "Compressor",
    "Filter",
    "NullCodec",
    "RleCodec",
    "LzwCodec",
    "HuffmanCodec",
    "Lz77Codec",
    "ZlibCodec",
    "Bz2Codec",
    "LzmaCodec",
    "DeltaFilter",
    "XorFilter",
    "BitshuffleFilter",
    "MtfFilter",
    "TransposeFilter",
    "CompressorRegistry",
    "build_default_registry",
    "default_registry",
    "get_compressor",
    "list_compressors",
    "PAPER_ALIASES",
    "RAW_ID",
    "RAW_NAME",
    "BenchResult",
    "bench_compressor",
    "run_suite",
    "pareto_front",
    "format_results",
    "PaperProfile",
    "PAPER_PROFILES",
    "DATASET_KEYS",
    "get_profile",
    "list_profiles",
    "SzLikeCodec",
    "ZfpLikeCodec",
    "max_abs_error",
    "psnr",
]
