"""Daemon service-loop robustness under malformed traffic."""

from __future__ import annotations

import pytest

from repro.comm.launcher import run_parallel
from repro.fanstore.daemon import TAG_DAEMON
from repro.fanstore.store import FanStore


class TestMalformedMessages:
    def test_service_survives_garbage(self, prepared_dataset):
        """Garbage on the daemon tag must be counted, not fatal: the
        daemon keeps serving fetches afterwards."""

        def body(comm):
            with FanStore(prepared_dataset, comm=comm) as fs:
                peer = (comm.rank + 1) % comm.size
                # three flavours of garbage at the peer's daemon
                comm.send("not a tuple", peer, TAG_DAEMON)
                comm.send(("unknown-kind", None), peer, TAG_DAEMON)
                comm.send((1, 2, 3), peer, TAG_DAEMON)
                comm.barrier()
                # the daemon must still answer real requests
                total = 0
                for rec in fs.daemon.metadata.walk_files():
                    total += len(fs.client.read_file(rec.path))
                comm.barrier()
                return total, fs.daemon.stats.malformed_requests

        results = run_parallel(body, 3, timeout=60)
        totals = {t for t, _ in results}
        assert len(totals) == 1
        assert all(m >= 2 for _, m in results)  # garbage was counted

    def test_fetch_for_missing_path_answers_not_found(self, prepared_dataset):
        def body(comm):
            with FanStore(prepared_dataset, comm=comm) as fs:
                peer = (comm.rank + 1) % comm.size
                reply_tag = 0x7000 + comm.rank
                comm.send(
                    ("fetch", ("no/such/file", reply_tag)), peer, TAG_DAEMON
                )
                ok, _ = comm.recv(peer, reply_tag, timeout=20)
                comm.barrier()
                return ok

        assert run_parallel(body, 2, timeout=60) == [False, False]
