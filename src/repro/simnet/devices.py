"""Analytic storage-device performance models.

Each model answers "how long does this operation take on that device",
with the affine form

    t(op, size) = per_op_latency + ceil(size/chunk)·per_chunk + size/bandwidth

that captures the three regimes the paper's Table III spans: syscall/
interception overhead dominates small files (throughput-bound, files/s),
streaming dominates large files (bandwidth-bound, MB/s), and chunked
transports (FUSE) pay per-crossing costs in between. Equation 3 of the
paper — ``T_read = max(C/Tpt, S/Bdw)`` — is the two-regime shadow of
this model, and :meth:`StorageModel.table6_row` derives exactly the
(``Tpt_read``, ``Bdw_read``) pair the selection algorithm consumes.

Device constants are calibrated against the paper's own measurements
(Table III on the GTX cluster's SSDs; Table VI per cluster); residuals
are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.util.units import GB, KIB, MB


@dataclass(frozen=True)
class StorageModel:
    """Affine cost model of one storage path.

    ``per_op_latency``: fixed cost per open+read of one file (seek,
    syscall, interception, RPC setup). ``chunk_size``/``per_chunk``:
    optional per-transfer-unit cost (FUSE's 128 KiB kernel crossings;
    Lustre's RPC stripes). ``read_bandwidth``/``write_bandwidth``:
    streaming byte rates. ``metadata_latency``: one stat()/readdir()
    round trip.
    """

    name: str
    read_bandwidth: float
    write_bandwidth: float
    per_op_latency: float
    metadata_latency: float
    chunk_size: int = 0
    per_chunk: float = 0.0

    def __post_init__(self) -> None:
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise SimulationError(f"{self.name}: bandwidth must be positive")
        if self.per_op_latency < 0 or self.metadata_latency < 0:
            raise SimulationError(f"{self.name}: latency must be non-negative")
        if (self.chunk_size > 0) != (self.per_chunk > 0):
            raise SimulationError(
                f"{self.name}: chunk_size and per_chunk must be set together"
            )

    # -- primitive costs -------------------------------------------------

    def read_time(self, size: int) -> float:
        """Seconds to open and fully read one file of ``size`` bytes."""
        if size < 0:
            raise SimulationError(f"negative size {size}")
        t = self.per_op_latency + size / self.read_bandwidth
        if self.chunk_size:
            t += math.ceil(size / self.chunk_size) * self.per_chunk
        return t

    def write_time(self, size: int) -> float:
        """Seconds to create and fully write one file of ``size`` bytes."""
        if size < 0:
            raise SimulationError(f"negative size {size}")
        t = self.per_op_latency + size / self.write_bandwidth
        if self.chunk_size:
            t += math.ceil(size / self.chunk_size) * self.per_chunk
        return t

    def stat_time(self) -> float:
        return self.metadata_latency

    # -- derived figures ---------------------------------------------------

    def read_files_per_second(self, size: int) -> float:
        """Sustained single-stream read throughput in files/s (Table III)."""
        return 1.0 / self.read_time(size)

    def table6_row(self, size: int, streams: int = 1) -> tuple[float, float]:
        """The (``Tpt_read`` files/s, ``Bdw_read`` MB/s-in-bytes) pair of
        Table VI for files of ``size`` bytes and ``streams`` parallel
        readers (4-node measurements in the paper use one per node)."""
        per_file = self.read_time(size)
        tpt = streams / per_file
        bdw = streams * size / per_file
        return tpt, bdw


def ssd() -> StorageModel:
    """A node-local NVMe/SATA SSD, calibrated to Table III's SSD row
    (39 480 files/s at 128 KB … 678 files/s at 8 MB)."""
    return StorageModel(
        name="ssd",
        read_bandwidth=6.1 * GB,
        write_bandwidth=2.0 * GB,
        per_op_latency=15e-6,
        metadata_latency=8e-6,
    )


def ram_disk() -> StorageModel:
    """A tmpfs-style RAM disk (generic x86 host)."""
    return StorageModel(
        name="ramdisk",
        read_bandwidth=12.0 * GB,
        write_bandwidth=10.0 * GB,
        per_op_latency=4e-6,
        metadata_latency=2e-6,
    )


def ram_disk_power9() -> StorageModel:
    """The V100 cluster's POWER9 RAM disk. The affine fit through the
    paper's two V100 Table VI rows (115.6 µs at 512 KB, 199 µs at 2 MB)
    gives ~88 µs per-op cost — POWER9's syscall/interposition path is
    far costlier than Skylake's — with ~19 GB/s streaming."""
    return StorageModel(
        name="ramdisk-p9",
        read_bandwidth=19.0 * GB,
        write_bandwidth=14.0 * GB,
        per_op_latency=75e-6,
        metadata_latency=3e-6,
    )


def fanstore_local(backend: StorageModel | None = None) -> StorageModel:
    """FanStore's local read path: user-space interception + hash lookup +
    one cache-region copy; calibrated to Table III's FanStore row
    (28 248 files/s at 128 KB, 71–99 % of raw SSD)."""
    backend = backend or ssd()
    # The user-space copy into the cache region tops out near memcpy
    # rate (~11 GB/s); slower backends stay backend-bound.
    return StorageModel(
        name=f"fanstore({backend.name})",
        read_bandwidth=min(backend.read_bandwidth, 11.0 * GB),
        write_bandwidth=backend.write_bandwidth,
        per_op_latency=backend.per_op_latency + 8e-6,
        metadata_latency=0.4e-6,  # RAM hash table, no server round trip
    )


def fuse_over_ssd(backend: StorageModel | None = None) -> StorageModel:
    """FUSE mounted over the SSD: every 128 KiB transfer crosses
    kernel↔user twice. Calibrated to Table III's SSD-fuse row
    (6 687 files/s at 128 KB, 197 files/s at 8 MB)."""
    backend = backend or ssd()
    return StorageModel(
        name=f"fuse({backend.name})",
        read_bandwidth=backend.read_bandwidth,
        write_bandwidth=backend.write_bandwidth,
        per_op_latency=backend.per_op_latency + 45e-6,
        metadata_latency=backend.metadata_latency + 30e-6,
        chunk_size=128 * KIB,
        per_chunk=66e-6,
    )


def lustre() -> StorageModel:
    """A production shared parallel file system under multi-tenant load,
    calibrated to Table III's Lustre row (1 515 files/s at 128 KB,
    139 files/s at 8 MB). Per-op cost is an MDS+OST round trip; the
    1 MiB RPC stripes add per-chunk cost; aggregate-side contention is
    modeled separately by :class:`SharedFileSystem` in
    :mod:`repro.baselines.sharedfs`."""
    return StorageModel(
        name="lustre",
        read_bandwidth=1.3 * GB,
        write_bandwidth=1.0 * GB,
        per_op_latency=550e-6,
        metadata_latency=400e-6,
        chunk_size=1 * MB,
        per_chunk=80e-6,
    )


#: Table III column sizes (bytes) — the paper uses decimal KB/MB labels
#: for power-of-two sizes.
TABLE3_SIZES = (128 * KIB, 512 * KIB, 2 * 1024 * KIB, 8 * 1024 * KIB)
