"""Application profiles (§VII-B, Table V).

Each profile carries what the I/O system and the performance model see
of a training application: batch geometry, bytes per batch, iteration
compute time per cluster (measured by the paper with data on RAM disk,
i.e. I/O-free), I/O mode, gradient size for the allreduce model, and the
dataset it trains on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.util.units import KB, MB


@dataclass(frozen=True)
class AppProfile:
    """One DL application as the experiments parameterize it."""

    name: str
    dataset: str  # repro.datasets key
    io_mode: str  # "sync" or "async"
    c_batch: int  # files per iteration (global batch)
    s_batch_bytes: float  # uncompressed bytes per iteration (S'_batch)
    t_iter_by_cluster: dict  # cluster name -> seconds (RAM-disk compute)
    gradient_bytes: int  # allreduce message size per iteration
    epochs: int = 1

    def __post_init__(self) -> None:
        if self.io_mode not in ("sync", "async"):
            raise ReproError(f"{self.name}: bad io_mode {self.io_mode}")
        if self.c_batch < 1:
            raise ReproError(f"{self.name}: c_batch must be >= 1")

    def t_iter(self, cluster: str) -> float:
        try:
            return self.t_iter_by_cluster[cluster]
        except KeyError:
            raise ReproError(
                f"{self.name} has no T_iter for cluster {cluster!r}"
            ) from None

    @property
    def avg_file_bytes(self) -> float:
        return self.s_batch_bytes / self.c_batch


def srgan() -> AppProfile:
    """SRGAN super-resolving EM micrographs (sync I/O; Table V rows 1–2).

    Generator+discriminator ≈ 1.5 M parameters ⇒ ~6 MB gradients."""
    return AppProfile(
        name="SRGAN",
        dataset="em",
        io_mode="sync",
        c_batch=256,
        s_batch_bytes=410 * MB,
        t_iter_by_cluster={"GTX": 9.689, "V100": 2.416},
        gradient_bytes=6 * MB,
        epochs=2000,
    )


def frnn() -> AppProfile:
    """FRNN predicting tokamak disruptions with an LSTM (async I/O;
    Table V row 3). LSTM stacks are a few M parameters ⇒ ~12 MB."""
    return AppProfile(
        name="FRNN",
        dataset="tokamak",
        io_mode="async",
        c_batch=512,
        s_batch_bytes=615 * KB,
        t_iter_by_cluster={"CPU": 0.655},
        gradient_bytes=12 * MB,
    )


def resnet50() -> AppProfile:
    """ResNet-50 on ImageNet-1k (async pipelines in TF; §VII-F).

    25.6 M parameters ⇒ ~102 MB gradients; batch 256 ⇒ ~100 KB × 256
    ≈ 26 MB per iteration. Per-iteration times estimated from the
    paper's scaling baselines (batch 256 on 4 GPUs ≈ 0.9 s on GTX;
    CPU nodes are ~3× slower per node)."""
    return AppProfile(
        name="ResNet-50",
        dataset="imagenet",
        io_mode="async",
        c_batch=256,
        s_batch_bytes=26 * MB,
        t_iter_by_cluster={"GTX": 0.9, "CPU": 2.7},
        gradient_bytes=102 * MB,
        epochs=90,
    )


APPLICATIONS = {"SRGAN": srgan, "FRNN": frnn, "ResNet-50": resnet50}


def get_app(name: str) -> AppProfile:
    """Look up an application profile by its paper name."""
    try:
        return APPLICATIONS[name]()
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; choose from {sorted(APPLICATIONS)}"
        ) from None
