"""Membership — what self-healing buys over the PR-1 recovery ladder.

Same 3-rank store, same kill. Without membership (the PR-1 regime)
every survivor discovers the corpse the hard way: the first read of a
dead-homed record pays the full request-timeout retry ladder before
failing over. With the failure detector attached, the corpse is
convicted off heartbeat silence in ``dead_after`` seconds, its records
are re-replicated (digest-verified) onto survivors, and the same read
pass afterwards is entirely local — zero retries, zero timeouts. The
report records detection latency and mean time to repair next to the
ladder's cost.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.report import PaperComparison
from repro.comm.chaos import ChaosWorld, FaultPlan
from repro.comm.launcher import run_parallel
from repro.datasets.synthetic import generate_dataset
from repro.errors import CommClosedError, RankDeadError
from repro.fanstore.daemon import DaemonConfig
from repro.fanstore.membership import MembershipConfig, RankState
from repro.fanstore.prepare import prepare_dataset
from repro.fanstore.store import FanStore, FanStoreOptions

RANKS = 3
DEAD = 2
_TAG_PARK = 0x0DED
_TAG_GO = 0x0661
_TAG_DONE = 0x0D0E

#: tight budgets so the ladder regime costs tenths of a second
FAST = dict(
    request_timeout=0.3,
    max_retries=2,
    retry_backoff_base=0.01,
    retry_backoff_max=0.05,
)

MCFG = MembershipConfig(
    heartbeat_interval=0.05, suspect_after=0.2, dead_after=0.5
)

#: 15 files over 3 partitions with one ring replica each: the corpse
#: holds its 5 home records plus 5 replicas of partition DEAD-1
LOST_COPIES = 10


@pytest.fixture(scope="module")
def member_dataset(tmp_path_factory):
    raw = tmp_path_factory.mktemp("member-raw")
    generate_dataset("em", raw, num_files=15, avg_file_size=8_000,
                     num_dirs=3, seed=41)
    return prepare_dataset(
        raw, tmp_path_factory.mktemp("member-packed"),
        num_partitions=RANKS, compressor="zlib-1", threads=2,
    )


def _read_all(fs):
    for rec in fs.daemon.metadata.walk_files():
        fs.client.read_file(rec.path)


def _park_corpse(comm):
    try:
        comm.recv(source=0, tag=_TAG_PARK, timeout=60)
    except (RankDeadError, CommClosedError):
        pass


def _survivor_teardown(comm, fs):
    other = 1 - comm.rank
    comm.send("done", other, _TAG_DONE)
    comm.recv(other, _TAG_DONE, timeout=60)
    fs.daemon.stop()


def _run_ladder(prepared):
    """PR-1 regime: no detector; reads discover the corpse by timeout."""
    world = ChaosWorld(RANKS, FaultPlan(seed=41))
    config = DaemonConfig(extra_partition_budget=1, **FAST)

    def body(comm):
        fs = FanStore(prepared, FanStoreOptions(comm=comm, config=config))
        comm.barrier()
        if comm.rank == DEAD:
            _park_corpse(comm)
            return None
        if comm.rank == 0:
            world.kill(DEAD)
            comm.send("go", 1, _TAG_GO)
        else:
            comm.recv(source=0, tag=_TAG_GO, timeout=60)
        start = time.perf_counter()
        _read_all(fs)
        wall = time.perf_counter() - start
        stats = fs.daemon.stats
        _survivor_teardown(comm, fs)
        return {"wall": wall, "retries": stats.retries}

    return [r for r in run_parallel(body, RANKS, world=world, timeout=120) if r]


def _run_membership(prepared):
    """Self-healing regime: convict, re-replicate, then read clean."""
    world = ChaosWorld(RANKS, FaultPlan(seed=41))
    config = DaemonConfig(extra_partition_budget=1, **FAST)

    def body(comm):
        fs = FanStore(
            prepared, FanStoreOptions(comm=comm, config=config, membership=MCFG)
        )
        det = fs.membership
        comm.barrier()
        if comm.rank == DEAD:
            _park_corpse(comm)
            return None
        if comm.rank == 0:
            t_kill = time.monotonic()
            world.kill(DEAD)
            comm.send(("go", t_kill), 1, _TAG_GO)
        else:
            _go, t_kill = comm.recv(source=0, tag=_TAG_GO, timeout=60)
        deadline = time.monotonic() + 30
        while det.view.state(DEAD) != RankState.DEAD:
            assert time.monotonic() < deadline, "conviction overdue"
            time.sleep(0.005)
        latency = det.detected_at[DEAD] - t_kill
        stats = fs.daemon.stats
        while stats.rereplicated_records + stats.rereplication_failed < LOST_COPIES // 2:
            assert time.monotonic() < deadline, "re-replication overdue"
            time.sleep(0.005)
        retries_before = stats.retries
        start = time.perf_counter()
        _read_all(fs)
        wall = time.perf_counter() - start
        out = {
            "wall": wall,
            "retries": stats.retries - retries_before,
            "latency": latency,
            "mttr": stats.mean_time_to_repair,
            "rereplicated": stats.rereplicated_records,
        }
        _survivor_teardown(comm, fs)
        return out

    return [r for r in run_parallel(body, RANKS, world=world, timeout=120) if r]


def test_membership_detection_and_repair(benchmark, member_dataset,
                                         emit_report):
    def run_both():
        return {
            "ladder": _run_ladder(member_dataset),
            "membership": _run_membership(member_dataset),
        }

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    ladder, membership = rows["ladder"], rows["membership"]

    l_wall = max(r["wall"] for r in ladder)
    l_retries = sum(r["retries"] for r in ladder)
    m_wall = max(r["wall"] for r in membership)
    m_retries = sum(r["retries"] for r in membership)
    detection = max(r["latency"] for r in membership)
    mttr = max(r["mttr"] for r in membership)
    restored = sum(r["rereplicated"] for r in membership)

    report = PaperComparison(
        "Membership (detection latency and MTTR)",
        "3 ranks, one killed; full-namespace read pass on the survivors",
        columns=["regime", "read wall s", "retries", "detection s",
                 "MTTR s", "records restored"],
    )
    report.add_row("no membership (PR-1 ladder)", round(l_wall, 3),
                   l_retries, "-", "-", 0)
    report.add_row("self-healing membership", round(m_wall, 3),
                   m_retries, round(detection, 3), round(mttr, 3),
                   restored)
    report.add_note(
        f"heartbeat={MCFG.heartbeat_interval}s suspect={MCFG.suspect_after}s "
        f"dead={MCFG.dead_after}s; detection is silence-bounded (not "
        "read-triggered) and repair restores the replication factor, so "
        "the post-conviction read pass is local and retry-free"
    )
    emit_report(report)

    # the ladder regime pays at least one full retry budget
    assert l_retries >= 1
    # conviction lands within the threshold (+ scheduling slack)
    assert detection <= MCFG.dead_after + 2.0
    # every lost copy was restored, and the read pass never retried
    assert restored == LOST_COPIES
    assert m_retries == 0
    assert 0 < mttr < 10
